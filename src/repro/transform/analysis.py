"""Truncation analysis: regular or irregular? (Section 5, step two.)

"Next, the tool analyzes the nested recursions to decide whether
irregular truncation is performed (in other words, it determines
whether any portion of the inner recursion's truncation condition is
dependent on the outer recursion)."

The inner guard is a boolean expression; we split its top-level ``or``
into disjuncts and classify each by the parameters it mentions:

* mentions only the inner index → part of ``truncateInner1?``;
* mentions the outer index → part of ``truncateInner2?`` (irregular).

The split matters because the transformed code places the two parts
differently: ``truncateInner1?`` bounds the *swapped outer* recursion
(Figure 3, line 2), while ``truncateInner2?`` becomes flag-managed
state (Figure 6b).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from repro.errors import TransformError
from repro.transform.recognizer import RecursionTemplate


@dataclass
class TruncationAnalysis:
    """The inner guard split into its regular and irregular parts."""

    #: disjuncts depending only on the inner index (None = absent)
    inner1: Optional[ast.expr]
    #: disjuncts depending on the outer index (None = regular truncation)
    inner2: Optional[ast.expr]

    @property
    def is_irregular(self) -> bool:
        """True when the spec needs the Section 4 machinery."""
        return self.inner2 is not None

    def inner1_source(self) -> str:
        """Source of the regular part (``False`` when absent)."""
        return ast.unparse(self.inner1) if self.inner1 is not None else "False"

    def inner2_source(self) -> str:
        """Source of the irregular part (``False`` when absent)."""
        return ast.unparse(self.inner2) if self.inner2 is not None else "False"


def _top_level_disjuncts(expr: ast.expr) -> list[ast.expr]:
    """Split ``a or b or c`` into [a, b, c]; other shapes are one unit."""
    if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.Or):
        parts: list[ast.expr] = []
        for value in expr.values:
            parts.extend(_top_level_disjuncts(value))
        return parts
    return [expr]


def _mentions(expr: ast.expr, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name for node in ast.walk(expr)
    )


def _join_or(parts: list[ast.expr]) -> Optional[ast.expr]:
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return ast.BoolOp(op=ast.Or(), values=parts)


def analyze_truncation(template: RecursionTemplate) -> TruncationAnalysis:
    """Classify the inner guard's disjuncts.

    A disjunct mentioning *neither* index is conservatively treated as
    part of ``truncateInner1?`` (it is invariant across the iteration
    space, e.g. a global toggle).  A disjunct mentioning *only* the
    outer index is rejected: the template has no such condition, and
    honouring one would require restructuring the outer recursion.
    """
    inner1_parts: list[ast.expr] = []
    inner2_parts: list[ast.expr] = []
    for part in _top_level_disjuncts(template.inner_guard):
        uses_outer = _mentions(part, template.o_param)
        uses_inner = _mentions(part, template.i_param)
        if uses_outer and uses_inner:
            inner2_parts.append(part)
        elif uses_outer:
            raise TransformError(
                f"inner truncation disjunct {ast.unparse(part)!r} depends "
                f"only on the outer index {template.o_param!r}; the Figure "
                f"2 template bounds the outer recursion in "
                f"{template.outer_name}, not here"
            )
        else:
            inner1_parts.append(part)
    return TruncationAnalysis(
        inner1=_join_or(inner1_parts), inner2=_join_or(inner2_parts)
    )

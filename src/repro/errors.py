"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch everything the library raises with one ``except`` clause while
still being able to distinguish configuration mistakes from transformation
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SpecError(ReproError):
    """A :class:`~repro.core.spec.NestedRecursionSpec` is malformed.

    Raised, for example, when a spec is missing a work function or when a
    node used as a recursion index does not implement the index-node
    protocol (``children``/``size`` attributes).
    """


class ScheduleError(ReproError):
    """A schedule executor was asked to run an unsupported configuration.

    Raised, for example, when the counter optimization of Section 4.3 is
    requested but the inner tree has not been given a pre-order numbering.
    """


class SoundnessError(ReproError):
    """A transformed schedule violated a recorded dependence order."""


class TransformError(ReproError):
    """The source-to-source transformation tool rejected the input code.

    This is the Python analog of the "sanity check" failure in the
    paper's Clang prototype (Section 5): the annotated functions do not
    conform to the nested recursion template of Figure 2.

    Every instance carries a stable diagnostic ``code`` from the
    ``TW0xx`` catalog (see :mod:`repro.transform.lint.diagnostics` and
    ``docs/DIAGNOSTICS.md``) so tooling can dispatch on the failure
    class without parsing the message: ``TW001`` for unparsable input,
    ``TW002`` for template violations (the default), ``TW003`` for
    outer-only truncation disjuncts.
    """

    def __init__(self, message: str, *, code: str = "TW002") -> None:
        super().__init__(message)
        #: stable machine-readable diagnostic code (``TW0xx``)
        self.code = code


class LintError(TransformError):
    """The static schedule-safety analyzer rejected the annotated pair.

    Raised by :func:`repro.transform.tool.transform_source` (and
    friends) when linting is enabled and the analyzer proves the
    annotation unsafe — the static analog of a
    :class:`SoundnessError`.  ``report`` carries the full
    :class:`~repro.transform.lint.report.LintReport` with every
    diagnostic, so callers can render or serialize the findings.
    """

    def __init__(self, message: str, *, code: str = "TW010", report: object = None) -> None:
        super().__init__(message, code=code)
        #: the full lint report that produced the rejection
        self.report = report


class MemorySimError(ReproError):
    """A memory-hierarchy simulator component was misconfigured."""


class ParallelWorkerError(ReproError):
    """A task raised inside a real parallel worker.

    Crosses the process boundary intact (hence the explicit
    ``__reduce__``) and carries the worker-side traceback verbatim, so
    the parent surfaces the *original* failure instead of an opaque
    pool error.  The parent guarantees all shared-memory segments are
    unlinked before this propagates.
    """

    def __init__(self, message: str, worker_traceback: str = "") -> None:
        super().__init__(message)
        self.message = message
        #: the formatted traceback captured where the task failed
        self.worker_traceback = worker_traceback

    def __str__(self) -> str:
        if not self.worker_traceback:
            return self.message
        return (
            f"{self.message}\n--- original worker traceback ---\n"
            f"{self.worker_traceback}"
        )

    def __reduce__(self):
        return (ParallelWorkerError, (self.message, self.worker_traceback))

"""Unit tests for the nested recursion template spec."""

import pytest

from repro.core import NestedRecursionSpec, WorkRecorder, run_original
from repro.errors import SpecError
from repro.spaces import balanced_tree, paper_inner_tree, paper_outer_tree


class TestConstruction:
    def test_minimal_spec(self):
        spec = NestedRecursionSpec(balanced_tree(3), balanced_tree(3))
        assert not spec.is_irregular

    def test_irregular_flag(self):
        spec = NestedRecursionSpec(
            balanced_tree(3),
            balanced_tree(3),
            truncate_inner2=lambda o, i: False,
        )
        assert spec.is_irregular

    def test_rejects_non_node_roots(self):
        with pytest.raises(SpecError):
            NestedRecursionSpec("not-a-node", balanced_tree(3))

    def test_rejects_uncallable_predicates(self):
        with pytest.raises(SpecError):
            NestedRecursionSpec(
                balanced_tree(3), balanced_tree(3), truncate_outer="nope"
            )
        with pytest.raises(SpecError):
            NestedRecursionSpec(
                balanced_tree(3), balanced_tree(3), truncate_inner2="nope"
            )
        with pytest.raises(SpecError):
            NestedRecursionSpec(balanced_tree(3), balanced_tree(3), work="nope")

    def test_same_tree_for_both_roles(self):
        tree = balanced_tree(7)
        spec = NestedRecursionSpec(tree, tree)
        recorder = WorkRecorder()
        run_original(spec, instrument=recorder)
        assert len(recorder.points) == 49


class TestResetTruncationState:
    def test_clears_both_trees(self):
        outer, inner = balanced_tree(3), balanced_tree(3)
        spec = NestedRecursionSpec(outer, inner)
        outer.trunc = True
        inner.trunc_counter = 9
        spec.reset_truncation_state()
        assert outer.trunc is False
        assert inner.trunc_counter == -1


class TestStaticInterchange:
    def test_swaps_trees_and_work_args(self):
        seen = []
        spec = NestedRecursionSpec(
            paper_outer_tree(),
            paper_inner_tree(),
            work=lambda o, i: seen.append((o.label, i.label)),
        )
        swapped = spec.interchanged()
        assert swapped.outer_root is spec.inner_root
        assert swapped.inner_root is spec.outer_root
        run_original(swapped)
        # Work still receives (outer-tree node, inner-tree node).
        assert seen[0] == ("A", 1)
        assert seen[1] == ("B", 1)  # row-major order

    def test_rejects_irregular(self):
        spec = NestedRecursionSpec(
            balanced_tree(3),
            balanced_tree(3),
            truncate_inner2=lambda o, i: False,
        )
        with pytest.raises(SpecError, match="run_interchanged"):
            spec.interchanged()

    def test_without_work(self):
        spec = NestedRecursionSpec(balanced_tree(3), balanced_tree(3))
        assert spec.interchanged().work is None

"""Materialized 2-D recursive iteration spaces.

A nested recursion defines a two-dimensional iteration space: one
dimension per recursion, one point per dynamic invocation of ``work``
(Figure 1c).  This module materializes such spaces so that schedules —
recorded as sequences of ``(outer_label, inner_label)`` work points —
can be inspected, compared, and rendered the way the paper draws them
(Figures 1c, 4b, and 6a).

It is deliberately independent of :mod:`repro.core`: the executors
*produce* traces (via :class:`repro.core.instruments.WorkRecorder`), and
this module *consumes* them, so either side can be tested in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional, Sequence

from repro.spaces.node import IndexNode

WorkPoint = tuple[Hashable, Hashable]


def preorder_labels(root: IndexNode) -> list[Hashable]:
    """Labels of a tree in depth-first pre-order.

    Pre-order is the paper's canonical axis order: the columns of
    Figure 1(c) are the outer tree in pre-order and the rows are the
    inner tree in pre-order.  Nodes without a ``label`` attribute fall
    back to their pre-order ``number``.
    """
    return [getattr(node, "label", node.number) for node in root.iter_preorder()]


@dataclass
class IterationSpace:
    """A rectangle of candidate points plus the subset actually executed.

    ``outer_axis``/``inner_axis`` fix the axes (pre-order of the two
    trees); ``executed`` is the set of points that perform work (the
    full rectangle when truncation is regular, a proper subset when
    ``truncateInner2?`` skips iterations as in Figure 6a).
    """

    outer_axis: list[Hashable]
    inner_axis: list[Hashable]
    executed: set[WorkPoint] = field(default_factory=set)

    @classmethod
    def from_trees(
        cls,
        outer_root: IndexNode,
        inner_root: IndexNode,
        executed: Optional[Iterable[WorkPoint]] = None,
    ) -> "IterationSpace":
        """Build a space whose axes are the two trees in pre-order.

        When ``executed`` is omitted the full rectangle is executed
        (regular truncation).
        """
        outer_axis = preorder_labels(outer_root)
        inner_axis = preorder_labels(inner_root)
        if executed is None:
            points = {(o, i) for o in outer_axis for i in inner_axis}
        else:
            points = set(executed)
        return cls(outer_axis, inner_axis, points)

    @property
    def num_points(self) -> int:
        """Number of executed iterations."""
        return len(self.executed)

    @property
    def is_rectangular(self) -> bool:
        """True when every candidate point is executed (regular bounds)."""
        return self.num_points == len(self.outer_axis) * len(self.inner_axis)

    def skipped(self) -> set[WorkPoint]:
        """Candidate points that are *not* executed (greyed in Fig. 6a)."""
        return {
            (o, i) for o in self.outer_axis for i in self.inner_axis
        } - self.executed

    def validate_schedule(self, schedule: Sequence[WorkPoint]) -> None:
        """Check that ``schedule`` enumerates exactly this space, once each.

        Raises ``ValueError`` on duplicated, missing, or extraneous
        points — the bounds-preservation property that Section 4's
        machinery exists to guarantee.
        """
        seen: set[WorkPoint] = set()
        for point in schedule:
            if point in seen:
                raise ValueError(f"schedule executes {point} more than once")
            if point not in self.executed:
                raise ValueError(f"schedule executes out-of-bounds point {point}")
            seen.add(point)
        missing = self.executed - seen
        if missing:
            raise ValueError(f"schedule misses {len(missing)} points, e.g. {next(iter(missing))}")


def schedule_order_grid(
    space: IterationSpace, schedule: Sequence[WorkPoint]
) -> list[list[Optional[int]]]:
    """Visit positions arranged on the space's grid.

    Returns a matrix indexed ``[inner][outer]`` (rows are inner-tree
    positions, columns outer-tree positions, like the paper's figures)
    whose entries are the 0-based time step at which the schedule visits
    that point, or ``None`` for skipped points.
    """
    outer_pos = {label: k for k, label in enumerate(space.outer_axis)}
    inner_pos = {label: k for k, label in enumerate(space.inner_axis)}
    grid: list[list[Optional[int]]] = [
        [None] * len(space.outer_axis) for _ in space.inner_axis
    ]
    for step, (o, i) in enumerate(schedule):
        grid[inner_pos[i]][outer_pos[o]] = step
    return grid


def render_schedule(space: IterationSpace, schedule: Sequence[WorkPoint]) -> str:
    """ASCII rendering of a schedule over the iteration space.

    Each cell shows the visit time step (``.`` for skipped points), with
    the outer axis across the top — a textual stand-in for the arrows of
    Figures 1(c) and 4(b).  Example for the paper's 7x7 space::

            A   B   C ...
        1   0   7  14 ...
        2   1   8  15 ...
    """
    grid = schedule_order_grid(space, schedule)
    width = max(3, len(str(max(space.num_points - 1, 0))))
    label_width = max(
        [len(str(label)) for label in space.inner_axis] + [1]
    )
    header = " " * (label_width + 1) + " ".join(
        str(label).rjust(width) for label in space.outer_axis
    )
    lines = [header]
    for row_label, row in zip(space.inner_axis, grid):
        cells = " ".join(
            (str(step) if step is not None else ".").rjust(width) for step in row
        )
        lines.append(f"{str(row_label).rjust(label_width)} {cells}")
    return "\n".join(lines)


def column_major_order(space: IterationSpace) -> list[WorkPoint]:
    """The original schedule: for each outer position, all inner positions.

    This is what the untransformed template of Figure 2 executes on a
    rectangular space ("column-by-column" in the paper's phrasing).
    """
    return [
        (o, i)
        for o in space.outer_axis
        for i in space.inner_axis
        if (o, i) in space.executed
    ]


def row_major_order(space: IterationSpace) -> list[WorkPoint]:
    """The interchanged schedule: for each inner position, all outer ones.

    What recursion interchange (Figure 3) executes: "a row-by-row
    enumeration of the iteration space, instead of column-by-column".
    """
    return [
        (o, i)
        for i in space.inner_axis
        for o in space.outer_axis
        if (o, i) in space.executed
    ]


def transposes_to(
    first: Sequence[WorkPoint], second: Sequence[WorkPoint]
) -> bool:
    """True when ``second`` visits the same points as ``first``.

    Order-insensitive set equality — the basic sanity property shared by
    every scheduling transformation in the paper (same iterations, new
    order).
    """
    return set(first) == set(second) and len(first) == len(second)

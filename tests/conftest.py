"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

# Project-wide hypothesis profile: the executors are Python-recursion
# heavy, so per-example deadlines are noisy; cap examples for speed.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def paper_trees():
    """The Figure 1(b) trees: (outer A..G, inner 1..7)."""
    from repro.spaces import paper_inner_tree, paper_outer_tree

    return paper_outer_tree(), paper_inner_tree()


@pytest.fixture
def small_points():
    """A deterministic 2-D point cloud for spatial-tree tests."""
    from repro.spaces import clustered_points

    return clustered_points(200, clusters=8, spread=0.04, seed=5)

"""Property-based dedup/shard demux guarantee for the serving path.

The contract the admission batcher and the shard gather both lean on:
**any** mix of duplicated and permuted concurrent queries admitted in
one tick is answered bit-identically to the per-query serial oracle —
for every kind (NN / k-NN / count), with and without reference-set
sharding.  Hypothesis drives arbitrary duplicate multiplicities,
arbitrary interleavings across kinds, and duplicate query points that
collide exactly (the dedup key is exact coordinates), then the demuxed
answers are compared as frozen dataclasses — ``==`` on float fields is
bit comparison for our purposes (no tolerance anywhere).

The services are module-scoped over one deterministic reference set:
the property is about *admission shapes*, not tree shapes, so
rebuilding trees per example would only slow the sweep down.
"""

import asyncio

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.serve.batcher import AdmissionBatcher
from repro.serve.protocol import CountQuery, KNNQuery, NNQuery
from repro.serve.service import QueryService, ServiceConfig
from repro.spaces.points import clustered_points

REFERENCES = clustered_points(400, clusters=8, spread=0.08, seed=5)

#: A small palette of exact candidate points; duplicates arise when
#: hypothesis picks the same palette index twice.
PALETTE = [
    tuple(float(value) for value in point)
    for point in clustered_points(12, clusters=4, spread=0.1, seed=23)
]

_SERVICES: dict[int, QueryService] = {}


def service_for(shards: int) -> QueryService:
    cached = _SERVICES.get(shards)
    if cached is None:
        cached = QueryService(REFERENCES, ServiceConfig(shards=shards))
        _SERVICES[shards] = cached
    return cached


def queries_strategy():
    point = st.sampled_from(PALETTE)
    return st.lists(
        st.one_of(
            st.builds(NNQuery, point),
            st.builds(
                KNNQuery, point, st.integers(min_value=1, max_value=9)
            ),
            st.builds(
                CountQuery,
                point,
                st.sampled_from([0.1, 0.25, 0.4]),
            ),
        ),
        min_size=1,
        max_size=24,
    )


def answer_one_tick(service: QueryService, queries) -> list:
    """Admit every query concurrently through a real batcher tick."""

    async def scenario():
        batcher = AdmissionBatcher(
            service.execute_batch, max_batch=256, max_hold_s=0.05
        )
        return await asyncio.gather(
            *(batcher.submit(query) for query in queries)
        )

    return asyncio.run(scenario())


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(queries=queries_strategy(), shards=st.sampled_from([1, 3]))
def test_any_duplicate_mix_matches_per_query_oracles(queries, shards):
    service = service_for(shards)
    batched = answer_one_tick(service, queries)
    oracle = service_for(1).execute_serial(queries)
    assert batched == oracle


@settings(max_examples=15, deadline=None)
@given(
    queries=queries_strategy(),
    data=st.data(),
)
def test_permutations_permute_answers(queries, data):
    """Demux follows submission order: permuting queries permutes
    exactly the answers, never the bindings."""
    service = service_for(1)
    order = data.draw(st.permutations(list(range(len(queries)))))
    base = answer_one_tick(service, queries)
    shuffled = answer_one_tick(
        service, [queries[index] for index in order]
    )
    assert shuffled == [base[index] for index in order]


@settings(max_examples=15, deadline=None)
@given(
    point=st.sampled_from(PALETTE),
    copies=st.integers(min_value=2, max_value=12),
    shards=st.sampled_from([1, 3]),
)
def test_pure_duplicate_ticks_fold_to_one_execution(point, copies, shards):
    service = service_for(shards)
    queries = [KNNQuery(point, 4)] * copies

    async def scenario():
        batcher = AdmissionBatcher(
            service.execute_batch, max_batch=256, max_hold_s=0.05
        )
        results = await asyncio.gather(
            *(batcher.submit(query) for query in queries)
        )
        return batcher, results

    batcher, results = asyncio.run(scenario())
    oracle = service_for(1).execute_serial([queries[0]])[0]
    assert all(result == oracle for result in results)
    # Whatever the tick boundaries were, total distinct executions is
    # bounded by the tick count (one distinct entry per tick), and at
    # least one fold happened unless every copy landed alone.
    assert batcher.executed == batcher.ticks
    assert batcher.dedup_folded == copies - batcher.executed


def teardown_module(module):
    for service in _SERVICES.values():
        service.close()
    _SERVICES.clear()

"""The nested recursion template (Figure 2) as a declarative spec.

A :class:`NestedRecursionSpec` captures everything the paper's template
parameterizes:

* the two trees (really: recursive index spaces) being traversed;
* ``truncateOuter?`` — bounds the outer recursion on its own index;
* ``truncateInner1?`` — bounds the inner recursion on its own index;
* ``truncateInner2?`` — the *irregular* truncation of Section 4,
  bounding the inner recursion on **both** indices (``None`` marks the
  regular case, the paper's "no-op" assumption in Sections 2-3);
* ``work`` — the loop body, called once per executed iteration.

The template's truncation conditions include the implicit ``null``
checks of the paper's listings; here the equivalent structural bound is
"a node has no children", so the default truncation predicates are
constant ``False`` and recursion stops at leaves.  Domain-specific
predicates (e.g. dual-tree ``Score`` pruning) are layered on top.

The executors in :mod:`repro.core.executors`,
:mod:`repro.core.interchange` and :mod:`repro.core.twisting` consume a
spec and realize the original, interchanged, and twisted schedules.
Crucially (Section 2.1's terminology), a spec names the *trees* — whose
identity is absolute — while the executors decide which tree each
*recursion* traverses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.errors import SpecError
from repro.spaces.node import IndexNode, validate_index_node

#: Absolute tree identities, used to tag data accesses regardless of
#: which recursion is traversing the tree in a transformed schedule.
OUTER_TREE = "outer"
INNER_TREE = "inner"

TruncatePredicate = Callable[[IndexNode], bool]
Truncate2Predicate = Callable[[IndexNode, IndexNode], bool]
WorkFunction = Callable[[IndexNode, IndexNode], Any]
BatchWorkFunction = Callable[[Sequence[IndexNode], Sequence[IndexNode]], Any]


def _never(_node: IndexNode) -> bool:
    """Default truncation predicate: rely on structural leaf bounds."""
    return False


@dataclass
class NestedRecursionSpec:
    """An instance of the Figure 2 nested recursion template.

    Parameters
    ----------
    outer_root, inner_root:
        Roots of the outer and inner trees.  The same root may be used
        for both (self-joins are allowed; the locality analysis of
        Section 3.2 explicitly covers "recursions [that] traverse trees
        (that could be the same tree)").
    work:
        The loop body.  May be ``None`` for pure schedule studies where
        only the visit order matters.
    truncate_outer, truncate_inner1:
        Single-index truncation predicates.  Defaults never truncate
        (recursion stops at leaves structurally).
    truncate_inner2:
        Two-index truncation, or ``None`` when truncation is regular.
        When present, the transformed schedules automatically engage
        the Section 4 flag/counter machinery.
    work_batch:
        Optional vectorized form of ``work``: receives two parallel
        sequences of nodes and must be semantically equivalent to
        calling ``work(o, i)`` on each pair in order.  The batched
        executor (:mod:`repro.core.batched`) dispatches accumulated
        leaf-level blocks through it; the recursive executors ignore
        it.
    work_batch_soa:
        Optional SoA-native form of ``work``: called as
        ``work_batch_soa(outer_view, inner_view, o_positions,
        i_positions)`` with the two packed
        :class:`~repro.spaces.soa.SoATree` views and two parallel lists
        of layout positions, it must be semantically equivalent to
        calling ``work`` on each positioned pair in order.  Only the
        SoA executors (:mod:`repro.core.soa_exec`) consume it, and only
        when ``truncation_observes_work`` is unset — it lets them
        dispatch integer position blocks (one fancy-index gather per
        payload column) instead of node objects.
    truncation_observes_work:
        ``True`` when ``truncate_inner2`` reads state that ``work``
        writes (the stateful dual-tree bounds of NN/KNN).  The batched
        executor then flushes pending work for an outer node before
        evaluating its truncation, so deferral never changes a
        truncation decision.  Irrelevant for the recursive executors,
        which never defer.
    truncate_inner2_batch:
        Optional block form of ``truncate_inner2`` for *stateless*
        truncation: called with one outer node, it returns either a
        scalar bool (the decision is uniform over every inner node), a
        boolean array indexed by inner-node pre-order ``number``, or
        ``None`` (block evaluation unavailable for this node — fall
        back to per-pair calls).  Every produced decision must equal
        ``truncate_inner2(o, i)`` exactly.  Only the batched executor's
        uninstrumented fast paths consume it, and only when
        ``truncation_observes_work`` is ``False`` (a stateful
        truncation cannot legally be pre-evaluated).
    isolated_truncation:
        ``True`` to keep Section 4 flag/counter state in per-run
        policy-local storage instead of on the (possibly shared) tree
        nodes.  Task-parallel execution (:mod:`repro.core.parallel`)
        sets this on each task's restricted spec so concurrently
        simulated tasks cannot leak truncation state to one another.
    outer_launches_work:
        Optional predicate telling the task scheduler which outer
        positions can launch a non-trivial inner traversal (e.g. only
        query *leaves* in a dual-tree algorithm).  ``None`` means every
        position may; used only for cost estimation, never for
        execution.
    parallel_plan:
        Optional :class:`~repro.core.parallel_exec.ParallelPlan`
        describing how the real multi-worker runtime rebuilds this
        spec inside workers (shared input arrays, a module-level
        worker factory, result columns, and the parent-side
        write-back).  ``None`` — the default — means the spec can only
        run serially or on the simulated task runtime; the
        ``parallel`` backend refuses it.  Typed loosely to keep this
        module free of runtime imports.
    name:
        A label for reports.
    """

    outer_root: IndexNode
    inner_root: IndexNode
    work: Optional[WorkFunction] = None
    truncate_outer: TruncatePredicate = _never
    truncate_inner1: TruncatePredicate = _never
    truncate_inner2: Optional[Truncate2Predicate] = None
    truncate_inner2_batch: Optional[Callable[[IndexNode], Any]] = None
    work_batch: Optional[BatchWorkFunction] = None
    work_batch_soa: Optional[Callable[..., Any]] = None
    truncation_observes_work: bool = False
    isolated_truncation: bool = False
    outer_launches_work: Optional[TruncatePredicate] = None
    parallel_plan: Optional[Any] = None
    name: str = "nested-recursion"

    def __post_init__(self) -> None:
        validate_index_node(self.outer_root)
        validate_index_node(self.inner_root)
        for predicate_name in ("truncate_outer", "truncate_inner1"):
            if not callable(getattr(self, predicate_name)):
                raise SpecError(f"{predicate_name} must be callable")
        if self.truncate_inner2 is not None and not callable(self.truncate_inner2):
            raise SpecError("truncate_inner2 must be callable or None")
        if self.truncate_inner2_batch is not None:
            if not callable(self.truncate_inner2_batch):
                raise SpecError("truncate_inner2_batch must be callable or None")
            if self.truncate_inner2 is None:
                raise SpecError(
                    "truncate_inner2_batch requires truncate_inner2 (it is "
                    "an accelerated form of it, not a replacement)"
                )
        if self.work is not None and not callable(self.work):
            raise SpecError("work must be callable or None")
        if self.work_batch is not None and not callable(self.work_batch):
            raise SpecError("work_batch must be callable or None")
        if self.work_batch_soa is not None:
            if not callable(self.work_batch_soa):
                raise SpecError("work_batch_soa must be callable or None")
            if self.work is None and self.work_batch is None:
                raise SpecError(
                    "work_batch_soa is an accelerated form of work — provide "
                    "work (or work_batch) so non-SoA backends can run the spec"
                )
        if self.outer_launches_work is not None and not callable(
            self.outer_launches_work
        ):
            raise SpecError("outer_launches_work must be callable or None")

    @property
    def is_irregular(self) -> bool:
        """True when the iteration space can be non-rectangular.

        Mirrors the prototype tool's analysis step (Section 5): "it
        determines whether any portion of the inner recursion's
        truncation condition is dependent on the outer recursion".
        """
        return self.truncate_inner2 is not None

    def reset_truncation_state(self) -> None:
        """Clear flag/counter scratch state on both trees.

        Executors call this before every run so that repeated runs on
        the same spec are independent.  Specs with
        ``isolated_truncation`` keep their state in policy-local
        storage, so there is nothing on the (shared) trees to reset —
        touching them here would clobber sibling tasks running
        concurrently over the same trees.
        """
        if self.isolated_truncation:
            return
        self.outer_root.reset_truncation_state()
        if self.inner_root is not self.outer_root:
            self.inner_root.reset_truncation_state()

    def interchanged(self) -> "NestedRecursionSpec":
        """The spec a *statically* interchanged program would have.

        Recursion interchange swaps which tree each recursion
        traverses; a statically interchanged program is simply the
        template instantiated with the trees (and their single-index
        truncations) exchanged.  Only valid for regular truncation —
        with ``truncateInner2?`` present the interchange must go
        through the flag machinery (Section 4), i.e. through
        :func:`repro.core.interchange.run_interchanged`, not through a
        spec-level swap.
        """
        if self.is_irregular:
            raise SpecError(
                "a spec with truncate_inner2 cannot be interchanged by "
                "swapping trees; use run_interchanged, which applies the "
                "Section 4 truncation-flag machinery"
            )
        swapped_work = None
        if self.work is not None:
            original_work = self.work
            swapped_work = lambda i, o: original_work(o, i)  # noqa: E731
        swapped_batch = None
        if self.work_batch is not None:
            original_batch = self.work_batch
            swapped_batch = lambda is_, os: original_batch(os, is_)  # noqa: E731
        swapped_soa = None
        if self.work_batch_soa is not None:
            original_soa = self.work_batch_soa
            # The swapped spec's outer view packs the original inner
            # tree, so the roles (and position lists) swap back.
            swapped_soa = (  # noqa: E731
                lambda o_view, i_view, o_positions, i_positions: original_soa(
                    i_view, o_view, i_positions, o_positions
                )
            )
        return NestedRecursionSpec(
            outer_root=self.inner_root,
            inner_root=self.outer_root,
            work=swapped_work,
            truncate_outer=self.truncate_inner1,
            truncate_inner1=self.truncate_outer,
            truncate_inner2=None,
            work_batch=swapped_batch,
            work_batch_soa=swapped_soa,
            name=f"{self.name}-interchanged",
        )

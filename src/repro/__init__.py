"""repro — Locality Transformations for Nested Recursive Iteration Spaces.

A production-quality reproduction of Sundararajah, Sakka & Kulkarni,
*"Locality Transformations for Nested Recursive Iteration Spaces"*
(ASPLOS 2017): recursion interchange and recursion twisting over the
nested recursion template, irregular-truncation machinery, a Python
source-to-source transformation tool, dual-tree n-body benchmarks, and
a simulated memory hierarchy standing in for the paper's hardware
counters.

Quickstart::

    from repro import (
        NestedRecursionSpec, run_original, run_twisted,
        paper_outer_tree, paper_inner_tree, WorkRecorder,
    )

    spec = NestedRecursionSpec(paper_outer_tree(), paper_inner_tree())
    recorder = WorkRecorder()
    run_twisted(spec, instrument=recorder)
    print(recorder.points)  # the Figure 4(b) schedule

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.core import (
    INNER_TREE,
    INTERCHANGE,
    ORIGINAL,
    OUTER_TREE,
    TWIST,
    AccessTraceRecorder,
    CacheProbe,
    FootprintRecorder,
    Instrument,
    NestedRecursionSpec,
    OpCounter,
    ReuseDistanceProbe,
    Schedule,
    WorkRecorder,
    check_transformation,
    combine,
    get_schedule,
    is_outer_parallel,
    run_interchanged,
    run_original,
    run_twisted,
    twist_with_cutoff,
)
from repro.errors import (
    MemorySimError,
    ReproError,
    ScheduleError,
    SoundnessError,
    SpecError,
    TransformError,
)
from repro.memory import (
    AddressMap,
    CacheHierarchy,
    CostModel,
    PerfReport,
    ReuseDistanceAnalyzer,
    instruction_overhead,
    layout_tree,
    scaled_hierarchy,
    speedup,
)
from repro.spaces import (
    IndexNode,
    IterationSpace,
    TreeNode,
    balanced_tree,
    finalize_tree,
    list_tree,
    paper_inner_tree,
    paper_outer_tree,
    perfect_tree,
    random_tree,
    render_schedule,
    tree_from_nested,
)

__version__ = "1.0.0"

__all__ = [
    "AccessTraceRecorder",
    "AddressMap",
    "CacheHierarchy",
    "CacheProbe",
    "CostModel",
    "FootprintRecorder",
    "INNER_TREE",
    "INTERCHANGE",
    "IndexNode",
    "Instrument",
    "IterationSpace",
    "MemorySimError",
    "NestedRecursionSpec",
    "ORIGINAL",
    "OUTER_TREE",
    "OpCounter",
    "PerfReport",
    "ReproError",
    "ReuseDistanceAnalyzer",
    "ReuseDistanceProbe",
    "Schedule",
    "ScheduleError",
    "SoundnessError",
    "SpecError",
    "TWIST",
    "TransformError",
    "TreeNode",
    "WorkRecorder",
    "balanced_tree",
    "check_transformation",
    "combine",
    "finalize_tree",
    "get_schedule",
    "instruction_overhead",
    "is_outer_parallel",
    "layout_tree",
    "list_tree",
    "paper_inner_tree",
    "paper_outer_tree",
    "perfect_tree",
    "random_tree",
    "render_schedule",
    "run_interchanged",
    "run_original",
    "run_twisted",
    "scaled_hierarchy",
    "speedup",
    "tree_from_nested",
    "twist_with_cutoff",
    "__version__",
]

"""Tree Join (TJ, §6.1) as annotated user code for the lint pass.

The simplest benchmark shape: regular truncation (each guard tests only
its own index against ``None``) and a single work statement that
accumulates into a field of the *outer* node.  Every write is keyed by
the outer index, so the §3.3 criterion holds outright and
``python -m repro.transform lint examples/annotated/tj.py`` reports
*interchange-safe* — and, because the write stays inside the outer
subtree each task owns, task-parallel execution (§7.3) is safe too.
"""

from repro.transform import inner_recursion, outer_recursion


@outer_recursion(inner="tj_inner")
def tj_outer(o, i):
    """Outer recursion: walk the outer tree, launching inner joins."""
    if o is None:
        return
    tj_inner(o, i)
    tj_outer(o.left, i)
    tj_outer(o.right, i)


@inner_recursion
def tj_inner(o, i):
    """Inner recursion: join the outer node against the inner tree."""
    if i is None:
        return
    o.data = o.data + o.data * i.data
    tj_inner(o, i.left)
    tj_inner(o, i.right)

"""Regression tests for the selector's full-choice plumbing.

Three once-lossy seams, each pinned here:

1. ``backend="auto"`` used to resolve to a *string*, discarding the
   selector's ``order`` recommendation — auto-picked SoA ran in
   default preorder even when the evidence said veb.  The schedule
   runner must now execute the recommended order end to end (and an
   explicitly pinned order must still win).
2. ``_refuse_unproven`` used to rebuild the downgraded
   :class:`BackendChoice` without ``order``, silently resetting it.
3. ``conformance_verdicts`` used to swallow analyzer exceptions —
   selection silently proceeded with zero conformance evidence.  The
   failure now surfaces as a one-shot ``RuntimeWarning`` plus a
   ``features["conformance_error"]`` entry.

Plus the ``schedule_name`` contract: it is recorded as evidence but
never changes the verdict (the calibration found schedule-independent
winners), and the docstring says exactly that.
"""

import warnings

import pytest

from repro.bench.workloads import make_tj
from repro.core import backend_select
from repro.core.backend_select import (
    BackendChoice,
    _reset_conformance_warning,
    choose_backend,
    clear_choice_cache,
    resolve_backend,
    resolve_backend_choice,
)
from repro.core.schedules import Schedule
from repro.errors import ScheduleError


def _spy_schedule(log):
    """A schedule whose runners record (backend, order) calls."""

    def runner(backend):
        def run(spec, instrument=None, order="preorder", **kwargs):
            log.append((backend, order))

        return run

    recursive = lambda spec, instrument=None: log.append(("recursive", None))
    batched = lambda spec, instrument=None: log.append(("batched", None))
    return Schedule("spy", recursive, batched, runner("soa"), runner("compiled"))


class TestAutoOrderPlumbing:
    def test_executed_order_matches_the_recommendation(self, monkeypatch):
        """The headline regression: auto resolves to the selector's
        backend *and* runs it in the selector's recommended order."""
        monkeypatch.setattr(
            backend_select,
            "choose_backend",
            lambda spec, schedule_name="original", **kwargs: BackendChoice(
                "soa", "spy", {}, order="veb"
            ),
        )
        log = []
        _spy_schedule(log).run(make_tj(64).make_spec(), backend="auto")
        assert log == [("soa", "veb")]

    def test_auto_compiled_inherits_the_recommendation_too(self, monkeypatch):
        monkeypatch.setattr(
            backend_select,
            "choose_backend",
            lambda spec, schedule_name="original", **kwargs: BackendChoice(
                "compiled", "spy", {}, order="veb"
            ),
        )
        log = []
        _spy_schedule(log).run(make_tj(64).make_spec(), backend="auto")
        assert log == [("compiled", "veb")]

    def test_a_pinned_order_beats_the_recommendation(self, monkeypatch):
        monkeypatch.setattr(
            backend_select,
            "choose_backend",
            lambda spec, schedule_name="original", **kwargs: BackendChoice(
                "soa", "spy", {}, order="veb"
            ),
        )
        log = []
        _spy_schedule(log).run(
            make_tj(64).make_spec(), backend="auto", order="bfs"
        )
        assert log == [("soa", "bfs")]

    def test_resolve_backend_choice_returns_the_whole_verdict(self):
        spec = make_tj(200).make_spec()
        choice = resolve_backend_choice(spec, "twist", "auto")
        assert choice.backend == "compiled"
        assert choice.order == "veb"
        assert choice.features["schedule"] == "twist"

    def test_explicit_names_resolve_to_a_neutral_order(self):
        spec = make_tj(200).make_spec()
        choice = resolve_backend_choice(spec, "original", "soa")
        assert (choice.backend, choice.order) == ("soa", "preorder")
        assert resolve_backend(spec, "original", "soa") == "soa"
        with pytest.raises(ScheduleError, match="unknown backend"):
            resolve_backend_choice(spec, "original", "warp-drive")


class TestRefuseUnprovenCarriesOrder:
    def test_downgrade_to_the_proven_alternate_keeps_order(self, monkeypatch):
        monkeypatch.setattr(
            backend_select,
            "conformance_verdicts",
            lambda spec: {
                "recursive": "safe",
                "batched": "safe",
                "soa": "unsafe",
            },
        )
        choice = choose_backend(make_tj(200).make_spec())
        assert choice.backend == "batched"
        assert choice.order == "veb"  # evidence about the spec, kept

    def test_downgrade_to_recursive_keeps_order(self, monkeypatch):
        monkeypatch.setattr(
            backend_select,
            "conformance_verdicts",
            lambda spec: {
                "recursive": "safe",
                "batched": "unsafe",
                "soa": "unsafe",
            },
        )
        choice = choose_backend(make_tj(200).make_spec())
        assert choice.backend == "recursive"
        assert choice.order == "veb"

    def test_compiled_stands_or_falls_with_the_soa_verdict(self, monkeypatch):
        """compiled executes the same work_batch_soa kernel, so an
        unsafe soa verdict must also take compiled off the table."""
        monkeypatch.setattr(
            backend_select,
            "conformance_verdicts",
            lambda spec: {
                "recursive": "safe",
                "batched": "safe",
                "soa": "unsafe",
            },
        )
        choice = choose_backend(make_tj(200).make_spec())
        assert choice.backend not in ("soa", "compiled")


class TestEvidencePlumbing:
    """``BackendChoice.evidence`` must cite the codes behind a pick.

    Two once-lossy seams: auto selections used to carry no static
    evidence at all (the TW30x locality prior now rides on every
    path), and ``_refuse_unproven`` downgrades used to name only the
    offending backend, not the analyzer codes that refuted it.
    """

    def test_every_auto_selection_carries_a_locality_prior(self):
        from repro.bench.workloads import wallclock_cases

        for case in wallclock_cases(0.25):
            choice = choose_backend(case.make_spec())
            tw3 = [
                code for code in choice.evidence if code.startswith("TW3")
            ]
            assert tw3, (
                f"{case.name}: auto selection carries no TW30x evidence "
                f"(got {choice.evidence})"
            )

    def test_evidence_has_no_duplicates(self):
        choice = choose_backend(make_tj(200).make_spec())
        assert len(choice.evidence) == len(set(choice.evidence))

    def test_downgrade_carries_the_full_conformance_code_list(
        self, monkeypatch
    ):
        """A forced downgrade must cite every code the conformance
        analyzer raised on the spec — not just the refused backend."""
        from repro.bench.workloads import wallclock_cases
        from repro.transform.lint import lint_spec

        monkeypatch.setattr(
            backend_select,
            "conformance_verdicts",
            lambda spec: {
                "recursive": "safe",
                "batched": "unsafe",
                "soa": "unsafe",
            },
        )
        clear_choice_cache()
        case = next(c for c in wallclock_cases(0.25) if c.name == "KDE")
        spec = case.make_spec()
        expected = lint_spec(spec).codes()
        assert expected  # KDE genuinely raises TW1xx codes
        choice = choose_backend(spec)
        assert choice.backend == "recursive"
        assert expected <= set(choice.evidence)
        # The locality prior survives the downgrade rebuild.
        assert any(code.startswith("TW3") for code in choice.evidence)

    def test_downgrade_to_the_alternate_keeps_evidence_too(
        self, monkeypatch
    ):
        monkeypatch.setattr(
            backend_select,
            "conformance_verdicts",
            lambda spec: {
                "recursive": "safe",
                "batched": "safe",
                "soa": "unsafe",
            },
        )
        clear_choice_cache()
        choice = choose_backend(make_tj(200).make_spec())
        assert choice.backend == "batched"
        assert any(code.startswith("TW3") for code in choice.evidence)

    def test_features_expose_the_locality_verdicts(self):
        choice = choose_backend(make_tj(200).make_spec())
        locality = choice.features.get("locality")
        assert isinstance(locality, dict)
        assert set(locality) == {
            "interchange", "twist", "layout:veb", "layout:bfs",
        }


class TestScheduleNameContract:
    def test_schedule_is_recorded_but_never_changes_the_verdict(self):
        tj = make_tj(200)
        on_original = choose_backend(tj.make_spec(), "original")
        on_twist = choose_backend(tj.make_spec(), "twist")
        assert (on_original.backend, on_original.order) == (
            on_twist.backend,
            on_twist.order,
        )
        assert on_original.features["schedule"] == "original"
        assert on_twist.features["schedule"] == "twist"

    def test_the_contract_is_documented(self):
        assert "recorded" in choose_backend.__doc__
        assert "schedule-independent" in choose_backend.__doc__


class TestConformanceErrorObservability:
    @pytest.fixture(autouse=True)
    def _rearm(self):
        _reset_conformance_warning()
        yield
        _reset_conformance_warning()

    def _crash_analyzer(self, monkeypatch):
        import repro.transform.lint.backend as lint_backend

        def boom(spec, **kwargs):
            raise RuntimeError("analyzer exploded (test stub)")

        monkeypatch.setattr(lint_backend, "lint_spec", boom)

    def test_analyzer_crash_warns_once_and_lands_in_features(
        self, monkeypatch
    ):
        self._crash_analyzer(monkeypatch)
        with pytest.warns(RuntimeWarning, match="analyzer failed"):
            choice = choose_backend(make_tj(200).make_spec())
        # Selection proceeded structurally, and the evidence gap is on
        # the record instead of silently absent.
        assert "analyzer exploded" in choice.features["conformance_error"]
        # One-shot: the second selection must not warn again.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = choose_backend(make_tj(200).make_spec())
        assert [w for w in caught if w.category is RuntimeWarning] == []
        assert "conformance_error" in second.features

    def test_clean_runs_record_no_error(self):
        choice = choose_backend(make_tj(200).make_spec())
        assert "conformance_error" not in choice.features


class TestChoiceCache:
    """Probe-once memoization keyed by finalized-tree identity.

    The serving steady state re-specs the same resident trees for
    every admitted batch; the second selection must return the pinned
    verdict with zero probe work.
    """

    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_choice_cache()
        yield
        clear_choice_cache()

    def _counting_probe(self, monkeypatch):
        calls = {"probes": 0}
        real = backend_select.probe_features

        def counting(spec):
            calls["probes"] += 1
            return real(spec)

        monkeypatch.setattr(backend_select, "probe_features", counting)
        return calls

    def test_second_selection_does_zero_probe_work(self, monkeypatch):
        calls = self._counting_probe(monkeypatch)
        tj = make_tj(200)
        first = choose_backend(tj.make_spec())
        assert calls["probes"] == 1
        # A *fresh spec instance* over the same finalized trees — the
        # per-batch re-spec a resident service does.
        second = choose_backend(tj.make_spec())
        assert calls["probes"] == 1
        assert second is first  # the pinned BackendChoice, not a copy

    def test_schedule_name_is_part_of_the_key(self, monkeypatch):
        calls = self._counting_probe(monkeypatch)
        tj = make_tj(200)
        choose_backend(tj.make_spec(), "original")
        choose_backend(tj.make_spec(), "twist")
        assert calls["probes"] == 2

    def test_different_trees_never_share_an_entry(self, monkeypatch):
        calls = self._counting_probe(monkeypatch)
        choose_backend(make_tj(200).make_spec())
        choose_backend(make_tj(200).make_spec())
        assert calls["probes"] == 2

    def test_explicit_features_bypass_the_cache(self, monkeypatch):
        tj = make_tj(200)
        pinned = choose_backend(tj.make_spec())
        features = dict(pinned.features)
        bypass = choose_backend(tj.make_spec(), features=features)
        assert bypass is not pinned

    def test_clear_restores_probing(self, monkeypatch):
        calls = self._counting_probe(monkeypatch)
        tj = make_tj(200)
        choose_backend(tj.make_spec())
        clear_choice_cache()
        choose_backend(tj.make_spec())
        assert calls["probes"] == 2

    def test_cache_does_not_pin_dead_trees(self):
        import gc
        import weakref

        tj = make_tj(200)
        spec = tj.make_spec()
        root_ref = weakref.ref(spec.outer_root)
        choose_backend(spec)
        del tj, spec
        gc.collect()
        # Only weakrefs in the cache: the trees must be collectable.
        assert root_ref() is None

"""Unit tests for the cycle cost model."""

import pytest

from repro.errors import MemorySimError
from repro.memory import (
    DEFAULT_OP_WEIGHTS,
    CostModel,
    WorkCost,
    weighted_instructions,
)


class TestCostModel:
    def test_access_cycles(self):
        model = CostModel(hit_latencies=(1, 10), memory_latency=100)
        assert model.access_cycles([5, 2], 3) == 5 * 1 + 2 * 10 + 3 * 100

    def test_total_cycles_include_instructions(self):
        model = CostModel(hit_latencies=(1,), memory_latency=10, base_cpi=2.0)
        assert model.cycles(100, [0], 0) == 200.0

    def test_level_count_mismatch(self):
        model = CostModel(hit_latencies=(1, 2, 3))
        with pytest.raises(MemorySimError):
            model.access_cycles([1, 2], 0)

    def test_default_model_is_three_level(self):
        from repro.memory import DEFAULT_COST_MODEL

        assert len(DEFAULT_COST_MODEL.hit_latencies) == 3


class TestWorkCost:
    def test_total(self):
        assert WorkCost(instructions=5.0).total(10) == 50.0

    def test_default_weight(self):
        assert WorkCost().total(3) == 3.0


class TestWeightedInstructions:
    def test_known_kinds_use_table(self):
        total = weighted_instructions(
            {"call": 10}, work_points=0, work_cost=WorkCost(1.0)
        )
        assert total == 10 * DEFAULT_OP_WEIGHTS["call"]

    def test_unknown_kinds_default_to_one(self):
        total = weighted_instructions(
            {"exotic": 7}, work_points=0, work_cost=WorkCost(1.0)
        )
        assert total == 7.0

    def test_visits_are_free(self):
        total = weighted_instructions(
            {"visit": 1000}, work_points=0, work_cost=WorkCost(1.0)
        )
        assert total == 0.0

    def test_work_weight_applies(self):
        total = weighted_instructions({}, work_points=4, work_cost=WorkCost(2.5))
        assert total == 10.0

"""Tile-structure analysis of recorded schedules.

The paper describes twisting's output visually: "'tiles' of execution
naturally emerge in the schedule (indeed, 3x3 tiles are visible in the
schedule of Figure 4(b))" and, at larger scale, "a series of *nested*
tiles — tiles that are themselves decomposed into tiles".  This module
turns those claims into measurable quantities:

* :func:`window_balance` / :func:`balance_profile` — the discriminating
  metric: over fixed-size windows of the schedule, how *square* is the
  region of the iteration space each window touches?  The original
  schedule's windows are 1-wide strips (balance ``1/w``); the twisted
  schedule's windows are the near-square nested tiles (balance
  approaching 1), which is exactly what "tiles of execution naturally
  emerge" means operationally;
* :func:`rectangle_decomposition` — greedily partitions a schedule
  into maximal contiguous *rectangles* (windows whose executed points
  are exactly (outer label set) x (inner label set)).  Useful for
  synthetic traces and boundary detection; note that any complete
  enumeration of a rectangular space is itself one giant rectangle, so
  on full schedules the balance profile is the informative tool;
* :func:`tile_summary` — aggregate statistics of a decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

WorkPoint = tuple[Hashable, Hashable]


@dataclass(frozen=True)
class Tile:
    """One contiguous rectangular window of a schedule."""

    start: int
    end: int  # exclusive
    outer_labels: frozenset
    inner_labels: frozenset

    @property
    def area(self) -> int:
        """Number of points in the tile."""
        return self.end - self.start

    @property
    def shape(self) -> tuple[int, int]:
        """(outer extent, inner extent)."""
        return (len(self.outer_labels), len(self.inner_labels))

    @property
    def balance(self) -> float:
        """min/max extent ratio: 1.0 for squares, ->0 for strips.

        Loop tiling (and twisting) produce balanced tiles; the
        untransformed schedule produces 1-wide strips (balance 1/n).
        """
        a, b = self.shape
        return min(a, b) / max(a, b)


def rectangle_decomposition(points: Sequence[WorkPoint]) -> list[Tile]:
    """Greedy maximal-prefix rectangle partition of a schedule.

    Starting at each position, the window extends while the points seen
    form an exact cross product (no duplicates, every (o, i)
    combination present).  Greedy maximal prefixes are well defined and
    deterministic; on the Figure 4(b) example they recover the row
    structure of the visible 3x3 tiles, and on the original schedule
    they recover the full columns.
    """
    tiles: list[Tile] = []
    position = 0
    total = len(points)
    while position < total:
        outer_seen: dict[Hashable, int] = {}
        inner_seen: dict[Hashable, int] = {}
        seen: set[WorkPoint] = set()
        end = position
        best_end = position + 1  # a single point is always a rectangle
        while end < total:
            point = points[end]
            if point in seen:
                break
            seen.add(point)
            outer_seen[point[0]] = outer_seen.get(point[0], 0) + 1
            inner_seen[point[1]] = inner_seen.get(point[1], 0) + 1
            end += 1
            if len(seen) == len(outer_seen) * len(inner_seen):
                best_end = end
        window = points[position:best_end]
        tiles.append(
            Tile(
                start=position,
                end=best_end,
                outer_labels=frozenset(p[0] for p in window),
                inner_labels=frozenset(p[1] for p in window),
            )
        )
        position = best_end
    return tiles


@dataclass
class TileSummary:
    """Aggregate statistics of a rectangle decomposition."""

    num_tiles: int
    mean_area: float
    max_area: int
    mean_balance: float

    @classmethod
    def of(cls, tiles: Sequence[Tile]) -> "TileSummary":
        """Summarize a decomposition (empty -> all-zero summary)."""
        if not tiles:
            return cls(0, 0.0, 0, 0.0)
        areas = [tile.area for tile in tiles]
        balances = [tile.balance for tile in tiles]
        return cls(
            num_tiles=len(tiles),
            mean_area=sum(areas) / len(areas),
            max_area=max(areas),
            mean_balance=sum(balances) / len(balances),
        )


def tile_summary(points: Sequence[WorkPoint]) -> TileSummary:
    """Decompose and summarize in one call."""
    return TileSummary.of(rectangle_decomposition(points))


def window_balance(
    points: Sequence[WorkPoint], window: int, stride: int = 0
) -> float:
    """Mean squareness of the iteration-space regions windows touch.

    For each window of ``window`` consecutive points (stepping by
    ``stride``, default non-overlapping), compute ``min(|O|, |I|) /
    max(|O|, |I|)`` over the outer/inner label sets the window touches;
    return the mean.  A column-by-column schedule scores ``~1/window``
    (1-wide strips); a perfectly tiled schedule scores ``~1``
    (sqrt(window) x sqrt(window) blocks).  This is the paper's
    "tiles emerge" claim as a number.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    stride = stride or window
    if not points or len(points) < window:
        return 0.0
    balances = []
    for start in range(0, len(points) - window + 1, stride):
        chunk = points[start : start + window]
        outer = {point[0] for point in chunk}
        inner = {point[1] for point in chunk}
        balances.append(min(len(outer), len(inner)) / max(len(outer), len(inner)))
    return sum(balances) / len(balances)


def balance_profile(
    points: Sequence[WorkPoint], windows: Sequence[int]
) -> dict[int, float]:
    """Window balance at several window sizes."""
    return {window: window_balance(points, window) for window in windows}

"""Unit tests for the transformation tool's CLI."""

import ast

import pytest

from repro.transform.__main__ import main

ANNOTATED = '''
from repro.transform import outer_recursion, inner_recursion

@outer_recursion(inner="inner")
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

@inner_recursion
def inner(o, i):
    if i is None or prune(o, i):
        return
    work(o, i)
    inner(o, i.left)
    inner(o, i.right)
'''


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "user_code.py"
    path.write_text(ANNOTATED)
    return path


class TestCli:
    def test_writes_output_file(self, source_file, tmp_path):
        out = tmp_path / "generated.py"
        assert main([str(source_file), "-o", str(out)]) == 0
        generated = out.read_text()
        ast.parse(generated)
        assert "def outer_twisted(" in generated
        assert "_untrunc" in generated  # irregular: flag code synthesized

    def test_stdout_default(self, source_file, capsys):
        assert main([str(source_file)]) == 0
        captured = capsys.readouterr()
        assert "def outer_swapped(" in captured.out

    def test_explicit_names(self, source_file, capsys):
        assert main([str(source_file), "--outer", "outer", "--inner", "inner"]) == 0
        assert "outer_twisted" in capsys.readouterr().out

    def test_cutoff_flag(self, source_file, capsys):
        assert main([str(source_file), "--cutoff", "32"]) == 0
        assert "_TWIST_CUTOFF = 32" in capsys.readouterr().out

    def test_print_analysis(self, source_file, capsys):
        assert main([str(source_file), "--print-analysis"]) == 0
        err = capsys.readouterr().err
        assert "irregular" in err
        assert "prune(o, i)" in err

    def test_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "ghost.py")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_nonconforming_source(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def outer(o, i):\n    pass\n")
        assert main([str(path), "--outer", "outer", "--inner", "inner"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_mismatched_name_flags(self, source_file, capsys):
        assert main([str(source_file), "--outer", "outer"]) == 2

    def test_generated_module_is_executable(self, source_file, tmp_path):
        out = tmp_path / "generated.py"
        main([str(source_file), "-o", str(out)])
        from repro.spaces import paper_inner_tree, paper_outer_tree

        executed = []
        namespace = {
            "work": lambda o, i: executed.append((o.label, i.label)),
            "prune": lambda o, i: o.label == "B" and i.label == 2,
        }
        exec(compile(out.read_text(), str(out), "exec"), namespace)
        namespace["outer_twisted"](paper_outer_tree(), paper_inner_tree())
        assert len(executed) == 46

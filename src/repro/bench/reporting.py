"""Text reporting: the paper's figures as aligned ASCII tables.

Every experiment driver produces an :class:`ExperimentReport` — a
titled set of columns plus free-form notes — which renders to a fixed
table format.  The benchmark suite writes these to ``results/`` and
echoes them into the pytest terminal summary, so one
``pytest benchmarks/ --benchmark-only`` run leaves the full
paper-shaped output behind.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

#: Where experiment tables are written (created on demand).
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "results")


@dataclass
class ExperimentReport:
    """A titled table of experiment output."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Append a free-form note shown under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """The aligned ASCII table."""
        cells = [[_format(value) for value in row] for row in self.rows]
        widths = [
            max([len(header)] + [len(row[index]) for row in cells])
            for index, header in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        lines.append(
            "  ".join(header.rjust(width) for header, width in zip(self.columns, widths))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def save(self, filename: str, directory: Optional[str] = None) -> str:
        """Write the rendered table under ``results/``; returns the path."""
        directory = directory or os.path.abspath(RESULTS_DIR)
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, filename)
        with open(path, "w") as handle:
            handle.write(self.render() + "\n")
        return path


def _format(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 0.01:
            return f"{value:.4f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,d}"
    return str(value)


def percent(value: float) -> str:
    """Format a ratio as a percentage string."""
    return f"{100.0 * value:.2f}%"


def ascii_bar(value: float, maximum: float, width: int = 40) -> str:
    """A proportional text bar, for speedup 'charts' in the terminal."""
    if maximum <= 0:
        return ""
    filled = int(round(width * max(0.0, value) / maximum))
    return "#" * min(filled, width)

"""Structure-of-arrays tree layouts (the layout-level complement).

The paper's transformations reorder the *schedule*; this module
reorders the *storage*.  :func:`to_soa` packs a finalized
:class:`~repro.spaces.node.IndexNode` tree into contiguous NumPy
columns — ``first_child``/``next_sibling`` child links, ``size``,
``number``, the Section 4 ``trunc``/``trunc_counter`` scratch state,
and domain payload columns — under a selectable *linearization*:

* ``preorder`` — depth-first order, the layout a bump allocator gives a
  recursively built tree; subtrees are contiguous runs, so truncating a
  subtree is one index jump;
* ``bfs`` — level order, the layout of an array-backed heap; siblings
  are adjacent, good for frontier-at-a-time traversals;
* ``veb`` — a van-Emde-Boas-style blocked order: the tree is split at
  half height, the top block laid out first, then each bottom subtree
  recursively.  Nodes within ``h`` levels of each other land within
  ``O(2^h)`` positions regardless of tree size, giving cache-oblivious
  *depth* locality — the layout analog of twisting's parameterless
  claim (Section 3.2): blocked for every cache level at once because no
  block size was ever chosen.

The inverse, :func:`to_linked`, rebuilds linked nodes and is verified
to round-trip children order, sizes, pre-order numbers, and payloads
(``tests/properties/test_soa_properties.py``).

Alongside the storage columns (indexed by layout *position*), a
:class:`SoATree` carries traversal accelerators indexed by pre-order
*rank*: the index-based executors in :mod:`repro.core.soa_exec` walk
ranks — where a subtree is always the contiguous run
``[rank, rank + span[rank])`` — and translate to positions only when
gathering payload columns.  ``soa_view`` caches one packed view per
(root, order) so repeated runs over the same tree pay the packing cost
once.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.errors import SpecError
from repro.spaces.node import IndexNode, TreeNode, tree_depth

#: Linearization orders accepted by :func:`to_soa` and ``soa_view``.
LINEARIZATIONS = ("preorder", "bfs", "veb")

#: Payload getter: maps a node to one column value.
PayloadGetter = Callable[[IndexNode], Any]


@dataclass
class SoATree:
    """A tree packed into contiguous arrays under one linearization.

    Storage columns are indexed by layout *position* (0..n-1 in the
    chosen order); ``rank_pos``/``pos_rank`` translate between
    positions and pre-order ranks.  ``nodes`` keeps the original linked
    node per position so predicates, instruments, and scalar ``work``
    observe the exact objects the recursive executors would.
    """

    #: linearization name this view was packed under
    order: str
    #: original linked node per position
    nodes: list[IndexNode]
    #: parent position per position (-1 at the root)
    parent: np.ndarray
    #: first-child position per position (-1 at leaves)
    first_child: np.ndarray
    #: next-sibling position per position (-1 at last siblings)
    next_sibling: np.ndarray
    #: stored ``node.size`` per position
    size: np.ndarray
    #: stored ``node.number`` per position
    number: np.ndarray
    #: snapshot of ``node.trunc`` per position (scratch column)
    trunc: np.ndarray
    #: snapshot of ``node.trunc_counter`` per position (scratch column)
    trunc_counter: np.ndarray
    #: payload columns, e.g. ``label``/``data`` for ``TreeNode`` trees
    payload: dict[str, np.ndarray]
    #: pre-order rank -> position
    rank_pos: np.ndarray
    #: position -> pre-order rank
    pos_rank: np.ndarray
    #: structural subtree node count per pre-order rank
    span: np.ndarray
    #: position of the root (pre-order rank 0)
    root: int

    # Lazily materialized plain-list accelerators for the hot executor
    # loops (list indexing beats ndarray scalar indexing in CPython).
    _rank_cache: dict = field(default_factory=dict, repr=False)

    @property
    def num_nodes(self) -> int:
        """Number of packed nodes."""
        return len(self.nodes)

    def _ranked(self, key: str, build: Callable[[], list]) -> list:
        cached = self._rank_cache.get(key)
        if cached is None:
            cached = build()
            self._rank_cache[key] = cached
        return cached

    @property
    def rank_nodes(self) -> list[IndexNode]:
        """Original nodes in pre-order (rank-indexed)."""
        nodes = self.nodes
        return self._ranked(
            "nodes", lambda: [nodes[pos] for pos in self.rank_pos.tolist()]
        )

    @property
    def rank_span(self) -> list[int]:
        """Structural subtree sizes, rank-indexed, as a plain list."""
        return self._ranked("span", self.span.tolist)

    @property
    def rank_size(self) -> list[int]:
        """Stored ``node.size`` values, rank-indexed."""
        return self._ranked(
            "size", lambda: self.size[self.rank_pos].tolist()
        )

    @property
    def rank_number(self) -> list[int]:
        """Stored ``node.number`` values, rank-indexed."""
        return self._ranked(
            "number", lambda: self.number[self.rank_pos].tolist()
        )

    @property
    def rank_pos_list(self) -> list[int]:
        """Rank -> position, as a plain list (payload gather hot path)."""
        return self._ranked("pos", self.rank_pos.tolist)

    @property
    def rank_children_rev(self) -> list[list[int]]:
        """Children ranks per rank, pre-reversed for stack pushes.

        The executors push children onto explicit stacks in reversed
        order (so pops visit them in declared order); storing the lists
        already reversed makes that one C-speed ``extend`` per node.
        """

        def build() -> list[list[int]]:
            span = self.rank_span
            out: list[list[int]] = []
            for rank in range(len(span)):
                end = rank + span[rank]
                child = rank + 1
                kids: list[int] = []
                while child < end:
                    kids.append(child)
                    child += span[child]
                kids.reverse()
                out.append(kids)
            return out

        return self._ranked("children_rev", build)

    def children_ranks(self, rank: int) -> list[int]:
        """Pre-order ranks of the children of the node at ``rank``."""
        span = self.rank_span
        end = rank + span[rank]
        child = rank + 1
        out = []
        while child < end:
            out.append(child)
            child += span[child]
        return out

    def column(self, name: str) -> np.ndarray:
        """A payload column by name, with a helpful error."""
        try:
            return self.payload[name]
        except KeyError:
            raise SpecError(
                f"SoA tree has no payload column {name!r}; available: "
                f"{sorted(self.payload)}"
            ) from None


def linearize(root: IndexNode, order: str = "preorder") -> list[IndexNode]:
    """The tree's nodes in the given linearization order.

    This is the single source of truth for layout orders — both
    :func:`to_soa` and the address mapping in
    :mod:`repro.memory.layout` consume it, so the simulated cache sees
    exactly the storage order the SoA executors use.
    """
    if order == "preorder":
        return list(root.iter_preorder())
    if order == "bfs":
        out: list[IndexNode] = []
        frontier: Sequence[IndexNode] = [root]
        while frontier:
            out.extend(frontier)
            frontier = [
                child for node in frontier for child in node.children
            ]
        return out
    if order == "veb":
        return _veb_order(root)
    raise SpecError(
        f"unknown linearization {order!r}; known: {list(LINEARIZATIONS)}"
    )


def _veb_order(root: IndexNode) -> list[IndexNode]:
    """Van-Emde-Boas-style blocked order for an arbitrary tree.

    ``_emit(node, budget)`` lays out the sub-forest of nodes within
    ``budget`` levels of ``node`` by recursively splitting the budget
    in half: top block first, then each frontier subtree.  The budget
    at least halves per nesting level, so the recursion depth is
    ``O(log height)`` even for degenerate list trees.
    """
    out: list[IndexNode] = []

    def _emit(
        node: IndexNode, budget: int, frontier: list[IndexNode]
    ) -> None:
        if budget <= 1:
            out.append(node)
            frontier.extend(node.children)
            return
        top = budget // 2
        mid: list[IndexNode] = []
        _emit(node, top, mid)
        bottom = budget - top
        for block_root in mid:
            _emit(block_root, bottom, frontier)

    leftovers: list[IndexNode] = []
    _emit(root, max(1, tree_depth(root)), leftovers)
    assert not leftovers, "veb budget must cover the whole height"
    return out


def _auto_payload(root: IndexNode) -> dict[str, PayloadGetter]:
    """Default payload columns, inferred from the node type.

    ``TreeNode`` trees pack ``label`` and ``data``; spatial nodes pack
    their point-slice bounds (see
    :func:`repro.dualtree.batch.spatial_payload`); bare index nodes
    pack nothing.
    """
    if isinstance(root, TreeNode):
        return {
            "label": lambda node: node.label,  # type: ignore[attr-defined]
            "data": lambda node: node.data,  # type: ignore[attr-defined]
        }
    if hasattr(root, "start") and hasattr(root, "end"):
        return {
            "start": lambda node: node.start,  # type: ignore[attr-defined]
            "end": lambda node: node.end,  # type: ignore[attr-defined]
            "is_leaf": lambda node: not node.children,
        }
    return {}


def _pack_column(values: list) -> np.ndarray:
    """A column array for collected payload values.

    Numeric payloads become typed arrays (this is what lets SoA-native
    kernels replace per-node attribute walks with one gather); anything
    NumPy cannot type cleanly falls back to object dtype.
    """
    try:
        column = np.asarray(values)
    except (ValueError, TypeError):
        return _object_column(values)
    if column.shape != (len(values),):
        # Ragged/sequence payloads must stay one object per node.
        return _object_column(values)
    return column


def _object_column(values: list) -> np.ndarray:
    column = np.empty(len(values), dtype=object)
    column[:] = values
    return column


def to_soa(
    root: IndexNode,
    order: str = "preorder",
    payload: Optional[dict[str, PayloadGetter]] = None,
) -> SoATree:
    """Pack a finalized linked tree into SoA storage.

    ``payload`` maps column names to per-node getters; by default the
    columns are inferred from the node type (:func:`_auto_payload`).
    The round trip ``to_linked(to_soa(root))`` preserves children
    order, sizes, pre-order numbers, and payloads.
    """
    pre_nodes = list(root.iter_preorder())
    n = len(pre_nodes)
    ordered = linearize(root, order)
    if len(ordered) != n:
        raise SpecError(
            f"linearization {order!r} produced {len(ordered)} nodes for a "
            f"{n}-node tree — the tree must not be mutated while packing"
        )
    pos_of = {id(node): pos for pos, node in enumerate(ordered)}
    rank_of = {id(node): rank for rank, node in enumerate(pre_nodes)}

    span = np.ones(n, dtype=np.int64)
    span_list = span.tolist()
    for rank in range(n - 1, -1, -1):
        total = 1
        for child in pre_nodes[rank].children:
            total += span_list[rank_of[id(child)]]
        span_list[rank] = total
    span = np.asarray(span_list, dtype=np.int64)

    parent = np.full(n, -1, dtype=np.int64)
    first_child = np.full(n, -1, dtype=np.int64)
    next_sibling = np.full(n, -1, dtype=np.int64)
    size = np.empty(n, dtype=np.int64)
    number = np.empty(n, dtype=np.int64)
    trunc = np.zeros(n, dtype=bool)
    trunc_counter = np.empty(n, dtype=np.int64)
    rank_pos = np.empty(n, dtype=np.int64)
    for pos, node in enumerate(ordered):
        size[pos] = node.size
        number[pos] = node.number
        trunc[pos] = node.trunc
        trunc_counter[pos] = node.trunc_counter
        rank_pos[rank_of[id(node)]] = pos
        children = node.children
        if children:
            first_child[pos] = pos_of[id(children[0])]
            for left, right in zip(children, children[1:]):
                next_sibling[pos_of[id(left)]] = pos_of[id(right)]
        for child in children:
            parent[pos_of[id(child)]] = pos
    pos_rank = np.empty(n, dtype=np.int64)
    pos_rank[rank_pos] = np.arange(n, dtype=np.int64)

    getters = _auto_payload(root) if payload is None else payload
    columns = {
        name: _pack_column([getter(node) for node in ordered])
        for name, getter in getters.items()
    }

    return SoATree(
        order=order,
        nodes=list(ordered),
        parent=parent,
        first_child=first_child,
        next_sibling=next_sibling,
        size=size,
        number=number,
        trunc=trunc,
        trunc_counter=trunc_counter,
        payload=columns,
        rank_pos=rank_pos,
        pos_rank=pos_rank,
        span=span,
        root=int(rank_pos[0]),
    )


def _scalar(value: Any) -> Any:
    """NumPy scalar -> Python scalar, so round-trips are type-faithful."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def to_linked(soa: SoATree) -> IndexNode:
    """Rebuild a linked tree from SoA storage.

    Produces :class:`~repro.spaces.node.TreeNode` objects when the
    view carries ``label``/``data`` columns (the round-trip case for
    labeled trees), bare :class:`~repro.spaces.node.IndexNode` objects
    otherwise.  ``size``/``number``/truncation scratch state are
    restored from the columns, *not* recomputed, so a round trip is an
    identity on everything the executors read.
    """
    n = soa.num_nodes
    labeled = "label" in soa.payload
    if labeled:
        labels = soa.payload["label"]
        data = soa.payload.get("data")
        rebuilt: list[IndexNode] = [
            TreeNode(
                _scalar(labels[pos]),
                _scalar(data[pos]) if data is not None else None,
            )
            for pos in range(n)
        ]
    else:
        rebuilt = [IndexNode() for _ in range(n)]
    first_child = soa.first_child.tolist()
    next_sibling = soa.next_sibling.tolist()
    for pos in range(n):
        node = rebuilt[pos]
        node.size = int(soa.size[pos])
        node.number = int(soa.number[pos])
        node.trunc = bool(soa.trunc[pos])
        node.trunc_counter = int(soa.trunc_counter[pos])
        children = []
        child = first_child[pos]
        while child != -1:
            children.append(rebuilt[child])
            child = next_sibling[child]
        node.children = tuple(children)
    return rebuilt[soa.root]


#: Per-root slot holding packed views ({order: SoATree}).  The cache
#: lives on the root node itself, not in a module table: a SoATree
#: strongly references every node of its tree, so any global cache —
#: even a weak-keyed one — would keep dead trees alive through its own
#: values.  On the root, views + tree are one reference cycle the
#: garbage collector frees as a unit (load-bearing for a long-lived
#: service that retires trees).
_VIEW_ATTR = "_soa_views"


def _view_table(root: IndexNode) -> Optional[dict]:
    """The root's view table, created on demand; None when the node
    type cannot carry it (custom nodes without the slot)."""
    table = getattr(root, _VIEW_ATTR, None)
    if table is None:
        table = {}
        try:
            setattr(root, _VIEW_ATTR, table)
        except (AttributeError, TypeError):
            return None
    return table


def soa_view(
    root: IndexNode, order: str = "preorder", refresh: bool = False
) -> SoATree:
    """A cached SoA view of ``root`` under ``order``.

    Views describe a *finalized* tree; if the tree's structure changes
    afterwards, pass ``refresh=True`` to repack.  The cache rides on
    the root object, so it never outlives the tree.
    """
    if order not in LINEARIZATIONS:
        raise SpecError(
            f"unknown linearization {order!r}; known: {list(LINEARIZATIONS)}"
        )
    per_root = _view_table(root)
    if per_root is None:  # slot-less custom node: build uncached
        return to_soa(root, order)
    if refresh or order not in per_root:
        per_root[order] = to_soa(root, order)
    return per_root[order]


# ---------------------------------------------------------------------------
# Shared-memory publication (the task-parallel runtime's data plane)
# ---------------------------------------------------------------------------

#: Structural SoA columns shipped to worker processes, in a fixed order.
SOA_STRUCT_COLUMNS = (
    "parent",
    "first_child",
    "next_sibling",
    "size",
    "number",
    "trunc",
    "trunc_counter",
    "rank_pos",
    "pos_rank",
    "span",
)


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable descriptor of one array living in shared memory.

    A handle is everything a worker needs to re-materialize a zero-copy
    NumPy view: the logical column name, the OS-level segment name, and
    the array's shape/dtype.  Handles travel through task submissions;
    the arrays themselves never do.
    """

    name: str
    shm_name: str
    shape: tuple[int, ...]
    dtype: str


def export_shared_arrays(
    arrays: dict[str, np.ndarray]
) -> tuple[list[SharedArrayHandle], list[shared_memory.SharedMemory]]:
    """Publish arrays into shared-memory segments (one per array).

    Returns ``(handles, segments)``.  The caller owns the segments'
    lifecycle: keep them referenced while workers run, then ``close()``
    **and** ``unlink()`` every one (see :func:`close_shared_segments`)
    — on error paths too, or the blocks leak in ``/dev/shm``.
    """
    handles: list[SharedArrayHandle] = []
    segments: list[shared_memory.SharedMemory] = []
    try:
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            if array.dtype == object:
                raise SpecError(
                    f"array {name!r} has object dtype and cannot be "
                    "published to shared memory; give the column a "
                    "numeric dtype or keep the spec serial"
                )
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes)
            )
            segments.append(segment)
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            handles.append(
                SharedArrayHandle(
                    name=name,
                    shm_name=segment.name,
                    shape=tuple(array.shape),
                    dtype=array.dtype.str,
                )
            )
    except BaseException:
        close_shared_segments(segments, unlink=True)
        raise
    return handles, segments


def attach_shared_arrays(
    handles: Sequence[SharedArrayHandle],
) -> tuple[dict[str, np.ndarray], list[shared_memory.SharedMemory]]:
    """Zero-copy views over published arrays, from inside a worker.

    Returns ``(arrays, segments)``; the worker must keep ``segments``
    alive while it uses the views, then ``close()`` them **without**
    unlinking (the parent owns unlinking).  On Python < 3.13 attaching
    re-registers the segment with the multiprocessing resource
    tracker; pool workers share the parent's tracker process (its fd
    is inherited under fork and passed through under spawn), where the
    registry is a set — the re-registration is idempotent and must
    *not* be compensated with an unregister, or the parent's own
    registration disappears and its ``unlink()`` trips a tracker
    ``KeyError``.
    """
    arrays: dict[str, np.ndarray] = {}
    segments: list[shared_memory.SharedMemory] = []
    try:
        for handle in handles:
            segment = shared_memory.SharedMemory(name=handle.shm_name)
            segments.append(segment)
            arrays[handle.name] = np.ndarray(
                handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf
            )
    except BaseException:
        close_shared_segments(segments, unlink=False)
        raise
    return arrays, segments


def close_shared_segments(
    segments: Sequence[shared_memory.SharedMemory], unlink: bool
) -> None:
    """Close (and optionally unlink) segments, swallowing repeats.

    ``unlink=True`` is the owner-side teardown; workers pass ``False``.
    Safe to call twice and on partially constructed lists, so error
    paths can always run it unconditionally.
    """
    for segment in segments:
        try:
            segment.close()
        except Exception:  # pragma: no cover - already closed
            pass
        if unlink:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            except Exception:  # pragma: no cover - already unlinked
                pass


class SharedPublication:
    """Owner-side lifecycle of a long-lived shared-memory publication.

    :func:`export_shared_arrays` returns bare ``(handles, segments)``
    and leaves teardown discipline entirely to the caller — fine for
    the one-shot process engine, which unwinds inside a ``finally``,
    but a resident service keeps its reference tree published across
    thousands of batches and must survive restarts, double-closes, and
    abandoned instances without leaking ``/dev/shm`` names.  This
    wrapper adds exactly that: ``close()`` is idempotent, a
    ``weakref.finalize`` guard unlinks the segments even when the
    owner is dropped without closing, and ``arrays()`` hands back
    parent-side zero-copy views for callers that want to keep using
    the published buffers directly.
    """

    def __init__(
        self,
        handles: list[SharedArrayHandle],
        segments: list[shared_memory.SharedMemory],
    ) -> None:
        self.handles = list(handles)
        self._segments = list(segments)
        self._finalizer = weakref.finalize(
            self, close_shared_segments, self._segments, True
        )

    @classmethod
    def publish(cls, arrays: dict[str, np.ndarray]) -> "SharedPublication":
        """Export ``arrays`` and take ownership of the segments."""
        handles, segments = export_shared_arrays(arrays)
        return cls(handles, segments)

    @property
    def closed(self) -> bool:
        """True once the segments have been closed and unlinked."""
        return not self._finalizer.alive

    def arrays(self) -> dict[str, np.ndarray]:
        """Parent-side zero-copy views over the published segments."""
        if self.closed:
            raise SpecError("shared publication is closed")
        return {
            handle.name: np.ndarray(
                handle.shape,
                dtype=np.dtype(handle.dtype),
                buffer=segment.buf,
            )
            for handle, segment in zip(self.handles, self._segments)
        }

    def close(self) -> None:
        """Close and unlink every segment; safe to call repeatedly."""
        if self._finalizer.alive:
            self._finalizer()

    def __enter__(self) -> "SharedPublication":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Worker-side attachment cache: one zero-copy attach per published
#: handle set per worker process, keyed by the segment names.  A
#: persistent pool worker services many chunks against the same
#: resident publication; re-attaching per chunk would churn fds and
#: mappings for no benefit.  Entries hold their segments open until
#: :func:`clear_attach_cache` (or worker exit, when the OS reclaims
#: the mappings) — workers never unlink, so a stale entry can never
#: destroy the owner's data.
_ATTACH_CACHE: dict[tuple, tuple[dict[str, np.ndarray], list]] = {}


def attach_shared_arrays_cached(
    handles: Sequence[SharedArrayHandle],
) -> dict[str, np.ndarray]:
    """Like :func:`attach_shared_arrays`, memoized per handle set.

    Returns only the array views; the backing segments are retained by
    the module-level cache for the life of the worker process.  Meant
    for persistent pool workers attaching a resident publication once
    and reusing it across chunks.
    """
    key = tuple(
        (h.name, h.shm_name, h.shape, h.dtype) for h in handles
    )
    hit = _ATTACH_CACHE.get(key)
    if hit is not None:
        return hit[0]
    arrays, segments = attach_shared_arrays(handles)
    _ATTACH_CACHE[key] = (arrays, segments)
    return arrays


def clear_attach_cache() -> None:
    """Drop every cached attachment (closing, never unlinking)."""
    for _arrays, segments in _ATTACH_CACHE.values():
        close_shared_segments(segments, unlink=False)
    _ATTACH_CACHE.clear()


def soa_arrays(soa: SoATree) -> dict[str, np.ndarray]:
    """The flat column dict publishing one packed tree.

    Structural columns come first (:data:`SOA_STRUCT_COLUMNS`), then
    each payload column under a ``payload.<name>`` key.  Object-dtype
    payloads cannot cross process boundaries and raise — specs with
    non-numeric payloads must rebuild their trees in the worker from
    primitive inputs instead.
    """
    arrays = {name: getattr(soa, name) for name in SOA_STRUCT_COLUMNS}
    for name, column in soa.payload.items():
        if column.dtype == object:
            raise SpecError(
                f"payload column {name!r} has object dtype and cannot be "
                "shared; rebuild this tree from primitive inputs in the "
                "worker instead"
            )
        arrays[f"payload.{name}"] = column
    return arrays


def soa_from_arrays(
    arrays: dict[str, np.ndarray], order: str = "preorder"
) -> SoATree:
    """Reconstruct a packed tree (plus its linked nodes) from columns.

    The inverse of :func:`soa_arrays` on the worker side: payload and
    topology columns are used *as given* (zero-copy when they are
    shared-memory views), linked ``nodes`` are rebuilt so predicates
    and recursive executors see real objects, and the result is seeded
    into the ``soa_view`` cache so executors reuse this view instead of
    repacking.  The ``trunc``/``trunc_counter`` scratch columns are
    **copied**: they are mutable run state, and writing them through a
    shared view would race with sibling workers.
    """
    missing = [name for name in SOA_STRUCT_COLUMNS if name not in arrays]
    if missing:
        raise SpecError(f"soa_from_arrays: missing structural columns {missing}")
    payload = {
        name[len("payload."):]: column
        for name, column in arrays.items()
        if name.startswith("payload.")
    }
    n = len(arrays["size"])
    labeled = "label" in payload
    if labeled:
        labels = payload["label"]
        data = payload.get("data")
        nodes: list[IndexNode] = [
            TreeNode(
                _scalar(labels[pos]),
                _scalar(data[pos]) if data is not None else None,
            )
            for pos in range(n)
        ]
    else:
        nodes = [IndexNode() for _ in range(n)]
    first_child = arrays["first_child"].tolist()
    next_sibling = arrays["next_sibling"].tolist()
    size = arrays["size"].tolist()
    number = arrays["number"].tolist()
    for pos in range(n):
        node = nodes[pos]
        node.size = size[pos]
        node.number = number[pos]
        children = []
        child = first_child[pos]
        while child != -1:
            children.append(nodes[child])
            child = next_sibling[child]
        node.children = tuple(children)
    soa = SoATree(
        order=order,
        nodes=nodes,
        parent=arrays["parent"],
        first_child=arrays["first_child"],
        next_sibling=arrays["next_sibling"],
        size=arrays["size"],
        number=arrays["number"],
        trunc=np.array(arrays["trunc"], copy=True),
        trunc_counter=np.array(arrays["trunc_counter"], copy=True),
        payload=payload,
        rank_pos=arrays["rank_pos"],
        pos_rank=arrays["pos_rank"],
        span=arrays["span"],
        root=int(arrays["rank_pos"][0]),
    )
    table = _view_table(nodes[soa.root])
    if table is not None:
        table[order] = soa
    return soa


# ---------------------------------------------------------------------------
# Result columns (the task-parallel runtime's write-back plane)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResultColumn:
    """Declaration of one output a parallel worker produces.

    ``mode`` picks the reduction:

    * ``"shared"`` — a single fill-initialized array, published once
      (shared memory under the process engine, a plain array under the
      thread engine); tasks write **disjoint** slots in place, so no
      parent-side merge is needed.  Correct only when every slot is
      written by at most one task — e.g. MM's output cells or per-query
      neighbor state, whose writes the outer-independence gate proves
      are keyed by the outer index.
    * ``"sum"`` — each worker accumulates into a private
      zero-initialized array returned with its chunk; the parent sums
      chunks in worker order (:func:`reduce_sum_columns`).  Used for
      commutative reductions (TJ's checksum, PC's pair count); integer
      dtypes make the reduction exact regardless of chunking.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str = "float64"
    mode: str = "sum"
    fill: float = 0

    def __post_init__(self) -> None:
        if self.mode not in ("shared", "sum"):
            raise SpecError(
                f"result column {self.name!r}: unknown mode {self.mode!r}; "
                "known: 'shared', 'sum'"
            )
        if self.mode == "sum" and self.fill != 0:
            raise SpecError(
                f"result column {self.name!r}: sum-mode columns must be "
                "zero-filled (chunk sums would double-count the fill)"
            )

    def allocate(self) -> np.ndarray:
        """A fresh fill-initialized array of this column's shape."""
        return np.full(self.shape, self.fill, dtype=np.dtype(self.dtype))


def reduce_sum_columns(
    columns: Sequence[ResultColumn], chunks: Sequence[dict[str, np.ndarray]]
) -> dict[str, np.ndarray]:
    """Sum per-worker column chunks, in deterministic worker order.

    Only ``mode="sum"`` columns participate.  Integer columns reduce
    exactly; float columns reduce in the fixed worker order, so a given
    task assignment always produces the identical bit pattern.
    """
    reduced: dict[str, np.ndarray] = {}
    for column in columns:
        if column.mode != "sum":
            continue
        total = column.allocate()
        for chunk in chunks:
            total += np.asarray(chunk[column.name], dtype=total.dtype)
        reduced[column.name] = total
    return reduced

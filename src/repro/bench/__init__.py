"""Benchmark harness: workloads, runner, reporting, experiment drivers.

* :mod:`repro.bench.workloads` — the six Section 6.1 benchmarks (plus
  KDE for the backend sweep) as :class:`BenchmarkCase` objects (scaled
  inputs);
* :mod:`repro.bench.machine` — the simulated evaluation machine;
* :mod:`repro.bench.runner` — instrumented execution → perf reports;
* :mod:`repro.bench.reporting` — ASCII experiment tables;
* :mod:`repro.bench.experiments` — one driver per paper figure/table;
* :mod:`repro.bench.wallclock` — real-time backend comparison across
  recursive/batched/soa/auto (emits ``BENCH_soa.json``);
* :mod:`repro.bench.perf_floor` — the CI gate holding ``auto`` to
  within 10% of the best single backend.
"""

from repro.bench.machine import bench_hierarchy
from repro.bench.perf_floor import check_perf_floor
from repro.bench.reporting import ExperimentReport, ascii_bar, percent
from repro.bench.runner import run_case, run_pair
from repro.bench.wallclock import run_wallclock, time_backend, write_bench_json
from repro.bench.workloads import (
    BenchmarkCase,
    all_cases,
    make_kde,
    make_knn,
    make_mm,
    make_nn,
    make_pc,
    make_tj,
    make_vp,
    register_spatial_layout,
    wallclock_cases,
)

__all__ = [
    "BenchmarkCase",
    "ExperimentReport",
    "all_cases",
    "ascii_bar",
    "bench_hierarchy",
    "check_perf_floor",
    "make_kde",
    "make_knn",
    "make_mm",
    "make_nn",
    "make_pc",
    "make_tj",
    "make_vp",
    "percent",
    "register_spatial_layout",
    "run_case",
    "run_pair",
    "run_wallclock",
    "time_backend",
    "wallclock_cases",
    "write_bench_json",
]

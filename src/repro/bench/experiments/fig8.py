"""Figure 8: performance-counter measurements behind the speedups.

Two panels, produced from the same runs as Figure 7:

* **8(a)** — instruction overhead of the transformed code ("anywhere
  from a 1% to a 72% increase in the number of instructions");
* **8(b)** — L2 and L3 miss rates of baseline vs transformed ("for
  several of our benchmarks, L3 miss rates drop from 80+% to less than
  5% ... the effects on L2 misses are less pronounced" — note the
  paper's L2/L3 observation is inverted on our simulated machine, see
  EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.bench.experiments.fig7 import Fig7Data
from repro.bench.reporting import ExperimentReport, percent
from repro.memory.counters import instruction_overhead


def fig8_reports(data: Fig7Data) -> tuple[ExperimentReport, ExperimentReport]:
    """Render Figures 8(a) and 8(b) from Figure 7 run data."""
    overhead = ExperimentReport(
        title="Figure 8(a): instruction overhead of transformed code",
        columns=["benchmark", "baseline instr", "twisted instr", "overhead"],
    )
    for name, (baseline, twisted) in data.items():
        overhead.add_row(
            name,
            baseline.instructions,
            twisted.instructions,
            percent(instruction_overhead(baseline, twisted)),
        )
    overhead.add_note("paper: 1% to 72% increase across the six benchmarks")

    misses = ExperimentReport(
        title="Figure 8(b): L2/L3 miss rates, baseline vs twisted",
        columns=[
            "benchmark",
            "L2 base",
            "L2 twist",
            "L3 base",
            "L3 twist",
        ],
    )
    for name, (baseline, twisted) in data.items():
        misses.add_row(
            name,
            percent(baseline.miss_rate("L2")),
            percent(twisted.miss_rate("L2")),
            percent(baseline.miss_rate("L3")),
            percent(twisted.miss_rate("L3")),
        )
    misses.add_note(
        "paper: miss rates improved dramatically in both levels of cache; "
        "L3 baseline 80+% drops to <5% on several benchmarks"
    )
    return overhead, misses

"""Wire-protocol round trips and admission grouping keys."""

import json

import pytest

from repro.errors import SpecError
from repro.serve.protocol import (
    CountQuery,
    CountResult,
    KNNQuery,
    KNNResult,
    NNQuery,
    NNResult,
    decode_query,
    decode_result,
    encode_query,
    encode_result,
    group_key,
)

QUERIES = [
    NNQuery((0.25, 0.75)),
    KNNQuery((0.1, 0.2, 0.3), k=7),
    CountQuery((0.5, 0.5), radius=0.125),
]

RESULTS = [
    NNResult(42, 0.0137),
    KNNResult((3, 1, 4), (0.1, 0.2, 0.3)),
    CountResult(271),
]


class TestRoundTrip:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: type(q).__name__)
    def test_query_survives_json(self, query):
        wire = json.loads(json.dumps(encode_query(query)))
        assert decode_query(wire) == query

    @pytest.mark.parametrize(
        "result", RESULTS, ids=lambda r: type(r).__name__
    )
    def test_result_survives_json(self, result):
        wire = json.loads(json.dumps(encode_result(result)))
        assert decode_result(wire) == result

    def test_awkward_floats_round_trip_exactly(self):
        # repr-exact JSON floats: a third is not representable, and the
        # decoded value must still bit-match for the oracle comparison.
        point = (1.0 / 3.0, 2.0**-40, 1e308)
        query = NNQuery(point)
        assert decode_query(json.loads(json.dumps(encode_query(query)))) == query


class TestGroupKey:
    def test_same_kind_same_params_share_a_tick(self):
        assert group_key(KNNQuery((0.0,), 5)) == group_key(
            KNNQuery((9.0,), 5)
        )
        assert group_key(CountQuery((0.0,), 0.3)) == group_key(
            CountQuery((1.0,), 0.3)
        )

    def test_different_params_never_share(self):
        assert group_key(KNNQuery((0.0,), 5)) != group_key(
            KNNQuery((0.0,), 6)
        )
        assert group_key(CountQuery((0.0,), 0.3)) != group_key(
            CountQuery((0.0,), 0.4)
        )

    def test_kinds_are_disjoint(self):
        keys = {group_key(query) for query in QUERIES}
        assert len(keys) == len(QUERIES)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown query kind"):
            decode_query({"kind": "sort", "point": [0.0]})

    def test_empty_point_rejected(self):
        with pytest.raises(SpecError, match="at least one coordinate"):
            decode_query({"kind": "nn", "point": []})

    def test_bad_k_rejected(self):
        with pytest.raises(SpecError, match="k >= 1"):
            decode_query({"kind": "knn", "point": [0.0], "k": 0})

    def test_negative_radius_rejected(self):
        with pytest.raises(SpecError, match="radius >= 0"):
            decode_query({"kind": "count", "point": [0.0], "radius": -1.0})

    def test_unknown_result_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown result kind"):
            decode_result({"kind": "mystery"})

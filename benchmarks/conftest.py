"""Benchmark-suite plumbing.

Each benchmark runs one experiment driver (timed with
``benchmark.pedantic``, one round — these are simulations, not
microbenchmarks), registers its rendered table, and writes it under
``results/``.  The tables are echoed into the terminal summary so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
the full paper-shaped output.

``REPRO_BENCH_SCALE`` (default 1.0) scales workload sizes for quick
passes, e.g. ``REPRO_BENCH_SCALE=0.2 pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os

import pytest

_TABLES: list[str] = []


def register_report(report, filename: str) -> None:
    """Record a rendered experiment table for the terminal summary."""
    _TABLES.append(report.render())
    report.save(filename)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Workload scale factor from the environment."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def shared_store() -> dict:
    """Cross-file cache so Figure 8 reuses Figure 7's runs."""
    return {}


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("PAPER EXPERIMENT TABLES (also saved under results/)")
    terminalreporter.write_line("=" * 72)
    for text in _TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)

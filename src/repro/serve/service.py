"""The resident back end: finalize once, analyze once, serve forever.

A :class:`QueryService` is the serving counterpart of one benchmark
run.  Construction does all the work every per-call run pays
repeatedly, exactly once:

* the reference kd-tree is built and finalized, and its traversal
  accelerators (leaf blocks, packed bound arrays) are warmed;
* the reference point array is published into shared memory as a
  long-lived :class:`~repro.spaces.soa.SharedPublication`, so pool
  workers attach zero-copy and rebuild the (deterministic) tree once
  per worker — a task submission ships only the admitted query points;
* each query kind is run through the analysis stack — backend
  conformance, TW20x lowerability, and the ``choose_backend``
  structural probe — and the resulting :class:`BackendChoice`
  (backend + storage order) is **pinned**; steady-state batches skip
  straight to execution.

``execute_batch`` then folds one tick's queries into a single batched
outer tree per compatible group (the Section 2 interchange applied to
admission), runs it down the pinned backend, and demuxes per-query
answers out of the declared :class:`~repro.spaces.soa.ResultColumn`
arrays.  ``execute_serial`` is the per-query oracle the batched
answers are bit-compared against.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.backend_select import BackendChoice, choose_backend
from repro.core.schedules import ORIGINAL
from repro.dualtree.batch import bound_arrays, leaf_blocks
from repro.dualtree.kdtree import build_kdtree
from repro.dualtree.spatial import SpatialTree
from repro.dualtree.traverser import dual_tree_spec
from repro.errors import SpecError
from repro.serve.protocol import (
    CountQuery,
    CountResult,
    KNNQuery,
    KNNResult,
    NNQuery,
    NNResult,
    Query,
    Result,
    group_key,
)
from repro.serve.rules import (
    PAD_ID,
    ServeCountRules,
    ServeKnnRules,
    SubtreeVerdictCache,
)
from repro.serve.shards import (
    ReferenceShard,
    gather_columns,
    shard_slices,
)
from repro.spaces.soa import (
    ResultColumn,
    SharedArrayHandle,
    SharedPublication,
    attach_shared_arrays_cached,
)

#: Query kinds the service answers, in analysis order.
KINDS = ("nn", "knn", "count")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one resident service.

    Defaults encode the measured sweet spot on the development host:
    ``query_leaf_size=64`` packs an admitted batch into few, wide
    query leaves (small per-leaf Python overhead, big vectorized base
    cases) and ``max_batch=256`` saturates the batched executors; both
    the admission batcher and the load generator inherit them from
    here so the whole stack agrees on one batching policy.
    """

    #: reference-tree leaf size (dual-tree pruning granularity)
    leaf_size: int = 8
    #: admitted-batch query-tree leaf size
    query_leaf_size: int = 64
    #: admission batch cap (the batcher flushes at this size)
    max_batch: int = 256
    #: admission hold latency cap, seconds
    max_hold_s: float = 0.002
    #: k-NN merge buffer: candidate points accumulated per flush
    flush_candidates: int = 128
    #: LRU entries of cached truncation-verdict rows
    verdict_cache_entries: int = 1024
    #: default k for startup KNN analysis
    analysis_k: int = 5
    #: default radius for startup count analysis
    analysis_radius: float = 0.3
    #: pool workers (0 = execute in-process)
    workers: int = 0
    #: reference-set shards a tick is scattered across
    shards: int = 1

    def __post_init__(self) -> None:
        if self.leaf_size < 1 or self.query_leaf_size < 1:
            raise SpecError("leaf sizes must be >= 1")
        if self.max_batch < 1:
            raise SpecError("max_batch must be >= 1")
        if self.max_hold_s < 0:
            raise SpecError("max_hold_s must be >= 0")
        if self.workers < 0:
            raise SpecError("workers must be >= 0")
        if self.shards < 1:
            raise SpecError("shards must be >= 1")


def _result_columns(kind: str, batch: int, k: int) -> tuple[ResultColumn, ...]:
    """The declared result plane one group batch writes into."""
    if kind in ("nn", "knn"):
        return (
            ResultColumn(
                "ids", (batch, k), "int64", mode="shared", fill=PAD_ID
            ),
            ResultColumn(
                "dists", (batch, k), "float64", mode="shared", fill=np.inf
            ),
        )
    return (ResultColumn("counts", (batch,), "int64", mode="sum"),)


def _run_group(
    reference_tree: SpatialTree,
    kind: str,
    param: float,
    points: np.ndarray,
    *,
    query_leaf_size: int,
    flush_candidates: int,
    backend: str,
    order: str,
    verdict_cache: Optional[SubtreeVerdictCache] = None,
) -> dict[str, np.ndarray]:
    """Execute one compatible group as a single dual-tree batch.

    The admitted points become the outer tree; results land in arrays
    allocated from the group's :func:`_result_columns` declarations
    and are returned for demuxing.  This is the *whole* execution path
    — the service, the serial oracle, and pool workers all funnel
    through it, so batched and serial answers differ only in the batch
    shape (which the rules are proof-built to be insensitive to).
    """
    batch = len(points)
    query_tree = build_kdtree(points, query_leaf_size)
    k = int(param) if kind == "knn" else 1
    columns = {
        column.name: column.allocate()
        for column in _result_columns(kind, batch, k)
    }
    if kind == "count":
        rules = ServeCountRules(
            query_tree,
            reference_tree,
            float(param),
            counts=columns["counts"],
            verdict_cache=verdict_cache,
        )
    else:
        rules = ServeKnnRules(
            query_tree,
            reference_tree,
            k,
            flush_candidates=flush_candidates,
            dists=columns["dists"],
            ids=columns["ids"],
        )
    spec = dual_tree_spec(
        query_tree, reference_tree, rules, name=f"SERVE-{kind.upper()}"
    )
    ORIGINAL.run(spec, backend=backend, order=order)
    if isinstance(rules, ServeKnnRules):
        rules.finalize()
    # Results are indexed by point id == admission order (build_kdtree
    # permutes indices, not the point array), so rows demux directly.
    return columns


# ---------------------------------------------------------------------------
# Pool workers: attach the resident publication, rebuild the tree once

#: Per-worker reference trees, keyed by (segment names, leaf size).
_WORKER_TREES: dict[tuple, SpatialTree] = {}

#: Per-worker cross-batch verdict caches, keyed like the trees (same
#: hot points recur no matter which worker a tick lands on, so each
#: process warms its own).  Verdict rows index a specific tree's node
#: numbers, so a worker serving several shard trees must keep one
#: cache per tree — a shared cache would hand shard B rows assembled
#: against shard A's bounds.
_WORKER_VERDICT_CACHES: dict[tuple, SubtreeVerdictCache] = {}


def _worker_verdict_cache(key: tuple) -> SubtreeVerdictCache:
    cache = _WORKER_VERDICT_CACHES.get(key)
    if cache is None:
        cache = SubtreeVerdictCache()
        _WORKER_VERDICT_CACHES[key] = cache
    return cache


def _worker_run_group(
    handles: Sequence[SharedArrayHandle],
    ref_leaf_size: int,
    kind: str,
    param: float,
    points: list,
    query_leaf_size: int,
    flush_candidates: int,
    backend: str,
    order: str,
) -> dict[str, np.ndarray]:
    """Pool-worker entry: cached zero-copy attach, cached tree rebuild.

    The kd-tree build is deterministic (median splits via
    ``argpartition`` over the attached points), so every worker holds
    the same tree the parent pinned its analysis on; it is rebuilt
    once per worker and reused across batches.
    """
    arrays = attach_shared_arrays_cached(handles)
    key = tuple(sorted(h.shm_name for h in handles)) + (ref_leaf_size,)
    tree = _WORKER_TREES.get(key)
    if tree is None:
        tree = build_kdtree(arrays["references"], ref_leaf_size)
        _WORKER_TREES[key] = tree
    return _run_group(
        tree,
        kind,
        param,
        np.asarray(points, dtype=float),
        query_leaf_size=query_leaf_size,
        flush_candidates=flush_candidates,
        backend=backend,
        order=order,
        verdict_cache=_worker_verdict_cache(key),
    )


@dataclass
class ServiceStats:
    """Steady-state counters, exposed over the wire as ``stats``."""

    queries: int = 0
    batches: int = 0
    max_batch_seen: int = 0
    per_kind: dict = field(default_factory=dict)

    def record(self, kind: str, batch: int) -> None:
        """Account one executed group of ``batch`` queries of ``kind``."""
        self.queries += batch
        self.batches += 1
        self.max_batch_seen = max(self.max_batch_seen, batch)
        self.per_kind[kind] = self.per_kind.get(kind, 0) + batch


class QueryService:
    """A resident dual-tree query service over one reference set."""

    def __init__(
        self,
        references: np.ndarray,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        references = np.ascontiguousarray(
            np.asarray(references, dtype=float)
        )
        if references.ndim != 2 or references.shape[0] < 1:
            raise SpecError(
                f"references must be a non-empty (n, d) array, got shape "
                f"{references.shape}"
            )
        # Finalize once: the tree, then every traversal accelerator
        # the executors would otherwise build lazily mid-request.
        # The full tree always exists — it is the serial oracle's
        # reference plane even when execution is sharded.
        self.reference_tree = build_kdtree(references, self.config.leaf_size)
        leaf_blocks(self.reference_tree)
        bound_arrays(self.reference_tree)
        self.references = self.reference_tree.points
        # Shard + publish once: each shard is its own finalized tree
        # over a contiguous reference slice with its own resident
        # shared-memory publication (one shard == the classic layout).
        self._shards = self._build_shards()
        self.publication = self._shards[0].publication
        self.verdict_cache = self._shards[0].verdict_cache
        self.stats = ServiceStats()
        self._executor: Optional[ProcessPoolExecutor] = None
        # Analyze once: pin one BackendChoice per query kind.
        self.choices: dict[str, BackendChoice] = {}
        self.analysis: dict[str, dict] = {}
        self._analyze()

    # -- startup sharding -------------------------------------------------

    def _build_shards(self) -> list[ReferenceShard]:
        """Cut, finalize, and publish the execution shards.

        With ``shards == 1`` the single shard reuses the full tree —
        bit-for-bit the pre-sharding service.  Otherwise each shard
        tree is built over a contiguous slice, so a shard-local result
        id rebases to the global id by adding the slice start.
        """
        shards: list[ReferenceShard] = []
        for index, (start, stop) in enumerate(
            shard_slices(len(self.references), self.config.shards)
        ):
            if self.config.shards == 1:
                tree = self.reference_tree
            else:
                tree = build_kdtree(
                    self.references[start:stop], self.config.leaf_size
                )
                leaf_blocks(tree)
                bound_arrays(tree)
            shards.append(
                ReferenceShard(
                    index=index,
                    id_base=start,
                    tree=tree,
                    publication=SharedPublication.publish(
                        {"references": tree.points}
                    ),
                    verdict_cache=SubtreeVerdictCache(
                        self.config.verdict_cache_entries
                    ),
                )
            )
        return shards

    # -- startup analysis -------------------------------------------------

    def _analysis_param(self, kind: str) -> float:
        if kind == "knn":
            return float(
                min(self.config.analysis_k, self._shards[0].num_points)
            )
        if kind == "count":
            return self.config.analysis_radius
        return 1.0

    def _analyze(self) -> None:
        """Run lint/conformance/lowerability + the structural probe once.

        A representative full-size batch (reference points reused as
        stand-in queries — same dimensionality, same clustering) is
        specced per kind against the *execution* tree (shard 0; shards
        are balanced, so one probe stands for all); the resulting
        choice is pinned for every steady-state batch of that kind.
        """
        from repro.core.backend_select import conformance_verdicts
        from repro.transform.lint.lower import lint_lower

        exec_tree = self._shards[0].tree
        sample = self.references[
            : min(self.config.max_batch, len(self.references))
        ]
        for kind in KINDS:
            param = self._analysis_param(kind)
            query_tree = build_kdtree(
                np.array(sample, copy=True), self.config.query_leaf_size
            )
            if kind == "count":
                rules = ServeCountRules(query_tree, exec_tree, param)
            else:
                rules = ServeKnnRules(query_tree, exec_tree, int(param))
            spec = dual_tree_spec(
                query_tree,
                exec_tree,
                rules,
                name=f"SERVE-{kind.upper()}",
            )
            choice = choose_backend(spec, "original")
            verdicts = conformance_verdicts(spec)
            try:
                lower = lint_lower(spec)
                lowerability = {
                    "lower": str(lower.lower),
                    "reason": lower.lower_reason,
                }
            except Exception as exc:  # analyzer must never block startup
                lowerability = {"lower": "analyzer-failed", "reason": str(exc)}
            self.choices[kind] = choice
            self.analysis[kind] = {
                "backend": choice.backend,
                "order": choice.order,
                "reason": choice.reason,
                "conformance": verdicts,
                "lowerability": lowerability,
            }
            if (
                choice.backend == "recursive"
                and "conformance" in choice.reason
            ):
                # The small-space rule picks recursive legitimately;
                # a conformance *downgrade* means a kind silently lost
                # its batched hot path — that deserves a loud startup.
                warnings.warn(
                    f"serve kind '{kind}' fell back to the recursive "
                    f"backend: {choice.reason}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    # -- execution --------------------------------------------------------

    def _group_param(self, key: tuple) -> float:
        return float(key[1]) if len(key) > 1 else 1.0

    def _shard_param(self, kind: str, param: float, shard) -> float:
        """Clamp a group's parameter to one shard's capacity.

        A shard smaller than ``k`` answers with its whole point set;
        the gather pads the remaining columns — exactly what a single
        undersized tree would report.
        """
        if kind == "knn":
            return float(min(int(param), shard.num_points))
        return param

    def _execute_group(
        self, key: tuple, points: np.ndarray, serial_oracle: bool = False
    ) -> dict[str, np.ndarray]:
        kind = key[0]
        param = self._group_param(key)
        if serial_oracle:
            # The oracle is what a non-batching server would run per
            # query: the auto selector re-resolves each 1-point spec
            # (typically to the recursive executors) over the full,
            # unsharded reference tree.
            return _run_group(
                self.reference_tree,
                kind,
                param,
                points,
                query_leaf_size=1,
                flush_candidates=self.config.flush_candidates,
                backend="auto",
                order="preorder",
                verdict_cache=None,
            )
        choice = self.choices[kind]
        backend, order = choice.backend, choice.order
        # Scatter: the identical admitted batch runs against every
        # shard (concurrently across pool workers when configured)...
        if self.config.workers > 0:
            executor = self._ensure_executor()
            futures = [
                executor.submit(
                    _worker_run_group,
                    shard.publication.handles,
                    self.config.leaf_size,
                    kind,
                    self._shard_param(kind, param, shard),
                    [tuple(p) for p in points],
                    self.config.query_leaf_size,
                    self.config.flush_candidates,
                    backend,
                    order,
                )
                for shard in self._shards
            ]
            shard_runs = [future.result() for future in futures]
        else:
            shard_runs = [
                _run_group(
                    shard.tree,
                    kind,
                    self._shard_param(kind, param, shard),
                    points,
                    query_leaf_size=self.config.query_leaf_size,
                    flush_candidates=self.config.flush_candidates,
                    backend=backend,
                    order=order,
                    verdict_cache=shard.verdict_cache,
                )
                for shard in self._shards
            ]
        # ...gather: exact reductions (lexicographic top-k merge for
        # NN/k-NN, integer sums for count) rebuild the full-tree
        # columns bit for bit.
        return gather_columns(
            kind,
            shard_runs,
            [shard.id_base for shard in self._shards],
            int(param) if kind == "knn" else 1,
        )

    def _demux(
        self, key: tuple, columns: dict[str, np.ndarray], row: int
    ) -> Result:
        kind = key[0]
        if kind == "nn":
            return NNResult(
                int(columns["ids"][row, 0]), float(columns["dists"][row, 0])
            )
        if kind == "knn":
            return KNNResult(
                tuple(int(i) for i in columns["ids"][row]),
                tuple(float(d) for d in columns["dists"][row]),
            )
        return CountResult(int(columns["counts"][row]))

    def execute_batch(self, queries: Sequence[Query]) -> list[Result]:
        """Answer one admitted tick, demuxed back to input order.

        Queries are grouped by :func:`~repro.serve.protocol.group_key`;
        each group becomes one batched outer tree and one run down the
        group's pinned backend.  Row ``i`` of a group's result columns
        belongs to the group's ``i``-th query, so demuxing is a direct
        row lookup.
        """
        if not queries:
            return []
        groups: dict[tuple, list[int]] = {}
        for index, query in enumerate(queries):
            groups.setdefault(group_key(query), []).append(index)
        results: list[Optional[Result]] = [None] * len(queries)
        for key, indices in groups.items():
            points = np.array(
                [queries[index].point for index in indices], dtype=float
            )
            columns = self._execute_group(key, points)
            self.stats.record(key[0], len(indices))
            for row, index in enumerate(indices):
                results[index] = self._demux(key, columns, row)
        return results  # type: ignore[return-value]

    def execute_serial(self, queries: Sequence[Query]) -> list[Result]:
        """The per-query serial oracle (one spec per query, auto backend)."""
        results: list[Result] = []
        for query in queries:
            key = group_key(query)
            columns = self._execute_group(
                key,
                np.array([query.point], dtype=float),
                serial_oracle=True,
            )
            results.append(self._demux(key, columns, 0))
        return results

    # -- lifecycle --------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self.publication.closed:
            raise SpecError("query service is closed")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=max(1, self.config.workers)
            )
        return self._executor

    def service_stats(self) -> dict:
        """Steady-state counters plus cache and analysis summaries."""
        caches = [shard.verdict_cache.stats() for shard in self._shards]
        return {
            "queries": self.stats.queries,
            "batches": self.stats.batches,
            "max_batch_seen": self.stats.max_batch_seen,
            "per_kind": dict(self.stats.per_kind),
            "verdict_cache": {
                "entries": sum(c["entries"] for c in caches),
                "max_entries": sum(c["max_entries"] for c in caches),
                "hits": sum(c["hits"] for c in caches),
                "misses": sum(c["misses"] for c in caches),
            },
            "backends": {
                kind: {
                    "backend": choice.backend,
                    "order": choice.order,
                }
                for kind, choice in self.choices.items()
            },
            "references": int(len(self.references)),
            "workers": self.config.workers,
            "shards": {
                "count": len(self._shards),
                "points": [shard.num_points for shard in self._shards],
            },
        }

    def close(self) -> None:
        """Shut the pool down and unlink every publication; idempotent."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        for shard in self._shards:
            shard.publication.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Command-line runner for individual paper experiments.

A lighter-weight alternative to the pytest benchmark suite when you
want one figure quickly::

    python -m repro.bench fig5                 # Figure 5 CDF table
    python -m repro.bench fig7 --scale 0.25    # quarter-size speedups
    python -m repro.bench list                 # available experiments
    python -m repro.bench all --scale 0.1      # everything, small

Each experiment prints its paper-shaped table to stdout (the same
renderings the benchmark suite saves under ``results/``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable


def _fig1(scale: float):
    from repro.bench.experiments import run_fig1_fig4

    return run_fig1_fig4()[0]


def _fig5(scale: float):
    from repro.bench.experiments import run_fig5

    return run_fig5(num_nodes=max(64, int(1024 * scale)))[0]


def _fig7(scale: float):
    from repro.bench.experiments import fig7_report, run_fig7

    return fig7_report(run_fig7(scale=scale))


def _fig8(scale: float):
    from repro.bench.experiments import fig8_reports, run_fig7

    overhead, misses = fig8_reports(run_fig7(scale=scale))
    return _join(overhead, misses)


def _fig9(scale: float):
    from repro.bench.experiments import run_fig9
    from repro.bench.experiments.fig9 import DEFAULT_SIZES

    sizes = tuple(max(64, int(size * scale)) for size in DEFAULT_SIZES)
    return run_fig9(sizes=sizes)[0]


def _fig10(scale: float):
    from repro.bench.experiments import run_fig10

    return run_fig10(num_points=max(256, int(2048 * scale)))[0]


def _sec42(scale: float):
    from repro.bench.experiments import run_sec42

    return run_sec42(num_points=max(256, int(4096 * scale)))[0]


def _sec61(scale: float):
    from repro.bench.experiments import run_sec61

    return run_sec61(scale=min(scale, 0.25))[0]


def _sec72(scale: float):
    from repro.bench.experiments import run_sec72

    return run_sec72(n=max(16, int(48 * scale)))[0]


def _sec73(scale: float):
    from repro.bench.experiments import run_sec73

    return run_sec73(num_nodes=max(100, int(500 * scale)))[0]


def _wallclock(scale: float, args: "argparse.Namespace | None" = None):
    from repro.bench.wallclock import (
        DEFAULT_BACKENDS,
        DEFAULT_SCHEDULES,
        run_wallclock,
        write_bench_json,
    )
    from repro.bench.workloads import wallclock_cases

    cases = wallclock_cases(scale)
    schedules = list(DEFAULT_SCHEDULES)
    backends = list(DEFAULT_BACKENDS)
    repeats = 3
    if args is not None:
        if args.benchmark:
            wanted = {name.upper() for name in args.benchmark}
            known = {case.name for case in cases}
            unknown = wanted - known
            if unknown:
                raise SystemExit(
                    f"error: unknown benchmark(s) {sorted(unknown)}; "
                    f"known: {sorted(known)}"
                )
            cases = [case for case in cases if case.name in wanted]
        if args.schedule:
            schedules = list(args.schedule)
        if args.backend:
            backends = list(args.backend)
        repeats = args.repeats
    report, payload = run_wallclock(
        scale=scale,
        schedule_names=schedules,
        backends=backends,
        repeats=repeats,
        cases=cases,
    )
    out = "BENCH_soa.json"
    if args is not None and getattr(args, "json", None):
        out = args.json
    path = write_bench_json(payload, out)
    report.add_note(f"JSON payload written to {path}")
    return report


def _parallel(scale: float, args: "argparse.Namespace | None" = None):
    from repro.bench.parallel_sweep import (
        DEFAULT_ENGINES,
        DEFAULT_SCHEDULES,
        DEFAULT_WORKERS,
        run_parallel_sweep,
        write_parallel_json,
    )
    from repro.bench.workloads import all_cases

    cases = all_cases(scale)
    schedules = list(DEFAULT_SCHEDULES)
    engines = list(DEFAULT_ENGINES)
    workers = list(DEFAULT_WORKERS)
    repeats = 3
    if args is not None:
        if args.benchmark:
            wanted = {name.upper() for name in args.benchmark}
            known = {case.name for case in cases}
            unknown = wanted - known
            if unknown:
                raise SystemExit(
                    f"error: unknown benchmark(s) {sorted(unknown)}; "
                    f"known: {sorted(known)}"
                )
            cases = [case for case in cases if case.name in wanted]
        if args.schedule:
            schedules = list(args.schedule)
        if args.engine:
            engines = list(args.engine)
        if args.workers:
            workers = list(args.workers)
        repeats = args.repeats
    report, payload = run_parallel_sweep(
        scale=scale,
        schedule_names=schedules,
        engines=engines,
        workers=workers,
        repeats=repeats,
        cases=cases,
    )
    path = write_parallel_json(payload)
    report.add_note(f"JSON payload written to {path}")
    return report


def _serve(scale: float, args: "argparse.Namespace | None" = None):
    from repro.bench.serve_load import (
        DEFAULT_JSON_PATH,
        DEFAULT_REFERENCES,
        DEFAULT_RUNS,
        DEFAULT_USERS,
        LoadSpec,
        RunConfig,
        run_serve_suite,
        write_serve_json,
    )
    from repro.serve.service import ServiceConfig

    users = max(64, int(DEFAULT_USERS * scale))
    references = max(256, int(DEFAULT_REFERENCES * scale))
    kwargs: dict = {}
    config = ServiceConfig()
    runs = list(DEFAULT_RUNS)
    if args is not None:
        if args.users is not None:
            users = args.users
        if args.references is not None:
            references = args.references
        if args.serial_sample is not None:
            kwargs["serial_sample"] = args.serial_sample
        if args.concurrency is not None:
            kwargs["concurrency"] = args.concurrency
        if args.hot_fraction is not None:
            kwargs["hot_fraction"] = args.hot_fraction
        if args.max_batch is not None:
            config = ServiceConfig(max_batch=args.max_batch)
        if args.shards:
            # Custom shard sweep: keep the PR 8 baseline as the first
            # run, then one dedup run per requested shard count.
            runs = [DEFAULT_RUNS[0]]
            for shards in args.shards:
                name = "dedup" if shards == 1 else f"dedup-{shards}shards"
                runs.append(RunConfig(name, shards=shards))
    spec = LoadSpec(references=references, users=users, **kwargs)
    report, payload = run_serve_suite(spec, config, runs=runs)
    out = DEFAULT_JSON_PATH
    if args is not None and args.json != "BENCH_soa.json":
        out = args.json
    path = write_serve_json(payload, out)
    report.add_note(f"JSON payload written to {path}")
    return report


def _trajectory(scale: float, args: "argparse.Namespace | None" = None):
    from repro.bench.trajectory import run_trajectory

    return run_trajectory()


def _ablations(scale: float):
    from repro.bench.experiments import run_layout_ablation, run_truncation_ablation

    first = run_truncation_ablation(num_points=max(512, int(4096 * scale)))[0]
    second = run_layout_ablation(num_nodes=max(200, int(1000 * scale)))[0]
    return _join(first, second)


class _Joined:
    """Several reports rendered together."""

    def __init__(self, reports):
        self.reports = reports

    def render(self) -> str:
        return "\n\n".join(report.render() for report in self.reports)


def _join(*reports):
    return _Joined(list(reports))


EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig1": ("Figures 1(c)/4(b) + the Section 3.2 worked example", _fig1),
    "fig5": ("Figure 5: TJ reuse-distance CDF", _fig5),
    "fig7": ("Figure 7: speedups on all six benchmarks", _fig7),
    "fig8": ("Figure 8: instruction overhead + miss rates", _fig8),
    "fig9": ("Figure 9: PC across input sizes", _fig9),
    "fig10": ("Figure 10: the Section 7.1 cutoff study", _fig10),
    "sec42": ("Section 4.2 iteration counts", _sec42),
    "sec61": ("Section 6.1 benchmark inventory", _sec61),
    "sec72": ("Section 7.2 extension: multi-level MMM", _sec72),
    "sec73": ("Section 7.3 extension: task parallelism", _sec73),
    "ablations": ("Truncation-machinery and layout ablations", _ablations),
    "wallclock": (
        "Wall-clock: all executor backends (writes BENCH_soa.json)",
        _wallclock,
    ),
    "parallel": (
        "Wall-clock: multi-worker runtime sweep (writes "
        "BENCH_parallel.json)",
        _parallel,
    ),
    "serve": (
        "Serving load generator: batched service vs per-query serial "
        "(writes BENCH_serve.json)",
        _serve,
    ),
    "trajectory": (
        "Speedup history: aggregate all checked-in BENCH_*.json",
        _trajectory,
    ),
}

#: Experiments whose runners take the parsed args (extra filters).
_ARGS_AWARE = ("wallclock", "parallel", "serve", "trajectory")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run one paper experiment and print its table.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', 'list', 'perf-floor', "
        "'sanitize', or 'cost-validate'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (default 1.0 = paper-shaped sizes)",
    )
    wallclock = parser.add_argument_group(
        "wallclock filters", "narrow the backend sweep (wallclock only)"
    )
    wallclock.add_argument(
        "--benchmark",
        action="append",
        metavar="NAME",
        help="only this benchmark (repeatable; e.g. TJ, MM, KDE)",
    )
    wallclock.add_argument(
        "--schedule",
        action="append",
        metavar="NAME",
        help="only this schedule (repeatable; e.g. original, twist)",
    )
    wallclock.add_argument(
        "--backend",
        action="append",
        metavar="NAME",
        choices=("recursive", "batched", "soa", "compiled", "auto"),
        help="only this backend (repeatable)",
    )
    wallclock.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of-N timing repeats (default 3)",
    )
    par = parser.add_argument_group(
        "parallel sweep filters", "narrow the worker sweep (parallel only)"
    )
    par.add_argument(
        "--engine",
        action="append",
        metavar="NAME",
        choices=("process", "thread"),
        help="only this engine (repeatable)",
    )
    par.add_argument(
        "--workers",
        action="append",
        type=int,
        metavar="N",
        help="only this worker count (repeatable; default 1 2 4)",
    )
    serve = parser.add_argument_group(
        "serve options", "for the 'serve' load generator"
    )
    serve.add_argument(
        "--users",
        type=int,
        default=None,
        help="simulated users (default 100000, scaled by --scale)",
    )
    serve.add_argument(
        "--references",
        type=int,
        default=None,
        help="reference-set size (default 16384, scaled by --scale)",
    )
    serve.add_argument(
        "--serial-sample",
        type=int,
        default=None,
        help="users sampled for the serial baseline (default 1500)",
    )
    serve.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="simulated users in flight at once (default 2048)",
    )
    serve.add_argument(
        "--hot-fraction",
        type=float,
        default=None,
        help="fraction of users re-asking a hot query (default 0.7)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help="admission batch cap (default 256)",
    )
    serve.add_argument(
        "--shards",
        action="append",
        type=int,
        metavar="N",
        help="shard counts to sweep after the baseline run (repeatable; "
        "default: 1 and 2)",
    )
    floor = parser.add_argument_group(
        "perf-floor options", "for the 'perf-floor' CI gate"
    )
    floor.add_argument(
        "--json",
        default="BENCH_soa.json",
        help="wall-clock payload path: written by 'wallclock', read by "
        "'perf-floor' (default BENCH_soa.json)",
    )
    floor.add_argument(
        "--floor",
        type=float,
        default=None,
        help="required fraction of the best single backend (default 0.9)",
    )
    floor.add_argument(
        "--parallel-json",
        default=None,
        help="also gate a BENCH_parallel.json payload (host-aware "
        "1.5x floor on TJ/MM)",
    )
    floor.add_argument(
        "--compiled-json",
        default=None,
        help="also gate a compiled-backend wall-clock payload "
        "(host-aware 1.3x-over-soa floor on TJ/MM)",
    )
    floor.add_argument(
        "--serve-json",
        default=None,
        help="also gate a serving-suite payload (bit-identity and "
        "dedup hit rate always; host-aware qps/p99 floor)",
    )
    floor.add_argument(
        "--scale-cap",
        type=float,
        default=None,
        help="cost-validate: rebuild replay specs at no more than this "
        "scale (CI smoke mode)",
    )
    floor.add_argument(
        "--emit-json",
        default=None,
        metavar="PATH",
        help="cost-validate: also write the per-row verdicts to PATH",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _runner) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        print(
            f"{'perf-floor'.ljust(width)}  CI gate: auto backend within "
            "the floor of the best single backend"
        )
        print(
            f"{'sanitize'.ljust(width)}  CI gate: vectorized backends "
            "shadow-checked against recursive (writes SANITIZE.json)"
        )
        print(
            f"{'cost-validate'.ljust(width)}  CI gate: static cost-model "
            "predictions vs measured BENCH_*.json winners"
        )
        return 0
    if args.experiment in ("cost-validate", "cost_validate"):
        from repro.bench.cost_validate import main as cost_main

        cost_argv: list[str] = []
        if args.json != "BENCH_soa.json":
            cost_argv += ["--json", args.json]
        if args.scale_cap is not None:
            cost_argv += ["--scale-cap", str(args.scale_cap)]
        if args.emit_json is not None:
            cost_argv += ["--emit-json", args.emit_json]
        return cost_main(cost_argv)
    if args.experiment == "perf-floor":
        from repro.bench.perf_floor import DEFAULT_FLOOR, main as floor_main

        floor = DEFAULT_FLOOR if args.floor is None else args.floor
        floor_argv = ["--json", args.json, "--floor", str(floor)]
        if args.parallel_json is not None:
            floor_argv += ["--parallel-json", args.parallel_json]
        if args.compiled_json is not None:
            floor_argv += ["--compiled-json", args.compiled_json]
        if args.serve_json is not None:
            floor_argv += ["--serve-json", args.serve_json]
        return floor_main(floor_argv)
    if args.experiment == "sanitize":
        from repro.bench.sanitize_sweep import DEFAULT_JSON_PATH, main as sanitize_main

        sanitize_argv = ["--scale", str(args.scale)]
        if args.json != "BENCH_soa.json":
            sanitize_argv += ["--json", args.json]
        else:
            sanitize_argv += ["--json", DEFAULT_JSON_PATH]
        for name in args.benchmark or ():
            sanitize_argv += ["--benchmark", name]
        return sanitize_main(sanitize_argv)
    if args.scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    if args.experiment == "all":
        names = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        names = [args.experiment]
    else:
        print(
            f"error: unknown experiment {args.experiment!r}; "
            f"try 'list'",
            file=sys.stderr,
        )
        return 2
    for name in names:
        _description, runner = EXPERIMENTS[name]
        if name in _ARGS_AWARE:
            print(runner(args.scale, args).render())
        else:
            print(runner(args.scale).render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

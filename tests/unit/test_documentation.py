"""Meta-tests: the documentation deliverables hold.

* every public module, class, and function in ``repro`` carries a
  docstring (deliverable: "doc comments on every public item");
* the README's quickstart code actually runs;
* the top-level ``__all__`` names all resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
    )
    def test_module_documented(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
    )
    def test_public_items_documented(self, module):
        undocumented = []
        for name, item in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(item) or inspect.isfunction(item)):
                continue
            if getattr(item, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(item):
                for member_name, member in vars(item).items():
                    if member_name.startswith("_"):
                        continue
                    if not inspect.isfunction(member):
                        continue
                    # getdoc resolves inherited contracts through the
                    # MRO: an override of a documented hook is fine.
                    doc = inspect.getdoc(getattr(item, member_name))
                    if not (doc and doc.strip()):
                        undocumented.append(f"{name}.{member_name}")
        assert not undocumented, f"{module.__name__}: {undocumented}"


class TestPublicApi:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_resolve(self):
        for module in ALL_MODULES:
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        # The exact code from README.md's Quickstart section.
        from repro import (
            NestedRecursionSpec,
            WorkRecorder,
            render_schedule,
            IterationSpace,
            run_original,
            run_twisted,
            paper_outer_tree,
            paper_inner_tree,
        )

        outer, inner = paper_outer_tree(), paper_inner_tree()
        spec = NestedRecursionSpec(outer, inner)
        recorder = WorkRecorder()
        run_twisted(spec, instrument=recorder)
        space = IterationSpace.from_trees(outer, inner)
        space.validate_schedule(recorder.points)
        rendered = render_schedule(space, recorder.points)
        assert "A" in rendered

    def test_architecture_snippet_runs(self):
        from repro import NestedRecursionSpec, run_twisted, combine
        from repro.core import OpCounter, CacheProbe
        from repro.memory import AddressMap, layout_tree, scaled_hierarchy
        from repro.spaces import balanced_tree

        spec = NestedRecursionSpec(balanced_tree(100), balanced_tree(100))
        amap = AddressMap()
        layout_tree(amap, spec.outer_root, "outer")
        layout_tree(amap, spec.inner_root, "inner")
        ops, cache = OpCounter(), CacheProbe(amap, scaled_hierarchy())
        run_twisted(spec, instrument=combine(ops, cache))
        assert cache.hierarchy.stats_by_name()["L1"].accesses > 0

    def test_batched_backend_snippet_runs(self):
        # The code from README.md's "Batched execution backend" section
        # (smaller trees to keep the suite fast).
        from repro.core import OpCounter, get_schedule
        from repro.kernels import TreeJoin

        tj = TreeJoin(127, 127)
        recursive, batched = OpCounter(), OpCounter()
        get_schedule("twist").run(tj.make_spec(), recursive)
        get_schedule("twist").run(tj.make_spec(), batched, backend="batched")
        assert batched.counts == recursive.counts
        assert batched.work_points == recursive.work_points

"""Performance-counter-style reports for schedule executions.

The evaluation section of the paper is built from a small set of
hardware counters: instruction counts (Figure 8a), L2/L3 miss rates
(Figures 8b and 9b), and the wall-clock times behind the speedups
(Figures 7, 9a, 10b).  :class:`PerfReport` is our equivalent of one
perf run: everything measured while executing one (benchmark, schedule)
pair on the simulated machine, plus the derived metrics the figures
plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.memory.cache import CacheStats


@dataclass
class PerfReport:
    """All measurements from one instrumented schedule execution."""

    #: benchmark name, e.g. ``"PC"``
    benchmark: str
    #: schedule name, e.g. ``"original"`` or ``"twist"``
    schedule: str
    #: number of executed work points ("iterations" in Section 4.2)
    work_points: int
    #: raw bookkeeping-operation counts by kind
    op_counts: Mapping[str, int]
    #: total data accesses fed to the memory hierarchy
    accesses: int
    #: per-level cache statistics, keyed by level name (``"L1"``...)
    levels: Mapping[str, CacheStats]
    #: accesses that missed every cache level
    memory_accesses: int
    #: weighted instruction total (see ``costmodel.weighted_instructions``)
    instructions: float
    #: modeled execution time in cycles
    cycles: float
    #: optional benchmark answer, for cross-schedule correctness checks
    result: object = None

    def miss_rate(self, level: str) -> float:
        """Local miss rate of the named level (Figure 8b metric)."""
        return self.levels[level].miss_rate

    @property
    def cpi(self) -> float:
        """Modeled cycles per instruction, the Section 6.2 diagnostic."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    def summary(self) -> str:
        """One-line human-readable digest."""
        rates = " ".join(
            f"{name}:{stats.miss_rate:6.2%}" for name, stats in self.levels.items()
        )
        return (
            f"{self.benchmark:>4s} {self.schedule:<14s} "
            f"work={self.work_points:>12,d} instr={self.instructions:>15,.0f} "
            f"cycles={self.cycles:>16,.0f} miss[{rates}]"
        )


def speedup(baseline: PerfReport, transformed: PerfReport) -> float:
    """Modeled speedup of ``transformed`` over ``baseline`` (Figure 7).

    Values above 1.0 mean the transformation won.
    """
    if transformed.cycles == 0:
        return float("inf")
    return baseline.cycles / transformed.cycles


def instruction_overhead(baseline: PerfReport, transformed: PerfReport) -> float:
    """Relative instruction increase of the transformed code (Figure 8a).

    0.0 means no overhead; 0.72 corresponds to the paper's worst-case
    "72% increase in the number of instructions".
    """
    if baseline.instructions == 0:
        return 0.0
    return transformed.instructions / baseline.instructions - 1.0


def work_overhead(baseline: PerfReport, transformed: PerfReport) -> float:
    """Relative growth in executed iterations (Section 4.2 metric).

    The paper reports interchange at +349% and twisting at +4% (+1.8%
    with subtree truncation) on PC; this is that ratio minus one.
    """
    if baseline.work_points == 0:
        return 0.0
    return transformed.work_points / baseline.work_points - 1.0


def geomean_speedup(pairs: list[tuple[PerfReport, PerfReport]]) -> float:
    """Geometric-mean speedup across benchmarks (the paper's 3.94x)."""
    if not pairs:
        return 1.0
    product = 1.0
    for baseline, transformed in pairs:
        product *= speedup(baseline, transformed)
    return product ** (1.0 / len(pairs))

"""Unit tests for the range-search extension rules."""

import numpy as np
import pytest

from repro.core import run_interchanged, run_original, run_twisted
from repro.dualtree import RangeSearch, RangeSearchRules, brute_range_search
from repro.spaces import clustered_points


@pytest.fixture
def data():
    queries = clustered_points(120, seed=50)
    references = clustered_points(140, seed=51)
    return queries, references


class TestCorrectness:
    def test_matches_brute_force(self, data):
        queries, references = data
        rs = RangeSearch(queries, references, radius=0.08)
        run_original(rs.make_spec())
        expected = brute_range_search(queries, references, 0.08)
        assert [set(hits) for hits in rs.result] == expected

    @pytest.mark.parametrize("run", [run_interchanged, run_twisted])
    def test_transformed_schedules_match(self, run, data):
        queries, references = data
        rs = RangeSearch(queries, references, radius=0.08)
        run(rs.make_spec())
        expected = brute_range_search(queries, references, 0.08)
        assert [set(hits) for hits in rs.result] == expected

    def test_result_order_schedule_invariant(self, data):
        # Stronger than set equality: per-query append order is the
        # inner traversal order, preserved by every schedule.
        queries, references = data
        rs = RangeSearch(queries, references, radius=0.1)
        run_original(rs.make_spec())
        reference_lists = [list(hits) for hits in rs.result]
        for run in (run_interchanged, run_twisted):
            run(rs.make_spec())
            assert [list(hits) for hits in rs.result] == reference_lists

    def test_zero_radius_only_exact_hits(self, data):
        queries, _ = data
        rs = RangeSearch(queries, queries, radius=0.0)
        run_twisted(rs.make_spec())
        for q, hits in enumerate(rs.result):
            assert q in hits  # every point finds itself

    def test_make_spec_resets(self, data):
        queries, references = data
        rs = RangeSearch(queries, references, radius=0.05)
        run_original(rs.make_spec())
        first = [list(h) for h in rs.result]
        run_original(rs.make_spec())
        assert [list(h) for h in rs.result] == first


class TestValidation:
    def test_negative_radius(self, data):
        queries, references = data
        from repro.dualtree import build_kdtree

        with pytest.raises(ValueError):
            RangeSearchRules(
                build_kdtree(queries), build_kdtree(references), radius=-1.0
            )

"""Wall-clock sweep of the real multi-worker runtime.

The wall-clock experiment (:mod:`repro.bench.wallclock`) compares the
*serial* executor families; this module measures what the Section 7.3
task decomposition buys on real hardware: for each benchmark and
schedule it times the serial SoA baseline, then sweeps the parallel
runtime (:mod:`repro.core.parallel_exec`) across worker counts and
engines, checking every configuration's results against the serial run
bit for bit.

The driver emits a machine-readable ``BENCH_parallel.json``.  Schema::

    {
      "experiment": "wallclock_parallel",
      "scale": 1.0,              # workload scale factor
      "repeats": 3,              # best-of-N timing
      "host": {"cpu_count": 8},  # where the numbers were measured
      "workers": [1, 2, 4],
      "engines": ["process", "thread"],
      "results": [
        {
          "benchmark": "TJ",
          "schedule": "original",
          "serial_soa_s": 0.067,  # best-of-N serial SoA baseline
          "runs": [
            {
              "engine": "process",
              "workers": 4,
              "seconds": 0.021,
              "speedup_vs_serial_soa": 3.19,   # serial_soa_s / seconds
              "parallel_efficiency": 0.80,     # speedup / workers
              "spawn_depth": 3,
              "num_tasks": 64,
              "results_match": true            # repr-identical to serial
            },
            ...
          ]
        },
        ...
      ]
    }

``speedup_vs_serial_soa`` on the 4-worker process rows is what the CI
perf floor (:func:`repro.bench.perf_floor.check_parallel_floor`)
guards on TJ/MM — the gate is host-aware and skips speed (never
correctness) checks when the measuring host has fewer cores than the
row's worker count.

Run it as ``python -m repro.bench parallel``; ``--benchmark``,
``--schedule``, ``--workers``, ``--engine`` and ``--repeats`` slice
the sweep.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional, Sequence

from repro.bench.reporting import ExperimentReport
from repro.bench.workloads import BenchmarkCase, all_cases
from repro.core.parallel_exec import REAL_ENGINES, run_parallel
from repro.core.schedules import Schedule, get_schedule

#: Schedules swept by default: untransformed plus the paper's headline.
DEFAULT_SCHEDULES = ("original", "twist")

#: Worker counts swept by default.  Oversubscribed counts still run
#: (the pool just time-slices); the host's ``cpu_count`` is recorded so
#: consumers can judge which rows measured real parallelism.
DEFAULT_WORKERS = (1, 2, 4)

#: Engines swept by default.
DEFAULT_ENGINES = REAL_ENGINES


def time_serial_soa(
    case: BenchmarkCase, schedule: Schedule, repeats: int
) -> tuple[float, str]:
    """Best-of-``repeats`` serial SoA baseline; returns ``(s, repr)``."""
    best = float("inf")
    result = ""
    for _ in range(max(1, repeats)):
        spec = case.make_spec()
        start = time.perf_counter()
        schedule.run(spec, backend="soa")
        best = min(best, time.perf_counter() - start)
        result = repr(case.result())
    return best, result


def time_parallel(
    case: BenchmarkCase,
    schedule: Schedule,
    engine: str,
    workers: int,
    repeats: int,
) -> tuple[float, str, object]:
    """Best-of-``repeats`` end-to-end parallel run for one config.

    The timer brackets everything the serial baseline does not pay —
    shared-memory export, pool startup, reduction — so the reported
    speedups are honest end-to-end numbers.  Returns ``(seconds,
    result_repr, report)`` with the :class:`ParallelExecReport` of the
    final repeat.
    """
    best = float("inf")
    result = ""
    report = None
    for _ in range(max(1, repeats)):
        spec = case.make_spec()
        start = time.perf_counter()
        report = run_parallel(
            spec, schedule=schedule, engine=engine, max_workers=workers
        )
        best = min(best, time.perf_counter() - start)
        result = repr(case.result())
    return best, result, report


def run_parallel_sweep(
    scale: float = 1.0,
    schedule_names: Sequence[str] = DEFAULT_SCHEDULES,
    engines: Sequence[str] = DEFAULT_ENGINES,
    workers: Sequence[int] = DEFAULT_WORKERS,
    repeats: int = 3,
    cases: Optional[list[BenchmarkCase]] = None,
) -> tuple[ExperimentReport, dict]:
    """Sweep workers x engine x schedule over the six benchmarks.

    Returns ``(report, payload)``: the rendered ASCII table and the
    JSON-serializable payload written to ``BENCH_parallel.json``.
    """
    cases = all_cases(scale) if cases is None else cases
    report = ExperimentReport(
        title="Wall-clock: parallel runtime vs serial SoA",
        columns=[
            "benchmark",
            "schedule",
            "engine",
            "workers",
            "serial soa (s)",
            "parallel (s)",
            "speedup",
            "efficiency",
            "tasks",
            "match",
        ],
    )
    entries = []
    for case in cases:
        for name in schedule_names:
            schedule = get_schedule(name)
            serial_s, serial_result = time_serial_soa(case, schedule, repeats)
            entry: dict = {
                "benchmark": case.name,
                "schedule": name,
                "serial_soa_s": round(serial_s, 6),
                "runs": [],
            }
            for engine in engines:
                for count in workers:
                    seconds, result, run = time_parallel(
                        case, schedule, engine, count, repeats
                    )
                    match = result == serial_result
                    speedup = serial_s / seconds if seconds > 0 else 0.0
                    entry["runs"].append(
                        {
                            "engine": engine,
                            "workers": count,
                            "seconds": round(seconds, 6),
                            "speedup_vs_serial_soa": round(speedup, 3),
                            "parallel_efficiency": round(speedup / count, 3),
                            "spawn_depth": run.spawn_depth,
                            "num_tasks": run.num_tasks,
                            "results_match": match,
                        }
                    )
                    report.add_row(
                        case.name,
                        name,
                        engine,
                        count,
                        serial_s,
                        seconds,
                        f"{speedup:.2f}",
                        f"{speedup / count:.2f}",
                        run.num_tasks,
                        "yes" if match else "NO",
                    )
            entries.append(entry)
    report.add_note(
        f"best-of-{repeats} end-to-end timings at scale {scale:g} on a "
        f"{os.cpu_count()}-core host; 'speedup' is serial-soa time over "
        "parallel wall time, 'efficiency' is speedup per worker; 'match' "
        "checks bit-identical results against the serial run"
    )
    payload = {
        "experiment": "wallclock_parallel",
        "scale": scale,
        "repeats": repeats,
        "host": {"cpu_count": os.cpu_count()},
        "workers": list(workers),
        "engines": list(engines),
        "results": entries,
    }
    return report, payload


def write_parallel_json(
    payload: dict, path: str = "BENCH_parallel.json"
) -> str:
    """Write the parallel payload as indented JSON; returns the path."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path

"""Wall-clock comparison of the recursive and batched backends.

The simulated-machine experiments measure *locality*; this module
measures *real time*: for each Section 6.1 benchmark it runs the same
schedule once through the recursive executors and once through the
frontier-batched executors of :mod:`repro.core.batched`, timing both
with :func:`time.perf_counter` and checking that the results are
bit-identical.

The driver emits a machine-readable ``BENCH_batched.json`` next to the
rendered table.  Its schema::

    {
      "experiment": "wallclock_batched",
      "scale": 1.0,            # workload scale factor
      "repeats": 3,            # best-of-N timing
      "results": [
        {
          "benchmark": "TJ",
          "schedule": "original",
          "recursive_s": 0.65,   # best-of-N wall-clock, recursive
          "batched_s": 0.12,     # best-of-N wall-clock, batched
          "speedup": 5.4,        # recursive_s / batched_s
          "results_match": true  # repr-identical benchmark results
        },
        ...
      ]
    }

Run it from the CLI as ``python -m repro.bench wallclock``.
"""

from __future__ import annotations

import json
import time
from typing import Optional, Sequence

from repro.bench.reporting import ExperimentReport
from repro.bench.workloads import BenchmarkCase, all_cases
from repro.core.schedules import Schedule, get_schedule

#: Schedules timed by default: the untransformed baseline plus the
#: paper's headline transformation.
DEFAULT_SCHEDULES = ("original", "twist")


def time_backend(
    case: BenchmarkCase,
    schedule: Schedule,
    backend: str,
    repeats: int = 3,
) -> tuple[float, object]:
    """Best-of-``repeats`` wall-clock seconds for one configuration.

    Each repeat rebuilds the spec via ``case.make_spec()`` (which
    resets benchmark state), so accumulating results never compound.
    Returns ``(seconds, result)`` where ``result`` is the benchmark's
    result probe after the final repeat.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        spec = case.make_spec()
        start = time.perf_counter()
        schedule.run(spec, backend=backend)
        best = min(best, time.perf_counter() - start)
    return best, case.result()


def run_wallclock(
    scale: float = 1.0,
    schedule_names: Sequence[str] = DEFAULT_SCHEDULES,
    repeats: int = 3,
    cases: Optional[list[BenchmarkCase]] = None,
) -> tuple[ExperimentReport, dict]:
    """Time recursive vs batched backends on the six benchmarks.

    Returns ``(report, payload)``: the rendered ASCII table and the
    JSON-serializable payload written to ``BENCH_batched.json``.
    """
    cases = all_cases(scale) if cases is None else cases
    report = ExperimentReport(
        title="Wall-clock: recursive vs batched executors",
        columns=[
            "benchmark",
            "schedule",
            "recursive (s)",
            "batched (s)",
            "speedup",
            "match",
        ],
    )
    entries = []
    for case in cases:
        for name in schedule_names:
            schedule = get_schedule(name)
            recursive_s, recursive_result = time_backend(
                case, schedule, "recursive", repeats
            )
            batched_s, batched_result = time_backend(
                case, schedule, "batched", repeats
            )
            speedup = recursive_s / batched_s if batched_s > 0 else float("inf")
            match = repr(recursive_result) == repr(batched_result)
            report.add_row(
                case.name,
                name,
                recursive_s,
                batched_s,
                f"{speedup:.2f}x",
                "yes" if match else "NO",
            )
            entries.append(
                {
                    "benchmark": case.name,
                    "schedule": name,
                    "recursive_s": round(recursive_s, 6),
                    "batched_s": round(batched_s, 6),
                    "speedup": round(speedup, 3),
                    "results_match": match,
                }
            )
    report.add_note(
        f"best-of-{repeats} wall-clock timings at scale {scale:g}; "
        "'match' checks bit-identical benchmark results across backends"
    )
    payload = {
        "experiment": "wallclock_batched",
        "scale": scale,
        "repeats": repeats,
        "results": entries,
    }
    return report, payload


def write_bench_json(payload: dict, path: str = "BENCH_batched.json") -> str:
    """Write the wall-clock payload as indented JSON; returns the path."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path

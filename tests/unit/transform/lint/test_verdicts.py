"""Verdict tests: the six paper benchmarks and crafted-unsafe cases.

The acceptance bar for the analyzer (§3.3, §6.1): TJ and MM prove
*interchange-safe*, PC proves *twist-safe* (irregular but pure), the
adaptive benchmarks NN/KNN/VP come back *needs-dynamic-check*, and
crafted violations — inner-keyed writes, side-effecting decisions,
cross-task shared accumulators — are rejected with stable codes.
"""

from pathlib import Path

import pytest

from repro.transform.lint import Verdict, lint_source

ANNOTATED = Path(__file__).resolve().parents[4] / "examples" / "annotated"


def lint_benchmark(name: str):
    path = ANNOTATED / f"{name}.py"
    return lint_source(path.read_text(), filename=path.name)


class TestPaperBenchmarks:
    @pytest.mark.parametrize("name", ["tj", "mm"])
    def test_regular_benchmarks_are_interchange_safe(self, name):
        report = lint_benchmark(name)
        assert report.verdict is Verdict.INTERCHANGE_SAFE
        assert report.irregular is False
        assert report.parallel_safe
        assert report.errors == []

    def test_pc_is_twist_safe(self):
        report = lint_benchmark("pc")
        assert report.verdict is Verdict.TWIST_SAFE
        assert report.irregular is True
        assert report.parallel_safe
        assert report.verdict.is_statically_safe

    @pytest.mark.parametrize("name", ["nn", "knn", "vp"])
    def test_adaptive_benchmarks_need_dynamic_check(self, name):
        report = lint_benchmark(name)
        assert report.verdict is Verdict.NEEDS_DYNAMIC_CHECK
        assert "TW023" in report.codes()
        assert not report.verdict.is_statically_safe
        # Adaptive pruning leaves a proof hole, not a refutation.
        assert report.errors == []

    def test_mm_write_is_outer_keyed_through_subscript(self):
        report = lint_benchmark("mm")
        (write,) = report.footprint.writes
        assert write.path.display == "C[...]"
        assert "outer" in write.path.keyed_by


TEMPLATE = '''
from repro.transform import outer_recursion, inner_recursion

@outer_recursion(inner="inner")
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

@inner_recursion
def inner(o, i):
    if {guard}:
        return
    {work}
    inner(o, i.left)
    inner(o, i.right)
'''


def lint_case(work, guard="i is None"):
    return lint_source(TEMPLATE.format(work=work, guard=guard))


class TestCraftedUnsafeCases:
    def test_inner_keyed_write_rejected(self):
        report = lint_case("i.data = i.data + o.data")
        assert report.verdict is Verdict.UNSAFE
        assert "TW010" in report.codes()
        assert not report.parallel_safe

    def test_shared_accumulator_rejected(self):
        report = lint_case("counts.append((o.number, i.number))")
        assert report.verdict is Verdict.UNSAFE
        assert {"TW011", "TW030"} <= report.codes()
        assert not report.parallel_safe

    def test_side_effecting_guard_rejected(self):
        report = lint_case(
            "o.data = o.data + i.data",
            guard="i is None or i.log.append(1)",
        )
        assert report.verdict is Verdict.UNSAFE
        assert "TW020" in report.codes()

    def test_structural_mutation_rejected(self):
        report = lint_case("o.size = o.size - 1")
        assert report.verdict is Verdict.UNSAFE
        assert "TW024" in report.codes()

    def test_outer_only_disjunct_rejected_as_diagnostic(self):
        report = lint_case("o.data = i.data", guard="i is None or o.skip")
        assert report.verdict is Verdict.UNSAFE
        assert "TW003" in report.codes()


class TestVerdictDerivation:
    def test_unknown_helper_degrades_to_dynamic_check(self):
        report = lint_case("work(o, i)")
        assert report.verdict is Verdict.NEEDS_DYNAMIC_CHECK
        assert "TW013" in report.codes()

    def test_info_findings_do_not_degrade(self):
        report = lint_case("o.stats.best = i.data")
        assert report.verdict is Verdict.INTERCHANGE_SAFE
        assert "TW015" in report.codes()

    def test_unrecognized_source_is_unsafe_with_template_code(self):
        report = lint_source("def solo(o, i):\n    pass\n")
        assert report.verdict is Verdict.UNSAFE
        assert report.codes() & {"TW001", "TW002"}
        assert not report.parallel_safe

    def test_unparsable_source_is_unsafe_with_parse_code(self):
        report = lint_source("def broken(:\n")
        assert report.verdict is Verdict.UNSAFE
        assert "TW001" in report.codes()

    def test_render_mentions_verdict_and_pair(self):
        report = lint_case("o.data = i.data")
        text = report.render()
        assert "outer/inner" in text
        assert "verdict: interchange-safe" in text
        assert "truncation: regular" in text
        assert "task-parallel: safe" in text

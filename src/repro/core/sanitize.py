"""Shadow execution: run a vectorized backend against the recursive one.

The conformance analyzer (:mod:`repro.transform.lint.backend`) proves
what it can statically; everything it marks ``needs-dynamic-check`` is
discharged here, at runtime, by the paper-faithful method: run the
*reference* (recursive) backend and the *candidate* backend on the
same spec and demand bit-identical observable behaviour.

Three phases, each on a fresh spec from the caller's factory:

1. **record** — the recursive backend runs under an
   :class:`EventRecorder`, capturing the full instrumentation event
   stream (``op`` kinds, per-tree node accesses, ``work`` pairs — all
   by pre-order node rank) plus the payload probe's value.
2. **lockstep** — the candidate backend runs under a
   :class:`LockstepChecker` that compares every event against the
   recording *as it happens* and raises :class:`SanitizeDivergence` at
   the first mismatch, reporting the event index, both events (node
   ranks included) and the engaged kernel names.
3. **fast-path** — the candidate backend runs *uninstrumented*, because
   the executors' bulk and block-truncation fast paths only engage when
   nothing is watching (see
   :func:`repro.core.batched.engaged_kernels`); the payload probe is
   the only observable left, and it must still match the reference.

``schedule.run(spec, backend="sanitize", spec_factory=...)`` wraps
:func:`run_sanitized` for one-line use; the bench harness sweeps it
over every built-in benchmark (``python -m repro.bench sanitize``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.batched import engaged_kernels
from repro.core.instruments import Instrument, combine
from repro.core.spec import NestedRecursionSpec
from repro.errors import ReproError

#: Type of the per-run payload probe: called after each phase, its
#: value (compared via ``repr``) must be identical across backends.
Probe = Callable[[], Any]


def _rank(node: object) -> object:
    """Stable cross-backend identity of a node: its pre-order rank."""
    number = getattr(node, "number", None)
    return number if number is not None else getattr(node, "label", repr(node))


class SanitizeDivergence(ReproError):
    """The candidate backend observably diverged from the recursive one.

    Carries enough to reproduce: which spec and backend, which phase
    (``events`` or ``payload``), the 0-based index of the first
    diverging event, both event tuples (node ranks included), and the
    vectorized kernel names that were live when it happened.
    """

    def __init__(
        self,
        message: str,
        *,
        spec_name: str = "<spec>",
        backend: str = "?",
        schedule: str = "?",
        phase: str = "events",
        index: Optional[int] = None,
        expected: object = None,
        actual: object = None,
        kernels: Optional[list] = None,
    ) -> None:
        super().__init__(message)
        self.spec_name = spec_name
        self.backend = backend
        self.schedule = schedule
        self.phase = phase
        self.index = index
        self.expected = expected
        self.actual = actual
        self.kernels = kernels or []


class EventRecorder(Instrument):
    """Records the full instrumentation event stream, by node rank."""

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def op(self, kind: str) -> None:
        self.events.append(("op", kind))

    def access(self, tree: str, node: object) -> None:
        self.events.append(("access", tree, _rank(node)))

    def work(self, o: object, i: object) -> None:
        self.events.append(("work", _rank(o), _rank(i)))


class LockstepChecker(Instrument):
    """Replays a recording, raising at the first diverging event."""

    def __init__(
        self,
        expected: list[tuple],
        *,
        spec_name: str,
        backend: str,
        schedule: str,
        kernels: list,
    ) -> None:
        self.expected = expected
        self.position = 0
        self._context = {
            "spec_name": spec_name,
            "backend": backend,
            "schedule": schedule,
            "kernels": kernels,
        }

    def _step(self, actual: tuple) -> None:
        index = self.position
        expected = (
            self.expected[index] if index < len(self.expected) else None
        )
        if actual != expected:
            raise SanitizeDivergence(
                f"{self._context['spec_name']}: backend "
                f"{self._context['backend']!r} diverged from 'recursive' "
                f"at event {index}: expected {expected!r}, got {actual!r} "
                f"(kernels: {self._context['kernels']})",
                phase="events",
                index=index,
                expected=expected,
                actual=actual,
                **self._context,
            )
        self.position += 1

    def op(self, kind: str) -> None:
        self._step(("op", kind))

    def access(self, tree: str, node: object) -> None:
        self._step(("access", tree, _rank(node)))

    def work(self, o: object, i: object) -> None:
        self._step(("work", _rank(o), _rank(i)))

    def finish(self) -> None:
        """Fail if the candidate produced *fewer* events than recorded."""
        if self.position != len(self.expected):
            raise SanitizeDivergence(
                f"{self._context['spec_name']}: backend "
                f"{self._context['backend']!r} stopped after "
                f"{self.position} events; 'recursive' produced "
                f"{len(self.expected)} (first missing: "
                f"{self.expected[self.position]!r})",
                phase="events",
                index=self.position,
                expected=self.expected[self.position],
                actual=None,
                **self._context,
            )


def _kernel_names(spec: NestedRecursionSpec) -> list:
    names = []
    for attr in ("work_batch", "work_batch_soa", "truncate_inner2_batch"):
        fn = getattr(spec, attr)
        if fn is not None:
            names.append(f"{attr}={getattr(fn, '__qualname__', repr(fn))}")
    return names


@dataclass
class SanitizeReport:
    """What a divergence-free sanitize run covered."""

    spec_name: str
    schedule: str
    #: the concrete backend that was checked against ``recursive``
    backend: str
    #: number of instrumentation events compared in lockstep
    events: int
    #: phases actually executed (``record``/``lockstep``/``fast-path``)
    phases: list = field(default_factory=list)
    #: fast paths the uninstrumented phase engaged (see
    #: :func:`repro.core.batched.engaged_kernels`)
    engaged: dict = field(default_factory=dict)
    #: ``repr`` of the reference payload (``None`` without a probe)
    payload: Optional[str] = None

    def to_json(self) -> dict:
        """JSON-ready dict (one entry of the sanitize sweep's payload)."""
        return {
            "spec": self.spec_name,
            "schedule": self.schedule,
            "backend": self.backend,
            "events": self.events,
            "phases": list(self.phases),
            "engaged": dict(self.engaged),
            "payload": self.payload,
        }


def _check_payload(
    reference: Optional[str],
    probe: Optional[Probe],
    phase: str,
    context: dict,
) -> None:
    if probe is None:
        return
    actual = repr(probe())
    if actual != reference:
        raise SanitizeDivergence(
            f"{context['spec_name']}: backend {context['backend']!r} "
            f"payload diverged from 'recursive' after the {phase} phase: "
            f"expected {reference}, got {actual} "
            f"(kernels: {context['kernels']})",
            phase="payload",
            expected=reference,
            actual=actual,
            **context,
        )


def run_sanitized(
    spec_factory: Callable[[], NestedRecursionSpec],
    schedule,
    backend: str = "auto",
    order: str = "preorder",
    probe: Optional[Probe] = None,
    instrument: Optional[Instrument] = None,
) -> SanitizeReport:
    """Shadow-execute ``backend`` against ``recursive`` for one spec.

    ``spec_factory`` must return a *fresh* spec (benchmark state reset)
    on every call — each phase re-runs the whole traversal, and a
    stateful spec re-run on stale state diverges for reasons that have
    nothing to do with the backend.  ``probe`` is an optional zero-arg
    callable returning the benchmark's payload (compared by ``repr``
    after every phase).  ``schedule`` is a
    :class:`~repro.core.schedules.Schedule` or a schedule name.

    Returns a :class:`SanitizeReport` on success; raises
    :class:`SanitizeDivergence` at the first observable difference.
    """
    from repro.core.backend_select import resolve_backend_choice
    from repro.core.schedules import get_schedule

    if isinstance(schedule, str):
        schedule = get_schedule(schedule)

    # Phase 1: record the reference behaviour.
    spec = spec_factory()
    choice = resolve_backend_choice(spec, schedule.name, backend)
    candidate = choice.backend
    if order == "preorder" and choice.order != "preorder":
        # An unpinned order adopts the selector's recommendation, so
        # the shadow run validates exactly what auto would execute.
        order = choice.order
    if candidate == "parallel":
        # The multi-worker runtime cannot carry instruments (worker
        # event streams interleave), so shadow the serial engine its
        # tasks run on instead — the runtime's own round-trip tests
        # cover the serial-to-parallel step.
        candidate = "soa"
    context = {
        "spec_name": spec.name or "<spec>",
        "backend": candidate,
        "schedule": schedule.name,
        "kernels": _kernel_names(spec),
    }
    recorder = EventRecorder()
    schedule.run(
        spec, instrument=combine(recorder, instrument), backend="recursive"
    )
    reference_payload = repr(probe()) if probe is not None else None
    phases = ["record"]

    report = SanitizeReport(
        spec_name=context["spec_name"],
        schedule=schedule.name,
        backend=candidate,
        events=len(recorder.events),
        phases=phases,
        payload=reference_payload,
    )
    if candidate == "recursive":
        # Nothing to shadow: the candidate *is* the reference.
        return report

    # Phase 2: candidate backend in lockstep with the recording.
    spec = spec_factory()
    checker = LockstepChecker(recorder.events, **context)
    schedule.run(
        spec,
        instrument=combine(checker, instrument),
        backend=candidate,
        order=order,
    )
    checker.finish()
    _check_payload(reference_payload, probe, "lockstep", context)
    phases.append("lockstep")

    # Phase 3: candidate backend uninstrumented, engaging the fast
    # paths the lockstep phase suppressed; the payload is the witness.
    if probe is not None:
        spec = spec_factory()
        report.engaged = engaged_kernels(spec)
        schedule.run(spec, backend=candidate, order=order)
        _check_payload(reference_payload, probe, "fast-path", context)
        phases.append("fast-path")

    return report

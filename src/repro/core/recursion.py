"""Recursion-depth management for deep iteration spaces.

The faithful executors are written recursively, like the paper's
listings.  CPython's default recursion limit (1000) is too small for
the degenerate (list-shaped) trees that make the template "devolve into
a doubly-nested loop" (Section 2.1), so every executor wraps its run in
:func:`recursion_guard`, which raises the limit to cover the combined
depth of the two trees plus interpreter headroom and restores it
afterwards.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.spaces.node import IndexNode, tree_depth

#: Stack frames reserved for the interpreter, pytest, and instruments.
_HEADROOM = 256

#: Frames one template level consumes per tree level (outer + inner
#: recursive calls, instruments, predicate calls).
_FRAMES_PER_LEVEL = 4


def required_limit(outer_root: IndexNode, inner_root: IndexNode) -> int:
    """A recursion limit sufficient for any schedule over the two trees.

    Every schedule's call depth is bounded by the sum of the two tree
    depths (the twisted schedule interleaves the recursions but each
    call still descends one of the trees by one level).
    """
    depth = tree_depth(outer_root) + tree_depth(inner_root)
    return depth * _FRAMES_PER_LEVEL + _HEADROOM


@contextmanager
def recursion_guard(
    outer_root: IndexNode,
    inner_root: IndexNode,
    minimum: Optional[int] = None,
) -> Iterator[None]:
    """Temporarily raise the interpreter recursion limit if needed."""
    needed = max(required_limit(outer_root, inner_root), minimum or 0)
    previous = sys.getrecursionlimit()
    if needed > previous:
        sys.setrecursionlimit(needed)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)

"""Source-to-source transformation tool (the Section 5 prototype).

The paper's prototype is a Clang libtooling pass; this subpackage is
its Python analog with the same pipeline:

* :mod:`repro.transform.annotations` — programmer markers;
* :mod:`repro.transform.recognizer` — the template sanity check;
* :mod:`repro.transform.analysis` — irregular-truncation detection;
* :mod:`repro.transform.codegen` — synthesis of interchanged and
  twisted sources (including the Figure 6(b) flag code);
* :mod:`repro.transform.lint` — the static schedule-safety analyzer
  (footprints, purity, task-parallel races, ``TW0xx`` diagnostics);
* :mod:`repro.transform.tool` — the driver (``transform_source``,
  ``twist_functions``), which gates codegen on the analyzer's verdict.
"""

from repro.transform.analysis import TruncationAnalysis, analyze_truncation
from repro.transform.annotations import inner_recursion, outer_recursion, role_of
from repro.transform.codegen import (
    generate_interchanged,
    generate_module,
    generate_twisted,
)
from repro.transform.lint import (
    Diagnostic,
    LintReport,
    Severity,
    Verdict,
    lint_source,
    lint_template,
)
from repro.transform.recognizer import RecursionTemplate, recognize
from repro.transform.tool import (
    TransformResult,
    find_annotated_pair,
    transform_annotated_source,
    transform_source,
    twist_functions,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "RecursionTemplate",
    "Severity",
    "TransformResult",
    "TruncationAnalysis",
    "Verdict",
    "analyze_truncation",
    "find_annotated_pair",
    "generate_interchanged",
    "generate_module",
    "generate_twisted",
    "inner_recursion",
    "lint_source",
    "lint_template",
    "outer_recursion",
    "recognize",
    "role_of",
    "transform_annotated_source",
    "transform_source",
    "twist_functions",
]

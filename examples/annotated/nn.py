"""Nearest Neighbor (NN, §6.1) as annotated user code for the lint pass.

The adaptive-pruning case.  The inner guard compares the lower-bound
distance to the query node's *current best* — state the work itself
tightens as the traversal proceeds.  All writes are keyed by the outer
index (each query node owns its ``best``), but how much of the inner
tree gets pruned depends on the order work executes, so static
analysis cannot prove schedule equivalence: the guard-reads-what-work-
writes dependence is flagged as TW023 and the verdict is
*needs-dynamic-check* — confirm with
:func:`repro.core.soundness.check_transformation` on concrete inputs.
"""

from repro.transform import inner_recursion, outer_recursion

# lint: assume-pure: mindist, closest_in


@outer_recursion(inner="nn_inner")
def nn_outer(o, i):
    """Outer recursion over the query tree."""
    if o is None:
        return
    nn_inner(o, i)
    nn_outer(o.left, i)
    nn_outer(o.right, i)


@inner_recursion
def nn_inner(o, i):
    """Inner recursion over the data tree, pruned by the current best."""
    if i is None or mindist(o, i) > o.best:
        return
    o.best = min(o.best, closest_in(o, i))
    nn_inner(o, i.left)
    nn_inner(o, i.right)

"""Integration: every example script runs green, end to end.

The examples are executable documentation — each asserts its own
claims internally (oracle checks, locality wins), so running them is a
real test, not a smoke ritual.  They execute in subprocesses so import
state and recursion limits cannot leak between them.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

ALL_EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_every_example_is_covered():
    # If a new example lands, this list (and so the parametrization)
    # picks it up automatically; this guard just ensures the directory
    # is where we think it is.
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 8


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"

"""Unit tests for the backend-conformance analyzer (TW1xx).

Two halves:

* the built-in benchmark specs get exactly the verdicts the design
  promises (TJ/MM provably ``soa-safe``, PC/KNN/VP/KDE ``batch-safe``,
  NN ``needs-dynamic-check`` on its order-sensitive best-distance
  update);
* a mutation harness: seeded conformance bugs planted in otherwise
  well-formed kernels, each of which the analyzer must catch with the
  right diagnostic.  (The bugs a *static* analysis cannot see are
  planted in ``tests/unit/core/test_sanitize.py`` instead, where the
  shadow executor catches them.)

The kernels here are module-level functions, not strings: the analyzer
works on live function objects via ``inspect.getsource``, so the
mutants must be real, importable code.
"""

import json

import pytest

from repro.core.spec import NestedRecursionSpec
from repro.spaces.trees import balanced_tree
from repro.transform.lint import SpecVerdict, analyze_kernel, lint_spec
from repro.transform.lint.backend import SCHEMA_VERSION, clear_cache
from repro.transform.lint.diagnostics import DiagnosticSink


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


# ---------------------------------------------------------------------------
# Built-in specs


def _builtin_reports(scale=0.05):
    from repro.bench.workloads import wallclock_cases

    return {
        case.name: lint_spec(case.make_spec())
        for case in wallclock_cases(scale)
    }


class TestBuiltinVerdicts:
    EXPECTED = {
        "TJ": "soa-safe",
        "MM": "soa-safe",
        "PC": "batch-safe",
        "NN": "needs-dynamic-check",
        "KNN": "batch-safe",
        "VP": "batch-safe",
        "KDE": "batch-safe",
    }

    def test_every_builtin_spec_gets_a_verdict(self):
        reports = _builtin_reports()
        assert {name: str(r.verdict) for name, r in reports.items()} == (
            self.EXPECTED
        )

    def test_provably_safe_specs_are_clean(self):
        reports = _builtin_reports()
        assert reports["TJ"].codes() == set()
        assert reports["MM"].codes() == set()

    def test_nn_order_sensitivity_is_the_named_hole(self):
        """NN's vectorized best-distance update is exactly what cannot
        be proven statically: TW108, and only on the batched backend —
        the SoA inline mode runs the scalar kernel and stays safe."""
        report = _builtin_reports()["NN"]
        assert "TW108" in report.codes()
        assert report.backends["batched"] == "needs-dynamic-check"
        assert report.backends["soa"] == "safe"
        assert report.backends["recursive"] == "safe"

    def test_stateless_dualtree_specs_carry_only_infos(self):
        reports = _builtin_reports()
        for name in ("KNN", "VP", "KDE"):
            report = reports[name]
            assert report.codes() <= {"TW107", "TW109"}
            assert report.errors == [] and report.warnings == []

    def test_staged_arrays_are_recorded_for_pc(self):
        """PC's kernels read staged leaf/bound arrays: two TW109 infos
        (work_batch and the block guard), nothing stronger."""
        report = _builtin_reports()["PC"]
        assert [d.code for d in report.diagnostics] == ["TW109", "TW109"]


# ---------------------------------------------------------------------------
# Mutation harness: seeded bugs the analyzer must catch statically.

ROOT = balanced_tree(7, data=float)


class Accumulator:
    def __init__(self):
        self.total = 0.0
        self.pairs = 0


def make_mutant(make_batch, **spec_kwargs):
    """A well-formed scalar spec wired to a (buggy) batch kernel."""
    acc = Accumulator()

    def work(o, i):
        acc.total += o.data * i.data
        acc.pairs += 1

    spec = NestedRecursionSpec(
        outer_root=ROOT,
        inner_root=ROOT,
        name="mutant",
        work=work,
        work_batch=make_batch(acc),
        **spec_kwargs,
    )
    return spec


def wrong_field(acc):
    def work_batch(os, is_):
        for o, i in zip(os, is_):
            acc.total += o.data * i.data
            acc.count = acc.pairs + 1  # writes .count, scalar writes .pairs

    return work_batch


def dropped_write(acc):
    def work_batch(os, is_):
        for o, i in zip(os, is_):
            acc.total += o.data * i.data  # .pairs never updated

    return work_batch


def retained_block(acc):
    def work_batch(os, is_):
        acc.last_block = os  # stale after the dispatcher's clear()
        for o, i in zip(os, is_):
            acc.total += o.data * i.data
            acc.pairs += 1

    return work_batch


def cleared_block(acc):
    def work_batch(os, is_):
        for o, i in zip(os, is_):
            acc.total += o.data * i.data
            acc.pairs += 1
        os.clear()  # mutates the dispatcher's block in place

    return work_batch


def captured_counter(acc):
    calls = 0

    def work_batch(os, is_):
        nonlocal calls
        calls += 1  # state smuggled across dispatches
        for o, i in zip(os, is_):
            acc.total += o.data * i.data
            acc.pairs += 1

    return work_batch


def vectorized_rmw(acc):
    def work_batch(os, is_):
        # Plain read-modify-write of shared state, neither a reduction
        # AugAssign nor a per-pair replay loop.
        acc.total = acc.total + sum(o.data * i.data for o, i in zip(os, is_))
        acc.pairs += len(os)

    return work_batch


def extra_node_read(acc):
    def work_batch(os, is_):
        for o, i in zip(os, is_):
            acc.total += o.data * i.data * (1.0 if o.size else 1.0)
            acc.pairs += 1

    return work_batch


MUTANTS = [
    ("wrong_field", wrong_field, "TW101", "unsafe"),
    ("dropped_write", dropped_write, "TW101", "unsafe"),
    ("retained_block", retained_block, "TW104", "unsafe"),
    ("cleared_block", cleared_block, "TW104", "unsafe"),
    ("captured_counter", captured_counter, "TW103", "unsafe"),
    ("vectorized_rmw", vectorized_rmw, "TW108", "needs-dynamic-check"),
    ("extra_node_read", extra_node_read, "TW102", "needs-dynamic-check"),
]


class TestMutationHarness:
    @pytest.mark.parametrize(
        "name,factory,code,verdict", MUTANTS, ids=[m[0] for m in MUTANTS]
    )
    def test_seeded_mutation_is_caught(self, name, factory, code, verdict):
        report = lint_spec(make_mutant(factory), use_cache=False)
        assert code in report.codes(), name
        assert str(report.verdict) == verdict, name

    def test_observing_block_guard_is_refuted(self):
        """A block truncation guard on a work-observing spec (TW106):
        pre-evaluating the predicate changes its decisions."""

        def guard_scalar(o, i):
            return False

        def guard_block(o):
            return False

        spec = NestedRecursionSpec(
            outer_root=ROOT,
            inner_root=ROOT,
            name="observing-guard",
            work=lambda o, i: None,
            truncate_inner2=guard_scalar,
            truncate_inner2_batch=guard_block,
            truncation_observes_work=True,
        )
        report = lint_spec(spec, use_cache=False)
        assert "TW106" in report.codes()
        assert str(report.verdict) == "unsafe"

    def test_clean_replay_kernel_is_proven(self):
        """The control: a faithful per-pair replay kernel passes."""

        def faithful(acc):
            def work_batch(os, is_):
                for o, i in zip(os, is_):
                    acc.total += o.data * i.data
                    acc.pairs += 1

            return work_batch

        report = lint_spec(make_mutant(faithful), use_cache=False)
        assert report.errors == [] and report.warnings == []
        assert str(report.verdict) == "batch-safe"
        assert report.backends["batched"] == "safe"

    def test_unanalyzable_kernel_degrades_not_passes(self):
        """A kernel with no retrievable source must not be waved
        through: TW100, verdict needs-dynamic-check."""
        spec = NestedRecursionSpec(
            outer_root=ROOT,
            inner_root=ROOT,
            name="opaque",
            work=min,  # builtin: inspect.getsource fails
            work_batch=max,
        )
        report = lint_spec(spec, use_cache=False)
        assert "TW100" in report.codes()
        assert str(report.verdict) == "needs-dynamic-check"


# ---------------------------------------------------------------------------
# The auto selector consumes the verdicts.


class TestAutoRefusal:
    def test_auto_never_selects_an_unsafe_backend(self):
        """An unsafe work_batch on a space large enough for the
        structural probe to want 'batched' gets refused."""
        from repro.core.backend_select import choose_backend

        big = balanced_tree(127, data=float)
        spec = make_spec_large_unsafe(big)
        choice = choose_backend(spec)
        verdicts = lint_spec(spec).backends
        assert verdicts["batched"] == "unsafe"
        assert choice.backend != "batched"
        assert "conformance" in choice.reason

    def test_allow_unproven_restores_structural_choice(self):
        from repro.core.backend_select import choose_backend

        big = balanced_tree(127, data=float)
        spec = make_spec_large_unsafe(big)
        refused = choose_backend(spec)
        structural = choose_backend(spec, allow_unproven=True)
        assert structural.backend == "batched"
        assert refused.backend != structural.backend

    def test_safe_specs_keep_their_structural_choice(self):
        from repro.bench.workloads import make_pc
        from repro.core.backend_select import choose_backend

        choice = choose_backend(make_pc(512).make_spec())
        assert choice.backend == "batched"

    def test_monkeypatched_unsafe_soa_downgrades(self, monkeypatch):
        """Verdict wiring, isolated from the analyzer: force 'soa'
        unsafe and watch the selector reroute to a proven backend."""
        from repro.core import backend_select

        monkeypatch.setattr(
            backend_select,
            "conformance_verdicts",
            lambda spec: {
                "recursive": "safe",
                "batched": "safe",
                "soa": "unsafe",
            },
        )
        from repro.bench.workloads import make_tj

        choice = backend_select.choose_backend(make_tj(200).make_spec())
        assert choice.backend == "batched"
        assert "unsafe" in choice.reason

    def test_verdict_lookup_failure_is_not_fatal(self):
        """If the analyzer itself blows up (here: fed a non-spec),
        selection proceeds on the structural choice instead of
        crashing the run."""
        from repro.core import backend_select

        assert backend_select.conformance_verdicts(object()) is None


def make_spec_large_unsafe(root):
    acc = Accumulator()

    def work(o, i):
        acc.total += o.data * i.data
        acc.pairs += 1

    def work_batch(os, is_):
        for o, i in zip(os, is_):
            acc.total += o.data * i.data
            acc.count = acc.pairs + 1  # TW101: wrong field

    return NestedRecursionSpec(
        outer_root=root,
        inner_root=root,
        name="large-unsafe",
        work=work,
        work_batch=work_batch,
    )


# ---------------------------------------------------------------------------
# Report shape, caching, JSON schema.


class TestReportShape:
    def test_render_names_backends_and_verdict(self):
        report = lint_spec(make_mutant(wrong_field), use_cache=False)
        text = report.render()
        assert "backend batched: unsafe" in text
        assert "verdict: unsafe" in text
        assert "TW101" in text

    def test_to_json_schema(self):
        report = lint_spec(make_mutant(vectorized_rmw), use_cache=False)
        payload = report.to_json()
        assert payload["schema_version"] == SCHEMA_VERSION == 2
        assert payload["kind"] == "spec-conformance"
        assert payload["spec"] == "mutant"
        assert payload["verdict"] == "needs-dynamic-check"
        assert set(payload["backends"]) == {"recursive", "batched", "soa"}
        assert set(payload["reasons"]) == set(payload["backends"])
        assert payload["counts"]["warnings"] >= 1
        assert payload["counts"]["suppressed"] == 0
        assert payload["suppressed"] == []
        roles = {k["role"] for k in payload["kernels"]}
        assert {"work", "work_batch"} <= roles
        json.dumps(payload)  # serializable end to end

    def test_kernel_footprints_are_reported(self):
        report = lint_spec(make_mutant(wrong_field), use_cache=False)
        by_role = {k.role: k for k in report.kernels}
        assert by_role["work"].analyzable
        assert "pairs" in {
            label for (_root, label) in by_role["work"].write_keys()
        }

    def test_analyze_kernel_standalone(self):
        def work(o, i):
            o.data = o.data + i.data

        sink = DiagnosticSink()
        footprint = analyze_kernel(work, "work", sink, {})
        assert footprint.analyzable
        assert sink.diagnostics == []

    def test_verdict_enum_strings(self):
        assert str(SpecVerdict.BATCH_SAFE) == "batch-safe"
        assert str(SpecVerdict.SOA_SAFE) == "soa-safe"
        assert str(SpecVerdict.NEEDS_DYNAMIC_CHECK) == "needs-dynamic-check"
        assert str(SpecVerdict.UNSAFE) == "unsafe"


class TestCaching:
    def test_repeat_lint_returns_cached_report(self):
        spec = make_mutant(wrong_field)
        first = lint_spec(spec)
        second = lint_spec(spec)
        assert second is first

    def test_clear_cache_forces_reanalysis(self):
        spec = make_mutant(wrong_field)
        first = lint_spec(spec)
        clear_cache()
        assert lint_spec(spec) is not first

    def test_use_cache_false_bypasses(self):
        spec = make_mutant(wrong_field)
        first = lint_spec(spec)
        assert lint_spec(spec, use_cache=False) is not first

    def test_distinct_kernels_do_not_collide(self):
        bad = lint_spec(make_mutant(wrong_field))
        good = lint_spec(make_mutant(dropped_write))
        assert bad.codes() != set() and good.codes() != set()
        assert bad is not good

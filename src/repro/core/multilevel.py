"""N-level nested recursion and generalized twisting (Section 7.2).

The paper closes Section 7.2 with: "Another useful direction of future
work is to generalize recursion twisting to more than two levels of
recursion, to allow it to handle algorithms like matrix-matrix
multiplication."  This module is that generalization, for regular
truncation (irregular truncation across three or more dimensions is
open even as future work).

**The generalized schedule.**  A state of the computation is a set of
*active* dimensions, each at a subtree root, plus a set of *pinned*
dimensions fixed at a single node.  One step:

1. pick the active dimension ``d`` whose remaining subtree is largest —
   that dimension plays the *outer recursion* role (ties flip away from
   the current outer dimension, then prefer the lowest index);
2. run the "row": the same algorithm over the remaining dimensions,
   with ``d`` pinned at its current node;
3. for each child of ``d``'s node, recurse with ``d`` moved to the
   child — re-picking the outer role, which is where the twist happens.

For two dimensions this reduces *exactly* to Figure 4(a), including its
tie behaviour (``o.c1.size <= i.size`` twists on ties in the regular
order, ``i.c1.size <= o.size`` twists back on ties in the swapped
order); the tests assert schedule-for-schedule equality with
:func:`repro.core.twisting.run_twisted`.  For every N it preserves the
two invariants that matter: each point of the N-dimensional space
executes exactly once, and each dimension's positions are visited in
pre-order for any fixed setting of the other dimensions (the
intra-traversal-order property behind the Section 3.3 soundness
argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Sequence

from repro.errors import SpecError
from repro.spaces.node import IndexNode, validate_index_node

WorkN = Callable[..., Any]
TruncateN = Callable[[IndexNode], bool]


def _never(_node: IndexNode) -> bool:
    return False


@dataclass
class MultiLevelSpec:
    """An N-level nested recursion: one tree per dimension.

    ``work(*nodes)`` receives one node per dimension, in dimension
    order.  ``truncates[d]`` bounds dimension ``d`` on its own index
    (the N-level analog of ``truncateOuter?``/``truncateInner1?``);
    cross-dimensional (irregular) truncation is not supported.
    """

    roots: Sequence[IndexNode]
    work: Optional[WorkN] = None
    truncates: Optional[Sequence[TruncateN]] = None
    name: str = "multilevel-recursion"

    def __post_init__(self) -> None:
        if len(self.roots) < 1:
            raise SpecError("MultiLevelSpec needs at least one dimension")
        for root in self.roots:
            validate_index_node(root)
        if self.truncates is None:
            self.truncates = [_never] * len(self.roots)
        if len(self.truncates) != len(self.roots):
            raise SpecError(
                f"{len(self.roots)} dimensions but "
                f"{len(self.truncates)} truncation predicates"
            )
        if self.work is not None and not callable(self.work):
            raise SpecError("work must be callable or None")

    @property
    def num_dims(self) -> int:
        """Number of nesting levels."""
        return len(self.roots)


class MultiLevelInstrument:
    """Probe interface for N-level executions (all hooks no-ops)."""

    def op(self, kind: str) -> None:
        """One bookkeeping operation."""

    def point(self, nodes: Sequence[IndexNode]) -> None:
        """One executed N-dimensional iteration."""


NULL_N_INSTRUMENT = MultiLevelInstrument()


class PointRecorder(MultiLevelInstrument):
    """Records the schedule as label tuples."""

    def __init__(self) -> None:
        self.points: list[tuple[Hashable, ...]] = []

    def point(self, nodes: Sequence[IndexNode]) -> None:
        self.points.append(
            tuple(getattr(node, "label", node.number) for node in nodes)
        )


class OpCounterN(MultiLevelInstrument):
    """Counts ops and executed points."""

    def __init__(self) -> None:
        from collections import Counter

        self.counts = Counter()
        self.work_points = 0

    def op(self, kind: str) -> None:
        self.counts[kind] += 1

    def point(self, nodes: Sequence[IndexNode]) -> None:
        self.work_points += 1


def run_original_n(
    spec: MultiLevelSpec,
    instrument: Optional[MultiLevelInstrument] = None,
) -> None:
    """The untransformed N-level schedule: dimension 0 outermost.

    For N == 2 this coincides with :func:`repro.core.executors.run_original`.
    """
    ins = instrument or NULL_N_INSTRUMENT
    work = spec.work
    truncates = list(spec.truncates or [])
    num_dims = spec.num_dims
    positions: list[IndexNode] = list(spec.roots)

    def recurse(dim: int) -> None:
        node = positions[dim]
        ins.op("call")
        ins.op("trunc_check")
        if truncates[dim](node):
            return
        if dim == num_dims - 1:
            ins.point(positions)
            if work is not None:
                work(*positions)
        else:
            recurse(dim + 1)
        for child in node.children:
            positions[dim] = child
            recurse(dim)
        positions[dim] = node

    with _guard(spec):
        recurse(0)


def run_twisted_n(
    spec: MultiLevelSpec,
    instrument: Optional[MultiLevelInstrument] = None,
) -> None:
    """Generalized recursion twisting over N dimensions.

    Parameterless, like the two-level transformation: at every step the
    largest remaining subtree takes the outer-recursion role, so every
    dimension's reuse distances shrink geometrically as the recursion
    deepens — multi-level cache-oblivious blocking in N dimensions.
    """
    ins = instrument or NULL_N_INSTRUMENT
    work = spec.work
    truncates = list(spec.truncates or [])
    positions: list[IndexNode] = list(spec.roots)

    def block(active: tuple[int, ...], current_outer: int, forced: int) -> None:
        if not active:
            ins.point(positions)
            if work is not None:
                work(*positions)
            return
        if forced >= 0:
            # The entry point is the original outermost function: like
            # Figure 4(a), whose entry is recurseOuter, the first block
            # runs in the original order and twisting starts at the
            # recursive descents.
            outer = forced
        else:
            # Twist decision: largest remaining subtree becomes the
            # outer recursion; ties flip away from the incumbent, then
            # prefer the lowest dimension index (matches Figure 4(a) at
            # N == 2, including its tie behaviour).
            for _dim in active:
                ins.op("size_compare")
            outer = max(
                active,
                key=lambda dim: (positions[dim].size, dim != current_outer, -dim),
            )
        node = positions[outer]
        ins.op("call")
        ins.op("trunc_check")
        if truncates[outer](node):
            return
        remaining = tuple(dim for dim in active if dim != outer)
        block(remaining, outer, -1)
        for child in node.children:
            positions[outer] = child
            block(active, outer, -1)
        positions[outer] = node

    with _guard(spec):
        block(tuple(range(spec.num_dims)), -1, 0)


def _guard(spec: MultiLevelSpec):
    """Recursion-limit guard covering the sum of all tree depths."""
    from repro.spaces.node import tree_depth

    total_depth = sum(tree_depth(root) for root in spec.roots)

    class _Guard:
        def __enter__(self):
            import sys

            self.previous = sys.getrecursionlimit()
            needed = 6 * total_depth + 256
            if needed > self.previous:
                sys.setrecursionlimit(needed)

        def __exit__(self, *exc):
            import sys

            sys.setrecursionlimit(self.previous)

    return _Guard()


def cross_product_size(spec: MultiLevelSpec) -> int:
    """Upper bound on executed points (product of tree sizes)."""
    total = 1
    for root in spec.roots:
        total *= root.size
    return total

"""Vantage-point trees, the spatial index of the VP benchmark.

A vp-tree (Yianilos-style) partitions points by distance from a chosen
*vantage point*: the near half (distance at most the median) goes to
the first child, the far half to the second.  Nodes carry metric
:class:`~repro.dualtree.boxes.Ball` bounds — center at the node's
centroid-ish vantage point, radius covering every owned point — which
is what makes vp-trees metric-generic (no axis-aligned structure is
assumed, unlike kd-trees).

The paper's VP benchmark is "a k-nearest neighbor algorithm that uses a
vantage point tree instead of a kd-tree"; in our dual-tree framework
that means both the query and the reference set are organized with
:func:`build_vptree` and k-NN rules run unchanged on top (the rules
only speak to bounds through ``min_dist``).
"""

from __future__ import annotations

import numpy as np

from repro.dualtree.boxes import Ball
from repro.dualtree.spatial import SpatialNode, SpatialTree, make_tree


def build_vptree(
    points: np.ndarray, leaf_size: int = 8, seed: int = 0
) -> SpatialTree:
    """Build a vantage-point tree over an ``(n, d)`` point array.

    The vantage point of each node is chosen deterministically from a
    seeded RNG (vp-tree quality is robust to the choice; determinism
    keeps experiments reproducible).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] < 1:
        raise ValueError("points must be a non-empty (n, d) array")
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    rng = np.random.default_rng(seed)
    indices = np.arange(points.shape[0])

    def build(start: int, end: int) -> SpatialNode:
        slice_ids = indices[start:end]
        slice_points = points[slice_ids]
        count = end - start
        # Vantage point: a random owned point; ball covers the node.
        vantage_position = int(rng.integers(count))
        vantage = slice_points[vantage_position]
        distances = np.sqrt(((slice_points - vantage) ** 2).sum(axis=1))
        bound = Ball(vantage, float(distances.max()) if count > 1 else 0.0)
        node = SpatialNode(bound, start, end)
        if count <= leaf_size:
            return node
        half = count // 2
        order = np.argpartition(distances, half)
        if distances[order[half]] == distances[order[0]] and (
            distances.max() == distances.min()
        ):
            # Every point is equidistant from the vantage point (e.g.
            # duplicated points); no split can make progress.
            return node
        indices[start:end] = slice_ids[order]
        node.children = (build(start, start + half), build(start + half, end))
        return node

    import sys

    limit = sys.getrecursionlimit()
    needed = 4 * points.shape[0] + 256
    if needed > limit:
        sys.setrecursionlimit(needed)
    try:
        root = build(0, points.shape[0])
    finally:
        sys.setrecursionlimit(limit)
    return make_tree(points, root, indices, leaf_size)

"""CLI tests for ``lint-locality`` and the unified ``lint-all``."""

import json

from repro.transform.__main__ import main


class TestLintLocalityExitCodes:
    def test_regular_benchmark_exits_zero(self, capsys):
        assert main(["lint-locality", "--benchmark", "TJ"]) == 0
        out = capsys.readouterr().out
        assert "interchange: profitable" in out

    def test_stateful_benchmark_needs_a_dynamic_check(self, capsys):
        assert main(["lint-locality", "--benchmark", "NN"]) == 5
        out = capsys.readouterr().out
        assert "warning[TW303]" in out
        assert "interchange: unknown" in out

    def test_full_suite_inherits_the_worst_verdict(self, capsys):
        # NN/KNN/VP/KDE carry unknowns, so the whole-suite run does too.
        assert main(["lint-locality"]) == 5
        out = capsys.readouterr().out
        for name in ("TJ", "MM", "PC", "NN", "KNN", "VP", "KDE", "GT"):
            assert name in out

    def test_unknown_benchmark_is_a_usage_error(self, capsys):
        assert main(["lint-locality", "--benchmark", "WARP"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_bad_cache_size_is_a_usage_error(self, capsys):
        assert main(["lint-locality", "--benchmark", "TJ", "--l1", "banana"]) == 2
        assert "bad cache model" in capsys.readouterr().err


class TestLintLocalityCacheOverrides:
    def test_l1_override_changes_the_verdict(self, capsys):
        # TJ's 48000 B footprint spills the paper's 32K L1 but fits a
        # 64K one: the blocking verdicts relax to neutral.
        assert main(
            ["lint-locality", "--benchmark", "TJ", "--l1", "64K"]
        ) == 0
        out = capsys.readouterr().out
        assert "interchange: neutral" in out

    def test_an_inverted_hierarchy_is_rejected(self, capsys):
        # L1 larger than the (paper-default) L2 cannot describe a cache.
        assert main(
            ["lint-locality", "--benchmark", "TJ", "--l1", "1G"]
        ) == 2
        assert "bad cache model" in capsys.readouterr().err

    def test_override_is_recorded_as_explicit_provenance(self, capsys):
        assert main(
            ["lint-locality", "--benchmark", "TJ", "--l1", "64K", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_model"]["source"] == "explicit"
        assert payload["cache_model"]["l1_bytes"] == 64 * 1024


class TestLintLocalityJson:
    def test_single_benchmark_payload_shape(self, capsys):
        assert main(["lint-locality", "--benchmark", "TJ", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 2
        assert payload["kind"] == "locality-suite"
        assert payload["exit_code"] == 0
        assert [s["spec"] for s in payload["specs"]] == ["TJ(1200x1200)"]
        assert payload["cache_model"]["source"] == "paper-xeon"

    def test_suite_payload_covers_all_benchmarks(self, capsys):
        assert main(["lint-locality", "--json"]) == 5
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 5
        assert len(payload["specs"]) == 8
        verdict_keys = set(payload["specs"][0]["verdicts"])
        assert verdict_keys == {
            "interchange", "twist", "layout:veb", "layout:bfs",
        }


class TestLintAll:
    def test_merged_run_over_the_full_suite(self, capsys):
        # The repo's own examples/specs: TW1xx dynamic-check warnings
        # dominate, nothing unsafe, so the merged exit is 5.
        assert main(["lint-all", "--scale", "0.05"]) == 5
        out = capsys.readouterr().out
        assert "sources:" in out
        assert "conformance:" in out
        assert "lowerability:" in out
        assert "locality:" in out

    def test_json_report_has_all_four_sections(self, capsys):
        assert main(["lint-all", "--scale", "0.05", "--json"]) == 5
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 2
        assert payload["kind"] == "lint-all"
        assert payload["exit_code"] == 5
        assert set(payload["sections"]) == {
            "sources", "conformance", "lowerability", "locality",
        }
        assert len(payload["sections"]["sources"]) == 6
        assert len(payload["sections"]["conformance"]) == 7
        assert len(payload["sections"]["lowerability"]) == 7
        assert len(payload["sections"]["locality"]) == 8

    def test_single_benchmark_narrowing(self, capsys):
        # The spec analyzers narrow to TJ; the TW0xx source pass still
        # covers every example (nn/vp carry TW023 warnings → exit 5).
        code = main(
            ["lint-all", "--benchmark", "TJ", "--scale", "0.05", "--json"]
        )
        assert code == 5
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["sections"]["sources"]) == 6
        assert len(payload["sections"]["conformance"]) == 1
        assert len(payload["sections"]["lowerability"]) == 1
        assert len(payload["sections"]["locality"]) == 1

    def test_missing_examples_dir_is_noted_not_fatal(self, tmp_path, capsys):
        code = main(
            [
                "lint-all",
                "--benchmark",
                "TJ",
                "--scale",
                "0.05",
                "--examples",
                str(tmp_path / "absent"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sections"]["sources"] == []
        assert any("absent" in note for note in payload["notes"])

    def test_unknown_benchmark_is_a_usage_error(self, capsys):
        assert main(["lint-all", "--benchmark", "WARP"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

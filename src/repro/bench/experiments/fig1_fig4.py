"""Figures 1(c) and 4(b): the paper's 7x7 worked example.

Renders the original and twisted schedules over the exact trees of
Figure 1(b) and reports the Section 3.2 reuse distances of inner node
5 under both schedules.  This experiment has hard expected values —
the paper prints them — so it doubles as an end-to-end regression
test (see ``tests/integration/test_paper_examples.py``).
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport
from repro.core.executors import run_original
from repro.core.instruments import AccessTraceRecorder, WorkRecorder, combine
from repro.core.spec import NestedRecursionSpec
from repro.core.twisting import run_twisted
from repro.memory.reuse import distances_of_key
from repro.spaces.iteration_space import IterationSpace, render_schedule
from repro.spaces.trees import paper_inner_tree, paper_outer_tree

#: The paper's reported reuse distances for inner node 5 (Section 3.2);
#: None stands for the paper's infinity (cold access).
PAPER_ORIGINAL_NODE5 = [None, 8, 8, 8, 8, 8, 8]
PAPER_TWISTED_NODE5 = [None, 10, 3, 3, 10, 3, 3]


def run_fig1_fig4() -> tuple[ExperimentReport, dict]:
    """Reproduce the worked example; returns (report, raw data)."""
    outer, inner = paper_outer_tree(), paper_inner_tree()
    spec = NestedRecursionSpec(outer, inner, name="fig1-example")
    node5 = next(n for n in inner.iter_preorder() if n.label == 5)

    works_original = WorkRecorder()
    trace_original = AccessTraceRecorder()
    run_original(spec, instrument=combine(works_original, trace_original))
    original_node5 = distances_of_key(trace_original.trace, ("inner", node5.number))

    works_twisted = WorkRecorder()
    trace_twisted = AccessTraceRecorder()
    run_twisted(spec, instrument=combine(works_twisted, trace_twisted))
    twisted_node5 = distances_of_key(trace_twisted.trace, ("inner", node5.number))

    space = IterationSpace.from_trees(outer, inner)
    space.validate_schedule(works_original.points)
    space.validate_schedule(works_twisted.points)

    report = ExperimentReport(
        title="Figures 1(c)/4(b) + Section 3.2: the 7x7 worked example",
        columns=["schedule", "reuse distances of inner node 5", "matches paper"],
    )
    report.add_row(
        "original", _fmt(original_node5), original_node5 == PAPER_ORIGINAL_NODE5
    )
    report.add_row(
        "twisted", _fmt(twisted_node5), twisted_node5 == PAPER_TWISTED_NODE5
    )
    report.add_note("original schedule (Figure 1c):")
    for line in render_schedule(space, works_original.points).splitlines():
        report.add_note("  " + line)
    report.add_note("twisted schedule (Figure 4b):")
    for line in render_schedule(space, works_twisted.points).splitlines():
        report.add_note("  " + line)

    data = {
        "original_points": works_original.points,
        "twisted_points": works_twisted.points,
        "original_node5": original_node5,
        "twisted_node5": twisted_node5,
    }
    return report, data


def _fmt(distances) -> str:
    return "[" + ", ".join("inf" if d is None else str(d) for d in distances) + "]"

"""Unit tests for approximate dual-tree kernel density estimation."""

import math

import numpy as np
import pytest

from repro.core import OpCounter, run_interchanged, run_original, run_twisted
from repro.dualtree import KernelDensity, brute_kde, gaussian_kernel
from repro.spaces import clustered_points


@pytest.fixture
def data():
    queries = clustered_points(150, clusters=6, seed=70)
    references = clustered_points(200, clusters=6, seed=71)
    return queries, references


class TestKernel:
    def test_at_zero(self):
        assert gaussian_kernel(0.0, 1.0) == 1.0

    def test_monotone_decreasing(self):
        values = [gaussian_kernel(d, 0.5) for d in (0.0, 0.1, 0.5, 1.0, 5.0)]
        assert values == sorted(values, reverse=True)

    def test_bandwidth_scaling(self):
        assert gaussian_kernel(1.0, 1.0) == pytest.approx(math.exp(-0.5))
        assert gaussian_kernel(2.0, 2.0) == pytest.approx(math.exp(-0.5))


class TestAccuracy:
    def test_within_analytic_error_bound(self, data):
        queries, references = data
        kde = KernelDensity(queries, references, bandwidth=0.1, epsilon=1e-3)
        run_original(kde.make_spec())
        exact = brute_kde(queries, references, 0.1)
        assert np.abs(kde.result - exact).max() <= kde.error_bound()

    def test_epsilon_zero_is_exact(self, data):
        queries, references = data
        kde = KernelDensity(queries, references, bandwidth=0.1, epsilon=0.0)
        run_original(kde.make_spec())
        exact = brute_kde(queries, references, 0.1)
        assert np.allclose(kde.result, exact)

    def test_larger_epsilon_prunes_more(self, data):
        queries, references = data

        def visits(epsilon):
            kde = KernelDensity(queries, references, bandwidth=0.1, epsilon=epsilon)
            ops = OpCounter()
            run_original(kde.make_spec(), instrument=ops)
            return ops.counts["visit"], kde.rules.pruned_contributions

        tight_visits, tight_pruned = visits(1e-6)
        loose_visits, loose_pruned = visits(1e-2)
        assert loose_visits < tight_visits
        assert loose_pruned >= tight_pruned


class TestScheduleInvariance:
    def test_bit_identical_across_schedules(self, data):
        # The KDE Score is a pure function of node geometry, so every
        # schedule resolves exactly the same pairs the same way.
        queries, references = data
        kde = KernelDensity(queries, references, bandwidth=0.08, epsilon=5e-4)
        results = []
        for run in (run_original, run_interchanged, run_twisted):
            run(kde.make_spec())
            results.append(kde.result.copy())
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])


class TestValidation:
    def test_bad_bandwidth(self, data):
        queries, references = data
        with pytest.raises(ValueError):
            KernelDensity(queries, references, bandwidth=0.0)

    def test_bad_epsilon(self, data):
        queries, references = data
        with pytest.raises(ValueError):
            KernelDensity(queries, references, epsilon=-1.0)

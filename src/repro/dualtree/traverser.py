"""Lowering dual-tree algorithms onto the nested recursion template.

This is the bridge between Curtin et al.'s rule sets and the paper's
transformations: a dual-tree algorithm *is* an instance of the Figure 2
template —

* the **outer recursion** descends the query tree (``truncateOuter?``
  is structural: stop at leaves);
* the **inner recursion** descends the reference tree;
* ``truncateInner2?(o, i)`` is irregular truncation made of two parts:
  only query *leaves* run reference traversals (internal query nodes
  truncate immediately at the reference root), and for query leaves it
  is the rules' conservative ``Score`` prune;
* ``work(o, i)`` runs for every surviving (query leaf, reference node)
  pair — the "iterations" counted in Section 4.2 — and performs the
  batched ``BaseCase`` when the reference node is a leaf.

Because ``Score`` reads mutable per-query bounds, the truncation is
*stateful*; correctness under interchange/twisting follows from the
paper's argument that per-query (intra-traversal) visit order is
preserved by every schedule, so each query observes the same bound
evolution and makes the same pruning decisions.  The integration tests
verify this both ways: identical results *and* identical per-query
iteration sequences across schedules.
"""

from __future__ import annotations

from repro.core.spec import NestedRecursionSpec
from repro.dualtree.rules import DualTreeRules
from repro.dualtree.spatial import SpatialNode, SpatialTree


def dual_tree_spec(
    query_tree: SpatialTree,
    reference_tree: SpatialTree,
    rules: DualTreeRules,
    name: str = "dual-tree",
) -> NestedRecursionSpec:
    """Build the nested-recursion spec of a dual-tree algorithm."""
    score = rules.score
    base_case = rules.base_case

    def truncate_inner2(o: SpatialNode, i: SpatialNode) -> bool:
        # Internal query nodes do not traverse: the template launches an
        # inner traversal at *every* outer node, so internal nodes
        # truncate at the reference root (one cheap check each).
        if o.children:
            return True
        return score(o, i)

    def work(o: SpatialNode, i: SpatialNode) -> None:
        if not i.children:
            base_case(o, i)

    base_case_batch = getattr(rules, "base_case_batch", None)
    if base_case_batch is None:
        work_batch = None
    else:

        def work_batch(os: list, is_: list) -> None:
            # Work points fire for every surviving (query leaf,
            # reference node) pair; only the leaf-leaf subset carries a
            # base case, exactly as the scalar ``work`` above.
            qs = []
            rs = []
            for o, i in zip(os, is_):
                if not i.children:
                    qs.append(o)
                    rs.append(i)
            if qs:
                base_case_batch(qs, rs)

    observes = getattr(rules, "observes_results", True)
    score_block = getattr(rules, "score_block", None)
    if score_block is None or observes:
        truncate_inner2_batch = None
    else:

        def truncate_inner2_batch(o: SpatialNode):
            # Same two-part decision as ``truncate_inner2``: internal
            # query nodes prune everything; query leaves get the rules'
            # vectorized Score (bit-identical to the scalar one).  Only
            # legal for stateless rules — a stateful Score could not be
            # pre-evaluated for a whole subtree.
            if o.children:
                return True
            return score_block(o)

    return NestedRecursionSpec(
        outer_root=query_tree.root,
        inner_root=reference_tree.root,
        work=work,
        truncate_inner2=truncate_inner2,
        truncate_inner2_batch=truncate_inner2_batch,
        work_batch=work_batch,
        # Stateful rules (NN/KNN bounds, KDE's side-effecting Score)
        # must not let deferred base cases slide past a Score of the
        # same query leaf; stateless rules (PC) batch freely.
        truncation_observes_work=observes,
        # Only query leaves launch real reference traversals — internal
        # query nodes truncate at the reference root.  Consumed by the
        # task scheduler's cost estimates, never by execution.
        outer_launches_work=lambda node: not node.children,
        name=name,
    )


def dual_tree_footprint(rules: DualTreeRules):
    """Soundness footprint factory for dual-tree specs.

    Models the per-query mutable bound state: a leaf-leaf work point
    reads the reference points and reads+writes the state of every
    query in the query leaf.  Since a query belongs to exactly one
    query leaf, all writes to a location share one outer index — the
    outer recursion is parallel, which
    :func:`repro.core.soundness.is_outer_parallel` confirms on runs.
    """

    def footprint(o: SpatialNode, i: SpatialNode):
        touches = []
        if not i.children and o.point_ids is not None:
            for reference in i.point_ids or []:
                touches.append((("ref", reference), False))
            for query in o.point_ids:
                touches.append((("best", query), True))
        return touches

    return footprint

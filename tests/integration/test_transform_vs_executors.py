"""Integration: generated code vs library executors on richer shapes.

The paper's prototype "currently only works with recursive methods that
make two recursive calls"; the Python tool lifts that restriction, so
these tests exercise ternary trees, single-call (list-like) recursion,
and cutoff generation end to end against the executors.
"""

import pytest

from repro.core import NestedRecursionSpec, WorkRecorder, run_original, run_twisted
from repro.spaces import TreeNode, finalize_tree, list_tree, random_tree
from repro.transform import transform_source

TERNARY_SOURCE = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.child(0), i)
    outer(o.child(1), i)
    outer(o.child(2), i)

def inner(o, i):
    if i is None:
        return
    work(o, i)
    inner(o, i.child(0))
    inner(o, i.child(1))
    inner(o, i.child(2))
'''

UNARY_SOURCE = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)

def inner(o, i):
    if i is None:
        return
    work(o, i)
    inner(o, i.left)
'''


class IndexedTreeNode(TreeNode):
    """TreeNode with a child(k) accessor returning None when absent."""

    __slots__ = ()

    def child(self, position):
        if position < len(self.children):
            return self.children[position]
        return None


def ternary_tree(num_nodes: int) -> IndexedTreeNode:
    """A complete 3-ary tree with BFS labels."""
    nodes = [IndexedTreeNode(k) for k in range(num_nodes)]
    for k, node in enumerate(nodes):
        children = [
            nodes[3 * k + offset]
            for offset in (1, 2, 3)
            if 3 * k + offset < num_nodes
        ]
        node.children = tuple(children)
    finalize_tree(nodes[0])
    return nodes[0]


class TestTernaryRecursion:
    def run_generated(self, entry, outer, inner):
        points = []
        result = transform_source(TERNARY_SOURCE, "outer", "inner")
        ns = result.compile({"work": lambda o, i: points.append((o.label, i.label))})
        getattr(ns, entry)(outer, inner)
        return points

    def executor_points(self, run, outer, inner, **kwargs):
        recorder = WorkRecorder()
        run(NestedRecursionSpec(outer, inner), instrument=recorder, **kwargs)
        return recorder.points

    @pytest.mark.parametrize("sizes", [(13, 13), (9, 27), (1, 13)])
    def test_twisted_matches_executor(self, sizes):
        outer, inner = ternary_tree(sizes[0]), ternary_tree(sizes[1])
        generated = self.run_generated("outer_twisted", outer, inner)
        expected = self.executor_points(
            run_twisted, outer, inner, subtree_truncation=False
        )
        assert generated == expected

    def test_original_matches_executor(self):
        outer, inner = ternary_tree(13), ternary_tree(13)
        generated = self.run_generated("outer", outer, inner)
        expected = self.executor_points(run_original, outer, inner)
        assert generated == expected


class TestUnaryRecursion:
    def test_loops_in_disguise(self):
        # One recursive call each: the Section 2.1 degeneration.  All
        # generated schedules must enumerate the full rectangle.
        points = []
        result = transform_source(UNARY_SOURCE, "outer", "inner")
        ns = result.compile({"work": lambda o, i: points.append((o.label, i.label))})
        outer, inner = list_tree(5), list_tree(4)
        ns.outer(outer, inner)
        assert points == [(o, i) for o in range(5) for i in range(4)]
        points.clear()
        ns.outer_swapped(outer, inner)
        assert points == [(o, i) for i in range(4) for o in range(5)]
        points.clear()
        ns.outer_twisted(outer, inner)
        assert sorted(points) == [(o, i) for o in range(5) for i in range(4)]


class TestCutoffGeneration:
    def test_generated_cutoff_matches_executor(self):
        source_binary = UNARY_SOURCE.replace(
            "    outer(o.left, i)\n",
            "    outer(o.left, i)\n    outer(o.right, i)\n",
        ).replace(
            "    inner(o, i.left)\n",
            "    inner(o, i.left)\n    inner(o, i.right)\n",
        )
        outer, inner = random_tree(20, seed=9), random_tree(20, seed=10)
        for cutoff in (0, 3, 50):
            points = []
            result = transform_source(source_binary, "outer", "inner", cutoff=cutoff)
            ns = result.compile(
                {"work": lambda o, i: points.append((o.label, i.label))}
            )
            ns.outer_twisted(outer, inner)
            expected = WorkRecorder()
            run_twisted(
                NestedRecursionSpec(outer, inner),
                instrument=expected,
                cutoff=cutoff,
                subtree_truncation=False,
            )
            assert points == expected.points, cutoff

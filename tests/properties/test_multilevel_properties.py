"""Property-based tests for N-level nested recursion (Section 7.2 ext.).

The same invariants the 2-level properties pin down, generalized:
coverage (each N-dimensional point exactly once) and per-dimension
pre-order preservation, over random dimension counts, tree shapes, and
per-dimension truncation patterns.
"""

from hypothesis import given, strategies as st

from repro.core import (
    MultiLevelSpec,
    PointRecorder,
    run_original_n,
    run_twisted_n,
)
from repro.spaces import random_tree

dimension_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=12),  # tree size
        st.integers(min_value=0, max_value=500),  # seed
    ),
    min_size=1,
    max_size=4,
)


def build_spec(dims, truncate_labels=None):
    roots = [random_tree(size, seed=seed) for size, seed in dims]
    truncates = None
    if truncate_labels is not None:
        truncates = [
            (lambda labels: (lambda node: node.label in labels))(labels)
            for labels in truncate_labels
        ]
    return MultiLevelSpec(roots=roots, truncates=truncates)


def run_points(run, spec):
    recorder = PointRecorder()
    run(spec, instrument=recorder)
    return recorder.points


class TestCoverage:
    @given(dims=dimension_lists)
    def test_twisted_visits_every_point_once(self, dims):
        spec = build_spec(dims)
        original = run_points(run_original_n, spec)
        twisted = run_points(run_twisted_n, spec)
        expected = 1
        for size, _seed in dims:
            expected *= size
        assert len(original) == expected
        assert len(twisted) == len(set(twisted)) == expected
        assert set(twisted) == set(original)

    @given(
        dims=dimension_lists,
        truncated=st.lists(
            st.frozensets(st.integers(min_value=0, max_value=11), max_size=3),
            min_size=4,
            max_size=4,
        ),
    )
    def test_truncated_spaces_agree(self, dims, truncated):
        spec = build_spec(dims, truncate_labels=truncated[: len(dims)])
        original = run_points(run_original_n, spec)
        twisted = run_points(run_twisted_n, spec)
        assert sorted(original) == sorted(twisted)


class TestOrderPreservation:
    @given(dims=dimension_lists)
    def test_per_dimension_preorder_preserved(self, dims):
        spec = build_spec(dims)
        original = run_points(run_original_n, spec)
        twisted = run_points(run_twisted_n, spec)
        for dim in range(len(dims)):
            groups_original: dict = {}
            groups_twisted: dict = {}
            for point in original:
                key = point[:dim] + point[dim + 1 :]
                groups_original.setdefault(key, []).append(point[dim])
            for point in twisted:
                key = point[:dim] + point[dim + 1 :]
                groups_twisted.setdefault(key, []).append(point[dim])
            assert groups_original == groups_twisted

"""Irregular-truncation machinery (Section 4 of the paper).

When ``truncateInner2?(o, i)`` is present, the interchanged and twisted
schedules cannot simply skip recursive calls the way the original code
does: a truncation discovered at iteration ``(B, 2)`` must also
suppress the *implicitly* skipped iterations ``(B, 3)`` and ``(B, 4)``
that other traversals will reach later (Figure 6).  The paper solves
this with truncation state stored on outer-tree nodes; this module
implements both variants behind one small policy interface:

* :class:`FlagTruncation` — Figure 6(b): a boolean flag per outer node,
  a per-phase ``unTrunc`` set, and an unset loop when the inner subtree
  completes.  This is the baseline mechanism, whose unset loop is the
  instruction overhead Section 4.3 complains about.
* :class:`CounterTruncation` — the Section 4.3 optimization: inner
  nodes carry their pre-order number; an outer node's flag becomes a
  counter ``c`` with the semantics "inner node ``v`` is truncated for
  this outer node iff ``v.number < c``".  Setting the flag stores the
  number of the first inner node *after* the current inner subtree
  (``i.number + i.size``), so nodes "naturally untruncate" as the
  traversal passes the subtree boundary — no unset loops at all.
  Requires a fixed, a-priori traversal order of the inner tree
  (condition (ii) of Section 4.3), which pre-order numbering provides.
* :class:`NoTruncation` — the regular case; every hook is a cheap
  no-op so the regular executors pay nothing.

Both stateful policies also report whether *every* live outer node in a
subtree ended up truncated, which powers the *subtree truncation*
optimization of Section 4.2 (cut off the swapped recursion when the
whole cross product below would be skipped).

A deliberate deviation from the Figure 6(b) listing: we test the flag
*before* evaluating ``truncateInner2?`` and never re-add an
already-flagged node to the current phase's ``unTrunc`` set.  The
listing as printed would let a nested truncation phase unset a flag
that an *outer* phase still needs (the inner phase's unset loop fires
first), executing iterations the original code skips.  Checking the
flag first gives each flag exactly one owning phase.  The
``TestNestedTruncationRegions`` cases in
``tests/unit/core/test_truncation.py`` pin this behaviour down.
"""

from __future__ import annotations

from typing import Optional

from repro.core.instruments import Instrument
from repro.core.spec import NestedRecursionSpec, Truncate2Predicate
from repro.errors import ScheduleError
from repro.spaces.node import IndexNode


class TruncationPolicy:
    """Strategy interface used by the interchanged/twisted executors.

    A *phase* corresponds to one ``recurseOuterSwapped`` invocation —
    the visit of one inner node ``i`` plus the traversal of its
    subtree.  Flags set while processing ``i`` are owned by that phase
    and released when it closes.
    """

    def open_phase(self) -> Optional[list[IndexNode]]:
        """Begin a swapped-recursion phase; returns the phase frame."""
        return None

    def close_phase(
        self, frame: Optional[list[IndexNode]], ins: Instrument
    ) -> None:
        """End a phase, releasing any truncation state it owns."""

    def check_and_mark(
        self, o: IndexNode, i: IndexNode, frame: Optional[list[IndexNode]], ins: Instrument
    ) -> bool:
        """Handle one swapped-order visit of ``(o, i)``.

        Returns ``True`` when the point must be skipped — either because
        ``o`` is already truncated for the current inner region, or
        because ``truncateInner2?(o, i)`` fires now (in which case the
        truncation is recorded).  ``False`` means the point executes.
        """
        return False

    def subtree_truncated(self, o: IndexNode, i: IndexNode, ins: Instrument) -> bool:
        """Is the whole inner subtree at ``i`` truncated for node ``o``?

        Used by the *regular-order* phases of the twisted schedule: a
        flag set during an enclosing swapped phase covers the entire
        inner subtree about to be traversed for ``o``.
        """
        return False


class NoTruncation(TruncationPolicy):
    """Policy for regular specs (``truncateInner2?`` absent)."""


class FlagTruncation(TruncationPolicy):
    """Figure 6(b): boolean flags plus per-phase unset sets.

    ``isolated=True`` keeps the flags in a policy-local set instead of
    on the nodes themselves — same decisions, same instrumentation
    events, but zero writes to (possibly shared) tree state.  This is
    what gives each task of a task-parallel execution its own private
    truncation state (Section 7.3 requires tasks to be independent).
    """

    def __init__(
        self, truncate_inner2: Truncate2Predicate, isolated: bool = False
    ) -> None:
        self.truncate_inner2 = truncate_inner2
        self.isolated = isolated
        #: policy-local flag storage (identity-keyed) when isolated
        self._flags: set[IndexNode] = set()

    def _flagged(self, node: IndexNode) -> bool:
        if self.isolated:
            return node in self._flags
        return node.trunc

    def _set_flag(self, node: IndexNode, value: bool) -> None:
        if self.isolated:
            if value:
                self._flags.add(node)
            else:
                self._flags.discard(node)
        else:
            node.trunc = value

    def open_phase(self) -> list[IndexNode]:
        return []

    def close_phase(self, frame: Optional[list[IndexNode]], ins: Instrument) -> None:
        assert frame is not None
        for node in frame:
            ins.op("flag_unset")
            self._set_flag(node, False)

    def check_and_mark(
        self, o: IndexNode, i: IndexNode, frame: Optional[list[IndexNode]], ins: Instrument
    ) -> bool:
        ins.op("flag_check")
        if self._flagged(o):
            return True
        ins.op("trunc_check")
        if self.truncate_inner2(o, i):
            ins.op("flag_set")
            self._set_flag(o, True)
            assert frame is not None
            frame.append(o)
            return True
        return False

    def subtree_truncated(self, o: IndexNode, i: IndexNode, ins: Instrument) -> bool:
        ins.op("flag_check")
        return self._flagged(o)


class CounterTruncation(TruncationPolicy):
    """Section 4.3: pre-order counters instead of flags.

    ``o.trunc_counter`` holds the pre-order number of the first inner
    node at which ``o`` becomes live again (-1 = never truncated).  The
    policy never unsets anything: passing the recorded boundary
    untruncates implicitly, which removes the unset loops (and their
    cache-unfriendly second traversal of outer nodes) entirely.

    As with :class:`FlagTruncation`, ``isolated=True`` keeps the
    counters in a policy-local dict instead of the nodes' own
    ``trunc_counter`` slots, so concurrent task simulations over shared
    trees cannot observe each other's truncation state.
    """

    def __init__(
        self, truncate_inner2: Truncate2Predicate, isolated: bool = False
    ) -> None:
        self.truncate_inner2 = truncate_inner2
        self.isolated = isolated
        #: policy-local counter storage (identity-keyed) when isolated
        self._counters: dict[IndexNode, int] = {}

    def _counter(self, node: IndexNode) -> int:
        if self.isolated:
            return self._counters.get(node, -1)
        return node.trunc_counter

    def check_and_mark(
        self, o: IndexNode, i: IndexNode, frame: Optional[list[IndexNode]], ins: Instrument
    ) -> bool:
        if i.number < 0:
            raise ScheduleError(
                "counter truncation requires pre-order numbering on the "
                "inner tree; build trees via repro.spaces (finalize_tree)"
            )
        ins.op("counter_check")
        if i.number < self._counter(o):
            return True
        ins.op("trunc_check")
        if self.truncate_inner2(o, i):
            ins.op("counter_set")
            # First pre-order number after i's subtree: descendants of i
            # occupy [i.number, i.number + i.size).
            boundary = i.number + i.size
            if self.isolated:
                self._counters[o] = boundary
            else:
                o.trunc_counter = boundary
            return True
        return False

    def subtree_truncated(self, o: IndexNode, i: IndexNode, ins: Instrument) -> bool:
        ins.op("counter_check")
        return i.number < self._counter(o)


def make_policy(
    spec: NestedRecursionSpec, use_counters: bool = False
) -> TruncationPolicy:
    """Pick the truncation policy a transformed schedule needs.

    Regular specs get :class:`NoTruncation`; irregular specs get flags
    by default or counters when ``use_counters`` is set.  Specs marked
    ``isolated_truncation`` get policy-local state storage so runs over
    shared trees stay independent.
    """
    if spec.truncate_inner2 is None:
        return NoTruncation()
    if use_counters:
        return CounterTruncation(
            spec.truncate_inner2, isolated=spec.isolated_truncation
        )
    return FlagTruncation(spec.truncate_inner2, isolated=spec.isolated_truncation)

"""A persistent dual-tree query service (the serving layer).

The paper's Section 2 interchange observation — "many concurrent
queries x one reference tree" is just another nested recursive
iteration space — becomes an admission policy here: concurrent user
queries are grouped per tick, indexed into one *batched outer tree*,
and executed down the repository's existing fast path (spec ->
``choose_backend`` -> batched/SoA executors) against a reference tree
that was finalized, analyzed, and published to shared memory exactly
once at startup.

Public surface:

* :class:`~repro.serve.service.QueryService` — the resident back end:
  builds and pins everything once, executes admitted batches, demuxes
  per-query answers from result columns.
* :class:`~repro.serve.batcher.AdmissionBatcher` — the asyncio front
  end: groups concurrent queries by compatible kind/parameters under a
  (max batch size, max hold latency) policy.
* :mod:`~repro.serve.protocol` — query/result dataclasses plus their
  JSON wire encoding.
* ``python -m repro.serve`` — a JSON-lines TCP server over the two.

Every batched answer is **bit-identical** to per-query serial
execution; see :mod:`repro.serve.rules` for the argument.
"""

from repro.serve.batcher import AdmissionBatcher
from repro.serve.protocol import (
    CountQuery,
    CountResult,
    KNNQuery,
    KNNResult,
    NNQuery,
    NNResult,
    decode_query,
    decode_result,
    encode_query,
    encode_result,
    group_key,
)
from repro.serve.service import QueryService, ServiceConfig

__all__ = [
    "AdmissionBatcher",
    "CountQuery",
    "CountResult",
    "KNNQuery",
    "KNNResult",
    "NNQuery",
    "NNResult",
    "QueryService",
    "ServiceConfig",
    "decode_query",
    "decode_result",
    "encode_query",
    "encode_result",
    "group_key",
]

"""Unit tests for the typed kernel IR extractor."""

import numpy as np
import pytest

from repro.transform.lint.kernel_ir import (
    AFFINE,
    GATHER,
    MASK,
    SLICE,
    UNKNOWN,
    extract_kernel_ir,
)

OUT = np.zeros((16, 16))
TABLE = np.arange(64, dtype=np.float64)


def soa_ir(fn):
    return extract_kernel_ir(fn, "work_batch_soa")


def writes_of(ir):
    return [a for a in ir.array_accesses if a.is_write]


class TestAffineTracking:
    def test_positions_are_affine_rank_vectors(self):
        def kernel(o_view, i_view, o_positions, i_positions):
            rows = np.fromiter(o_positions, dtype=np.intp, count=len(o_positions))
            OUT[rows, 0] = 1.0

        ir = soa_ir(kernel)
        (write,) = writes_of(ir)
        assert write.array == "OUT"
        assert write.dims[0].kind == AFFINE
        assert write.dims[0].axis == "outer"
        assert write.dims[0].coeff == 1
        assert write.dims[0].const == 0

    def test_affine_arithmetic_keeps_coefficients(self):
        def kernel(o_view, i_view, o_positions, i_positions):
            rows = np.asarray(o_positions)
            OUT[2 * rows + 3, 0] = 1.0

        ir = soa_ir(kernel)
        (write,) = writes_of(ir)
        assert write.dims[0].kind == AFFINE
        assert (write.dims[0].coeff, write.dims[0].const) == (2, 3)

    def test_rank_times_rank_goes_nonaffine(self):
        def kernel(o_view, i_view, o_positions, i_positions):
            rows = np.asarray(o_positions)
            OUT[rows * rows, 0] = 1.0

        ir = soa_ir(kernel)
        (write,) = writes_of(ir)
        assert write.dims[0].kind == UNKNOWN
        assert "rank" in write.dims[0].detail

    def test_modulo_goes_nonaffine(self):
        def kernel(o_view, i_view, o_positions, i_positions):
            rows = np.asarray(o_positions)
            OUT[rows % 4, 0] = 1.0

        ir = soa_ir(kernel)
        (write,) = writes_of(ir)
        assert write.dims[0].kind == UNKNOWN


class TestGathers:
    def test_column_gather_through_affine_index(self):
        def kernel(o_view, i_view, o_positions, i_positions):
            rows = np.asarray(o_positions)
            vals = o_view.column("data")[rows]
            OUT[vals, 0] = 1.0

        ir = soa_ir(kernel)
        write = next(a for a in writes_of(ir) if a.array == "OUT")
        assert write.dims[0].kind == GATHER
        assert write.dims[0].axis == "outer"
        assert write.dims[0].column == "data"
        # The column read itself is recorded as an affine access.
        read = next(a for a in ir.array_accesses if a.array == "outer.data")
        assert read.dims[0].kind == AFFINE

    def test_node_attribute_is_a_gather(self):
        def kernel(o, i):
            OUT[o.data, i.data] = 1.0

        ir = extract_kernel_ir(kernel, "work")
        (write,) = writes_of(ir)
        assert [d.kind for d in write.dims] == [GATHER, GATHER]
        assert [d.axis for d in write.dims] == ["outer", "inner"]
        assert ("outer", "data") in ir.attr_reads
        assert ("inner", "data") in ir.attr_reads

    def test_gather_plus_constant_stays_a_gather(self):
        def kernel(o, i):
            OUT[o.data + 1, 0] = 1.0

        ir = extract_kernel_ir(kernel, "work")
        (write,) = writes_of(ir)
        assert write.dims[0].kind == GATHER
        assert write.dims[0].column == "data"


class TestObjectAndAllocationFacts:
    def test_dict_subscript_is_an_object_use(self):
        lookup = {}

        def kernel(o_view, i_view, o_positions, i_positions):
            lookup[len(o_positions)] = 1

        ir = soa_ir(kernel)
        assert any("lookup" in use.what for use in ir.object_uses)

    def test_list_literal_is_an_allocation(self):
        def kernel(o_view, i_view, o_positions, i_positions):
            staged = [float(p) for p in o_positions]
            return staged

        ir = soa_ir(kernel)
        assert any(a.kind == "list" for a in ir.allocations)

    def test_ndarray_alloc_inside_loop_is_flagged_in_loop(self):
        def kernel(o_view, i_view, o_positions, i_positions):
            for _ in range(2):
                scratch = np.zeros(4)
            return scratch

        ir = soa_ir(kernel)
        alloc = next(a for a in ir.allocations if a.kind == "ndarray")
        assert alloc.in_loop

    def test_fresh_alloc_writes_carry_the_fresh_label(self):
        def kernel(o_view, i_view, o_positions, i_positions):
            scratch = np.zeros(8)
            scratch[:] = 1.0

        ir = soa_ir(kernel)
        (write,) = writes_of(ir)
        assert write.array.startswith("<fresh")

    def test_nested_def_is_an_object_use(self):
        def kernel(o_view, i_view, o_positions, i_positions):
            def helper():
                return 1

            return helper()

        ir = soa_ir(kernel)
        assert any("nested function" in use.what for use in ir.object_uses)


class TestStateAndReductions:
    class Acc:
        def __init__(self):
            self.total = 0.0
            self.trace = []

    def test_augmented_add_is_a_reduction(self):
        acc = self.Acc()

        def kernel(o, i):
            acc.total += float(o.data * i.data)

        ir = extract_kernel_ir(kernel, "work")
        (write,) = ir.state_writes()
        assert write.label == "acc.total"
        assert write.reduction

    def test_plain_assign_is_not_a_reduction(self):
        acc = self.Acc()

        def kernel(o, i):
            acc.total = float(o.data) - acc.total

        ir = extract_kernel_ir(kernel, "work")
        (write,) = ir.state_writes()
        assert not write.reduction

    def test_subtract_augassign_is_not_a_reduction(self):
        acc = self.Acc()

        def kernel(o, i):
            acc.total -= float(o.data)

        ir = extract_kernel_ir(kernel, "work")
        (write,) = ir.state_writes()
        assert not write.reduction

    def test_non_numeric_state_field_is_untyped(self):
        acc = self.Acc()

        def kernel(o, i):
            acc.trace = o

        ir = extract_kernel_ir(kernel, "work")
        (write,) = ir.state_writes()
        assert not write.typed


class TestMiscFacts:
    def test_mask_index_is_a_dynamic_shape(self):
        def kernel(o_view, i_view, o_positions, i_positions):
            hot = TABLE[TABLE > 3.0]
            return hot

        ir = soa_ir(kernel)
        assert ir.dynamic_shapes
        read = next(a for a in ir.array_accesses if a.array == "TABLE")
        assert read.dims[0].kind == MASK

    def test_slice_read_is_recorded(self):
        def kernel(o, i):
            return float(TABLE[:4].sum())

        ir = extract_kernel_ir(kernel, "work")
        read = next(a for a in ir.array_accesses if a.array == "TABLE")
        assert read.dims[0].kind == SLICE

    def test_unknown_call_is_a_helper_record(self):
        import collections

        def kernel(o, i):
            return collections.Counter()

        ir = extract_kernel_ir(kernel, "work")
        assert any("Counter" in h.name for h in ir.unknown_helpers)

    def test_node_field_writes_record_the_axis(self):
        def kernel(o, i):
            o.score = 1.0
            i.score = 2.0

        ir = extract_kernel_ir(kernel, "work")
        axes = {w.axis for w in ir.node_writes}
        assert axes == {"outer", "inner"}

    def test_tuple_unpacking_binds_kinds(self):
        def kernel(o, i):
            row, col = o.data, i.data
            OUT[row, col] = 1.0

        ir = extract_kernel_ir(kernel, "work")
        (write,) = writes_of(ir)
        assert [d.axis for d in write.dims] == ["outer", "inner"]

    def test_builtin_kernel_is_unanalyzable(self):
        ir = extract_kernel_ir(len, "work")
        assert not ir.analyzable

    def test_unknown_role_is_a_programming_error(self):
        with pytest.raises(ValueError, match="role"):
            extract_kernel_ir(lambda o, i: None, "nope")

    def test_json_summary_has_stable_keys(self):
        def kernel(o, i):
            OUT[o.data, i.data] = 1.0

        payload = extract_kernel_ir(kernel, "work").to_json()
        assert payload["role"] == "work"
        assert payload["analyzable"] is True
        assert any("gather" in line for line in payload["array_accesses"])

"""Unit tests for the diagnostics engine: catalog, rendering, sinks."""

import ast
import re
from pathlib import Path

import pytest

from repro.transform.lint import collect_pragmas, lint_source
from repro.transform.lint.diagnostics import (
    AFFECTS_DOMAINS,
    CATALOG,
    Diagnostic,
    DiagnosticSink,
    Severity,
    make_diagnostic,
)

DOCS = Path(__file__).resolve().parents[4] / "docs" / "DIAGNOSTICS.md"


class TestCatalog:
    def test_codes_are_stable_and_well_formed(self):
        for code, info in CATALOG.items():
            assert re.fullmatch(r"TW\d{3}", code)
            assert info.code == code
            assert info.title
            assert info.affects in AFFECTS_DOMAINS

    def test_expected_codes_present(self):
        assert {
            "TW001", "TW002", "TW003", "TW010", "TW011", "TW012",
            "TW013", "TW015", "TW020", "TW021", "TW022", "TW023",
            "TW024", "TW030",
        } <= set(CATALOG)

    def test_backend_family_present(self):
        """The TW1xx conformance family is cataloged and scoped."""
        backend_codes = {
            code for code, info in CATALOG.items() if info.affects == "backend"
        }
        assert backend_codes == {
            "TW100", "TW101", "TW102", "TW103", "TW104", "TW105",
            "TW106", "TW107", "TW108", "TW109", "TW110",
        }
        # All and only TW1xx codes carry the backend dimension.
        assert backend_codes == {
            code for code in CATALOG if code.startswith("TW1")
        }

    def test_severity_conventions(self):
        assert CATALOG["TW010"].severity is Severity.ERROR
        assert CATALOG["TW013"].severity is Severity.WARNING
        assert CATALOG["TW015"].severity is Severity.INFO
        assert CATALOG["TW030"].affects == "parallel"
        assert CATALOG["TW101"].severity is Severity.ERROR
        assert CATALOG["TW108"].severity is Severity.WARNING
        assert CATALOG["TW109"].severity is Severity.INFO

    def test_docs_catalog_in_sync(self):
        """Every catalog code has a docs section and vice versa."""
        text = DOCS.read_text()
        documented = set(re.findall(r"^### (TW\d{3})", text, re.MULTILINE))
        assert documented == set(CATALOG)
        # Titles appear verbatim so the docs never drift from the code.
        for info in CATALOG.values():
            assert info.title in text


class TestDiagnostic:
    def test_format_classic_line(self):
        diag = Diagnostic("TW010", Severity.ERROR, "boom", line=4, col=2)
        assert diag.format("f.py") == "f.py:4:2: error[TW010]: boom"

    def test_format_includes_hint(self):
        diag = Diagnostic(
            "TW013", Severity.WARNING, "unknown", line=1, col=0, hint="declare it"
        )
        assert "hint: declare it" in diag.format()

    def test_json_round_trip(self):
        diag = make_diagnostic(
            "TW011", "shared", ast.parse("x = 1").body[0], hint="fix"
        )
        payload = diag.to_json()
        assert payload == {
            "code": "TW011",
            "severity": "error",
            "message": "shared",
            "line": 1,
            "col": 0,
            "hint": "fix",
        }

    def test_unknown_code_is_programming_error(self):
        with pytest.raises(KeyError, match="TW999"):
            make_diagnostic("TW999", "nope")

    def test_span_defaults_to_zero(self):
        diag = make_diagnostic("TW001", "no parse")
        assert (diag.line, diag.col) == (0, 0)


class TestSink:
    def test_deduplicates_exact_repeats(self):
        sink = DiagnosticSink()
        node = ast.parse("f()").body[0].value
        sink.emit("TW013", "same", node)
        sink.emit("TW013", "same", node)
        assert len(sink.diagnostics) == 1

    def test_errors_and_warnings_partition(self):
        sink = DiagnosticSink()
        sink.emit("TW010", "err")
        sink.emit("TW013", "warn")
        sink.emit("TW015", "info")
        assert [d.code for d in sink.errors] == ["TW010"]
        assert [d.code for d in sink.warnings] == ["TW013"]

    def test_suppression_moves_finding_aside(self):
        sink = DiagnosticSink(suppressions={3: {"TW013"}})
        node = ast.parse("\n\nf()").body[0].value
        assert node.lineno == 3
        sink.emit("TW013", "ignored", node)
        assert sink.diagnostics == []
        assert [d.code for d in sink.suppressed] == ["TW013"]


TEMPLATE = '''
from repro.transform import outer_recursion, inner_recursion

@outer_recursion(inner="inner")
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

@inner_recursion
def inner(o, i):
    if i is None:
        return
    {work}
    inner(o, i.left)
    inner(o, i.right)
'''


class TestPragmas:
    def test_collect_assume_pure(self):
        pure, _ = collect_pragmas("# lint: assume-pure: dist, count_pairs\n")
        assert pure == {"dist", "count_pairs"}

    def test_collect_ignores_with_line_numbers(self):
        _, ignores = collect_pragmas("x = 1\ny = f()  # lint: ignore[TW013]\n")
        assert ignores == {2: {"TW013"}}

    def test_ignore_pragma_suppresses_in_lint_source(self):
        noisy = TEMPLATE.format(work="mystery(o, i)")
        quiet = TEMPLATE.format(work="mystery(o, i)  # lint: ignore[TW013]")
        assert "TW013" in lint_source(noisy).codes()
        report = lint_source(quiet)
        assert "TW013" not in report.codes()
        assert [d.code for d in report.suppressed] == ["TW013"]
        assert report.verdict.value == "interchange-safe"

    def test_assume_pure_pragma_silences_unknown_helper(self):
        source = TEMPLATE.format(
            work="o.data = mystery(o, i)  # lint: assume-pure: mystery"
        )
        report = lint_source(source)
        assert report.codes() == set()
        assert report.verdict.value == "interchange-safe"

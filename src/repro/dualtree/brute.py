"""Brute-force oracles for the dual-tree algorithms.

Dense ``O(n*m)`` numpy computations of the exact answers, used to
verify every dual-tree run (under every schedule) in tests and
examples.  Sizes stay in the thousands, so the quadratic cost is fine.
"""

from __future__ import annotations

import numpy as np


def _all_distances(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """(n, m) Euclidean distance matrix."""
    diff = queries[:, None, :] - references[None, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


def brute_point_correlation(
    queries: np.ndarray,
    references: np.ndarray,
    radius: float,
    count_self_pairs: bool = True,
) -> int:
    """Ordered (query, reference) pairs within ``radius``.

    ``count_self_pairs=False`` removes identical-index pairs, for the
    same-set correlation variant.
    """
    within = _all_distances(queries, references) <= radius
    if not count_self_pairs:
        n = min(queries.shape[0], references.shape[0])
        within[np.arange(n), np.arange(n)] = False
    return int(within.sum())


def brute_nearest_neighbor(
    queries: np.ndarray, references: np.ndarray, exclude_self: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Per-query nearest reference: (ids, distances)."""
    distances = _all_distances(queries, references)
    if exclude_self:
        n = min(queries.shape[0], references.shape[0])
        distances[np.arange(n), np.arange(n)] = np.inf
    ids = distances.argmin(axis=1)
    return ids, distances[np.arange(queries.shape[0]), ids]


def brute_knn(
    queries: np.ndarray,
    references: np.ndarray,
    k: int,
    exclude_self: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-query k nearest references: (ids, distances), nearest first.

    Ties are broken by reference id, matching the deterministic
    insertion order of
    :class:`~repro.dualtree.rules.KNearestNeighborRules`.
    """
    distances = _all_distances(queries, references)
    if exclude_self:
        n = min(queries.shape[0], references.shape[0])
        distances[np.arange(n), np.arange(n)] = np.inf
    # Sort by (distance, id) for deterministic ties.
    order = np.lexsort(
        (np.broadcast_to(np.arange(references.shape[0]), distances.shape), distances),
        axis=1,
    )
    top = order[:, :k]
    rows = np.arange(queries.shape[0])[:, None]
    return top, distances[rows, top]

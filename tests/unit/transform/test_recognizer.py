"""Unit tests for the template recognizer (the §5 sanity check)."""

import ast

import pytest

from repro.errors import TransformError
from repro.transform import recognize

GOOD = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

def inner(o, i):
    if i is None:
        return
    work(o, i)
    inner(o, i.left)
    inner(o, i.right)
'''


class TestAcceptance:
    def test_extracts_template_parts(self):
        template = recognize(GOOD, "outer", "inner")
        assert (template.o_param, template.i_param) == ("o", "i")
        assert ast.unparse(template.outer_guard) == "o is None"
        assert ast.unparse(template.inner_guard) == "i is None"
        assert [ast.unparse(e) for e in template.outer_child_exprs] == [
            "o.left",
            "o.right",
        ]
        assert [ast.unparse(e) for e in template.inner_child_exprs] == [
            "i.left",
            "i.right",
        ]
        assert len(template.work_statements) == 1

    def test_docstrings_tolerated(self):
        source = GOOD.replace(
            "def outer(o, i):\n    if",
            'def outer(o, i):\n    "doc"\n    if',
        )
        recognize(source, "outer", "inner")

    def test_arbitrary_fanout_accepted(self):
        source = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.c1, i)
    outer(o.c2, i)
    outer(o.c3, i)

def inner(o, i):
    if i is None:
        return
    work(o, i)
    inner(o, i.c1)
'''
        template = recognize(source, "outer", "inner")
        assert len(template.outer_child_exprs) == 3
        assert len(template.inner_child_exprs) == 1

    def test_multiple_work_statements(self):
        source = GOOD.replace("work(o, i)", "work(o, i)\n    log(o)")
        template = recognize(source, "outer", "inner")
        assert len(template.work_statements) == 2

    def test_decorators_stripped_from_roundtrip(self):
        source = "@mark\n" + GOOD.lstrip()
        template = recognize(source, "outer", "inner")
        assert "@mark" not in template.outer_source


class TestRejection:
    def reject(self, source, pattern):
        with pytest.raises(TransformError, match=pattern):
            recognize(source, "outer", "inner")

    def test_missing_function(self):
        self.reject("def outer(o, i):\n    pass", "no top-level function named 'inner'")

    def test_syntax_error(self):
        self.reject("def outer(o, i:\n", "does not parse")

    def test_wrong_arity(self):
        self.reject(GOOD.replace("def outer(o, i):", "def outer(o):"), "two positional")

    def test_mismatched_param_names(self):
        self.reject(GOOD.replace("def inner(o, i):", "def inner(x, y):"), "same parameter names")

    def test_missing_guard(self):
        self.reject(
            GOOD.replace("if o is None:\n        return\n    inner", "inner"),
            "truncation check",
        )

    def test_guard_with_else(self):
        bad = GOOD.replace(
            "if o is None:\n        return",
            "if o is None:\n        return\n    else:\n        pass",
        )
        self.reject(bad, "no else branch")

    def test_outer_guard_using_inner_index(self):
        self.reject(GOOD.replace("if o is None:", "if o is None or i is None:"),
                    "only depend on")

    def test_outer_without_inner_launch(self):
        self.reject(GOOD.replace("    inner(o, i)\n    outer(o.left, i)",
                                 "    outer(o.left, i)"), "immediately after")

    def test_outer_recursion_changing_inner_index(self):
        self.reject(GOOD.replace("outer(o.left, i)", "outer(o.left, i.left)"),
                    "keep the inner index fixed")

    def test_inner_recursion_changing_outer_index(self):
        self.reject(GOOD.replace("inner(o, i.left)", "inner(o.left, i.left)"),
                    "keep the outer index fixed")

    def test_work_after_recursive_call(self):
        bad = GOOD.replace(
            "    inner(o, i.left)\n    inner(o, i.right)",
            "    inner(o, i.left)\n    work(o, i)\n    inner(o, i.right)",
        )
        self.reject(bad, "must precede")

    def test_no_work(self):
        self.reject(GOOD.replace("    work(o, i)\n", ""), "no work statements")

    def test_no_recursive_calls_in_inner(self):
        bad = GOOD.replace("    inner(o, i.left)\n    inner(o, i.right)\n", "")
        self.reject(bad, "no recursive calls")

    def test_work_invoking_recursion(self):
        self.reject(GOOD.replace("work(o, i)", "work(inner(o, i), i)"),
                    "must not invoke")

    def test_keyword_recursive_call(self):
        self.reject(GOOD.replace("outer(o.left, i)", "outer(o.left, i=i)"),
                    "positional arguments only")

"""Parity and unit tests for the frontier-batched executors.

The batched engine's contract is *bit-identical observability*: for
every schedule configuration, the instrument event stream (ops,
accesses, work points, in order) and the computed results must match
the recursive executors exactly.  These tests enforce the contract on
all six annotated benchmarks (plus KDE, whose ``Score`` has a
productive side effect) and exercise the dispatcher machinery
directly.
"""

import numpy as np
import pytest

from repro.core import (
    NestedRecursionSpec,
    run_interchanged,
    run_interchanged_batched,
    run_original,
    run_original_batched,
    run_twisted,
    run_twisted_batched,
)
from repro.core.batched import DEFAULT_BATCH_SIZE, BatchDispatcher
from repro.core.instruments import Instrument
from repro.core.schedules import BY_NAME, get_schedule, twist_with_cutoff
from repro.errors import ScheduleError, SpecError
from repro.spaces import balanced_tree, paper_inner_tree, paper_outer_tree


class EventRecorder(Instrument):
    """Records every instrument event, in order."""

    def __init__(self):
        self.events = []

    def op(self, kind):
        self.events.append(("op", kind))

    def access(self, tree, node):
        self.events.append(("access", tree, node.number))

    def work(self, o, i):
        self.events.append(("work", o.number, i.number))


#: (label, recursive runner, batched runner, kwargs) for every
#: schedule configuration under test.
VARIANTS = [
    ("original", run_original, run_original_batched, {}),
    ("interchange", run_interchanged, run_interchanged_batched, {}),
    (
        "interchange+counters+subtree",
        run_interchanged,
        run_interchanged_batched,
        {"use_counters": True, "subtree_truncation": True},
    ),
    ("twist", run_twisted, run_twisted_batched, {}),
    ("twist+counters", run_twisted, run_twisted_batched, {"use_counters": True}),
    (
        "twist(cutoff=16)-subtree",
        run_twisted,
        run_twisted_batched,
        {"cutoff": 16, "subtree_truncation": False},
    ),
]


def make_cases():
    """Small instances of the six benchmarks, plus KDE."""
    from repro.bench.workloads import (
        make_knn,
        make_mm,
        make_nn,
        make_pc,
        make_tj,
        make_vp,
    )
    from repro.dualtree import KernelDensity
    from repro.spaces.points import clustered_points

    cases = [
        make_tj(120),
        make_mm(48),
        make_pc(512),
        make_nn(384),
        make_knn(256),
        make_vp(256),
    ]
    kde = KernelDensity(
        clustered_points(300, clusters=8, spread=0.05, seed=3),
        clustered_points(300, clusters=8, spread=0.05, seed=4),
        bandwidth=0.1,
        epsilon=1e-4,
    )

    class KdeCase:
        """Adapter giving KDE the BenchmarkCase result/spec surface."""

        name = "KDE"
        make_spec = staticmethod(kde.make_spec)

        @staticmethod
        def result():
            return kde.result.tobytes()

    cases.append(KdeCase)
    return cases


CASES = make_cases()


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize(
    "variant", VARIANTS, ids=[label for label, *_ in VARIANTS]
)
def test_instrumented_parity(case, variant):
    """Events and results are bit-identical to the recursive executor."""
    _label, recursive_run, batched_run, kwargs = variant

    spec = case.make_spec()
    recorder = EventRecorder()
    recursive_run(spec, recorder, **kwargs)
    recursive_events, recursive_result = recorder.events, case.result()

    spec = case.make_spec()
    recorder = EventRecorder()
    batched_run(spec, recorder, **kwargs)

    assert recorder.events == recursive_events
    assert repr(case.result()) == repr(recursive_result)


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize(
    "variant", VARIANTS, ids=[label for label, *_ in VARIANTS]
)
def test_uninstrumented_parity(case, variant):
    """The bulk/block fast paths (only reachable uninstrumented)
    produce bit-identical results."""
    _label, recursive_run, batched_run, kwargs = variant

    spec = case.make_spec()
    recursive_run(spec, None, **kwargs)
    recursive_result = case.result()

    spec = case.make_spec()
    batched_run(spec, None, **kwargs)

    assert repr(case.result()) == repr(recursive_result)


@pytest.mark.parametrize("batch_size", [1, 3, 64, DEFAULT_BATCH_SIZE])
def test_batch_size_invariance(batch_size):
    """Any flush granularity yields the same work sequence."""
    from repro.bench.workloads import make_pc

    case = make_pc(256)
    spec = case.make_spec()
    run_original(spec, None)
    expected = case.result()
    spec = case.make_spec()
    run_original_batched(spec, None, batch_size=batch_size)
    assert case.result() == expected


class TestBatchDispatcher:
    def _spec(self, work=None, work_batch=None, observes=False):
        return NestedRecursionSpec(
            paper_outer_tree(),
            paper_inner_tree(),
            work=work,
            work_batch=work_batch,
            truncate_inner2=(lambda o, i: False) if observes else None,
            truncation_observes_work=observes,
        )

    def test_flush_preserves_order_and_clears(self):
        seen = []
        dispatcher = BatchDispatcher(
            self._spec(work_batch=lambda os, is_: seen.extend(zip(list(os), list(is_))))
        )
        outer, inner = paper_outer_tree(), paper_inner_tree()
        dispatcher.add(outer, inner)
        dispatcher.add_many([inner, outer], [outer, inner])
        dispatcher.flush()
        assert seen == [(outer, inner), (inner, outer), (outer, inner)]
        dispatcher.flush()  # idempotent on empty
        assert len(seen) == 3

    def test_auto_flush_at_batch_size(self):
        blocks = []
        dispatcher = BatchDispatcher(
            self._spec(work_batch=lambda os, is_: blocks.append(len(os))),
            batch_size=2,
        )
        node = paper_outer_tree()
        for _ in range(5):
            dispatcher.add(node, node)
        assert blocks == [2, 2]
        dispatcher.flush()
        assert blocks == [2, 2, 1]

    def test_scalar_fallback_without_work_batch(self):
        calls = []
        dispatcher = BatchDispatcher(
            self._spec(work=lambda o, i: calls.append((o, i)))
        )
        node = paper_outer_tree()
        dispatcher.add(node, node)
        dispatcher.flush()
        assert calls == [(node, node)]

    def test_barrier_flushes_only_pending_outers(self):
        blocks = []
        dispatcher = BatchDispatcher(
            self._spec(
                work_batch=lambda os, is_: blocks.append(len(os)), observes=True
            )
        )
        outer, other = paper_outer_tree(), paper_inner_tree()
        dispatcher.add(outer, other)
        dispatcher.barrier(other)  # no pending work for `other`
        assert blocks == []
        dispatcher.barrier(outer)
        assert blocks == [1]


class TestSpecValidation:
    def test_truncate_inner2_batch_requires_truncate_inner2(self):
        with pytest.raises(SpecError):
            NestedRecursionSpec(
                balanced_tree(3),
                balanced_tree(3),
                truncate_inner2_batch=lambda o: True,
            )

    def test_truncate_inner2_batch_must_be_callable(self):
        with pytest.raises(SpecError):
            NestedRecursionSpec(
                balanced_tree(3),
                balanced_tree(3),
                truncate_inner2=lambda o, i: False,
                truncate_inner2_batch=42,
            )


class TestBlockTruncation:
    """The pre-evaluated truncation fast path must match per-pair calls."""

    def _spec_pair(self, decisions_by_outer):
        outer = balanced_tree(15)
        inner = balanced_tree(31)

        def truncate_inner2(o, i):
            return bool(decisions_by_outer(o)[i.number])

        def truncate_inner2_batch(o):
            return decisions_by_outer(o)

        collected = []
        spec = NestedRecursionSpec(
            outer,
            inner,
            work=lambda o, i: collected.append((o.number, i.number)),
            truncate_inner2=truncate_inner2,
            truncate_inner2_batch=truncate_inner2_batch,
        )
        return spec, collected

    def test_array_decisions_match_scalar(self):
        rng = np.random.default_rng(0)
        table = {}

        def decisions(o):
            if o.number not in table:
                table[o.number] = rng.random(31) < 0.4
            return table[o.number]

        spec, batched_points = self._spec_pair(decisions)
        run_original_batched(spec, None)

        reference = []
        reference_spec = NestedRecursionSpec(
            spec.outer_root,
            spec.inner_root,
            work=lambda o, i: reference.append((o.number, i.number)),
            truncate_inner2=spec.truncate_inner2,
        )
        run_original(reference_spec, None)
        assert batched_points == reference

    def test_uniform_true_skips_everything(self):
        spec, points = self._spec_pair(lambda o: np.ones(31, dtype=bool))
        # Replace the block form with the scalar-uniform shortcut.
        spec = NestedRecursionSpec(
            spec.outer_root,
            spec.inner_root,
            work=spec.work,
            truncate_inner2=lambda o, i: True,
            truncate_inner2_batch=lambda o: True,
        )
        run_original_batched(spec, None)
        assert points == []

    def test_none_falls_back_to_scalar_predicate(self):
        calls = []
        points = []
        spec = NestedRecursionSpec(
            balanced_tree(7),
            balanced_tree(7),
            work=lambda o, i: points.append((o.number, i.number)),
            truncate_inner2=lambda o, i: bool(calls.append(1)) or False,
            truncate_inner2_batch=lambda o: None,
        )
        run_original_batched(spec, None)
        assert len(points) == 49
        assert len(calls) == 49  # scalar predicate evaluated per pair


class TestScheduleBackends:
    def test_all_named_schedules_offer_batched_backend(self):
        from repro.kernels import TreeJoin

        for name in sorted(BY_NAME) + ["twist(cutoff=4)"]:
            tj = TreeJoin(31, 31)
            spec = tj.make_spec()
            get_schedule(name).run(spec, backend="batched")
            assert tj.result == tj.expected_total(), name

    def test_backends_agree_under_instrumentation(self):
        schedule = twist_with_cutoff(8)
        spec = NestedRecursionSpec(balanced_tree(31), balanced_tree(31))
        recursive, batched = EventRecorder(), EventRecorder()
        schedule.run(spec, instrument=recursive, backend="recursive")
        schedule.run(spec, instrument=batched, backend="batched")
        assert recursive.events == batched.events

    def test_unknown_backend_rejected(self):
        spec = NestedRecursionSpec(balanced_tree(3), balanced_tree(3))
        with pytest.raises(ScheduleError):
            BY_NAME["original"].run(spec, backend="recursiv")

"""Property-based parity: batched executors vs recursive, any space.

The unit suite checks the six annotated benchmarks; here hypothesis
drives the same contract over *arbitrary* tree shapes, irregular
truncation patterns, and schedule options: the batched executor must
reproduce the recursive executor's instrument event stream — every
op, access, and work point, in order — and hence its work-point
sequence and op/access counts.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    NestedRecursionSpec,
    run_interchanged,
    run_interchanged_batched,
    run_original,
    run_original_batched,
    run_twisted,
    run_twisted_batched,
)
from repro.core.instruments import Instrument
from repro.spaces import random_tree

trees = st.builds(
    random_tree,
    st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=10_000),
)


def blocked_pairs_strategy(max_nodes=24):
    """Random irregular truncation patterns as (o_label, i_label) sets."""
    pair = st.tuples(
        st.integers(min_value=0, max_value=max_nodes - 1),
        st.integers(min_value=0, max_value=max_nodes - 1),
    )
    return st.frozensets(pair, max_size=12)


class EventRecorder(Instrument):
    """Records every instrument event, in order."""

    def __init__(self):
        self.events = []

    def op(self, kind):
        self.events.append(("op", kind))

    def access(self, tree, node):
        self.events.append(("access", tree, node.number))

    def work(self, o, i):
        self.events.append(("work", o.label, i.label))


def make_spec(outer, inner, blocked):
    """A spec over the given trees, irregular when ``blocked`` is set."""
    if blocked:
        return NestedRecursionSpec(
            outer,
            inner,
            truncate_inner2=lambda o, i: (o.label, i.label) in blocked,
        )
    return NestedRecursionSpec(outer, inner)


def events_of(run, spec, **kwargs):
    recorder = EventRecorder()
    run(spec, instrument=recorder, **kwargs)
    return recorder.events


@settings(max_examples=60, deadline=None)
@given(trees, trees, blocked_pairs_strategy())
def test_original_batched_event_parity(outer, inner, blocked):
    spec = make_spec(outer, inner, blocked)
    assert events_of(run_original_batched, spec) == events_of(
        run_original, spec
    )


@settings(max_examples=40, deadline=None)
@given(
    trees,
    trees,
    blocked_pairs_strategy(),
    st.booleans(),
    st.booleans(),
)
def test_interchanged_batched_event_parity(
    outer, inner, blocked, use_counters, subtree_truncation
):
    spec = make_spec(outer, inner, blocked)
    kwargs = {
        "use_counters": use_counters,
        "subtree_truncation": subtree_truncation,
    }
    assert events_of(run_interchanged_batched, spec, **kwargs) == events_of(
        run_interchanged, spec, **kwargs
    )


@settings(max_examples=40, deadline=None)
@given(
    trees,
    trees,
    blocked_pairs_strategy(),
    st.one_of(st.none(), st.integers(min_value=0, max_value=16)),
    st.booleans(),
    st.booleans(),
)
def test_twisted_batched_event_parity(
    outer, inner, blocked, cutoff, use_counters, subtree_truncation
):
    spec = make_spec(outer, inner, blocked)
    kwargs = {
        "cutoff": cutoff,
        "use_counters": use_counters,
        "subtree_truncation": subtree_truncation,
    }
    assert events_of(run_twisted_batched, spec, **kwargs) == events_of(
        run_twisted, spec, **kwargs
    )


@settings(max_examples=40, deadline=None)
@given(trees, trees, blocked_pairs_strategy(), st.integers(1, 64))
def test_work_sequence_parity_any_batch_size(outer, inner, blocked, batch_size):
    """Deferred dispatch never reorders work, whatever the flush size."""
    recursive_points, batched_points = [], []
    spec = make_spec(outer, inner, blocked)
    spec = NestedRecursionSpec(
        outer,
        inner,
        work=lambda o, i: recursive_points.append((o.label, i.label)),
        truncate_inner2=spec.truncate_inner2,
    )
    run_original(spec)
    spec = NestedRecursionSpec(
        outer,
        inner,
        work=lambda o, i: batched_points.append((o.label, i.label)),
        truncate_inner2=spec.truncate_inner2,
    )
    run_original_batched(spec, batch_size=batch_size)
    assert batched_points == recursive_points

"""Unit tests for the original (Figure 2) schedule executor."""

import pytest

from repro.core import (
    AccessTraceRecorder,
    NestedRecursionSpec,
    OpCounter,
    WorkRecorder,
    combine,
    run_original,
)
from repro.spaces import (
    balanced_tree,
    list_tree,
    paper_inner_tree,
    paper_outer_tree,
)


@pytest.fixture
def paper_spec():
    return NestedRecursionSpec(paper_outer_tree(), paper_inner_tree())


class TestOrder:
    def test_column_major_enumeration(self, paper_spec):
        recorder = WorkRecorder()
        run_original(paper_spec, instrument=recorder)
        expected = [
            (o, i) for o in "ABCDEFG" for i in range(1, 8)
        ]
        assert recorder.points == expected

    def test_list_trees_behave_like_loops(self):
        spec = NestedRecursionSpec(list_tree(3), list_tree(2))
        recorder = WorkRecorder()
        run_original(spec, instrument=recorder)
        assert recorder.points == [
            (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)
        ]

    def test_access_order_inner_before_outer(self, paper_spec):
        trace = AccessTraceRecorder()
        run_original(paper_spec, instrument=trace)
        assert trace.trace[0][0] == "inner"
        assert trace.trace[1][0] == "outer"


class TestTruncation:
    def test_truncate_outer_prunes_subtree(self):
        outer = paper_outer_tree()
        spec = NestedRecursionSpec(
            outer,
            paper_inner_tree(),
            truncate_outer=lambda o: o.label == "B",
        )
        recorder = WorkRecorder()
        run_original(spec, instrument=recorder)
        visited_outer = {o for o, _ in recorder.points}
        # B, C, D are all pruned: C and D are implicitly skipped.
        assert visited_outer == {"A", "E", "F", "G"}

    def test_truncate_inner1_prunes_per_traversal(self):
        spec = NestedRecursionSpec(
            paper_outer_tree(),
            paper_inner_tree(),
            truncate_inner1=lambda i: i.label == 2,
        )
        recorder = WorkRecorder()
        run_original(spec, instrument=recorder)
        visited_inner = {i for _, i in recorder.points}
        assert visited_inner == {1, 5, 6, 7}

    def test_truncate_inner2_figure6_example(self, paper_spec):
        # The Section 4 example: skip subtree of 2 for outer node B.
        spec = NestedRecursionSpec(
            paper_spec.outer_root,
            paper_spec.inner_root,
            truncate_inner2=lambda o, i: o.label == "B" and i.label == 2,
        )
        recorder = WorkRecorder()
        run_original(spec, instrument=recorder)
        skipped = {("B", 2), ("B", 3), ("B", 4)}
        assert set(recorder.points) == {
            (o, i) for o in "ABCDEFG" for i in range(1, 8)
        } - skipped


class TestInstrumentation:
    def test_work_runs_when_provided(self, paper_spec):
        total = []
        spec = NestedRecursionSpec(
            paper_spec.outer_root,
            paper_spec.inner_root,
            work=lambda o, i: total.append(1),
        )
        run_original(spec)
        assert len(total) == 49

    def test_op_counts(self, paper_spec):
        ops = OpCounter()
        run_original(paper_spec, instrument=ops)
        # outer calls: 7 nodes + no truncated ones (leaves have no
        # children, so calls == nodes); inner calls: 7 per outer node.
        assert ops.counts["call"] == 7 + 49
        assert ops.counts["visit"] == 49
        assert ops.work_points == 49
        assert ops.accesses == 98

    def test_no_instrument_is_fine(self, paper_spec):
        run_original(paper_spec)  # must not raise

    def test_combined_instruments_all_fire(self, paper_spec):
        works, ops = WorkRecorder(), OpCounter()
        run_original(paper_spec, instrument=combine(works, ops))
        assert len(works.points) == ops.work_points == 49


class TestDeepSpaces:
    def test_deep_list_trees_do_not_overflow(self):
        # 3000-deep nesting would exceed the default interpreter limit;
        # the executor's recursion guard must handle it.
        spec = NestedRecursionSpec(list_tree(1500), list_tree(1500))
        ops = OpCounter()
        # Only count — 2.25M works would be slow with full recording.
        run_original(
            NestedRecursionSpec(list_tree(1500), list_tree(2)), instrument=ops
        )
        assert ops.work_points == 3000

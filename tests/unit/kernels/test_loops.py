"""Unit tests for the loop-to-recursion bridges (Sections 2.1 / 7.2)."""

import numpy as np
import pytest

from repro.core import WorkRecorder, run_original, run_twisted
from repro.kernels import (
    divide_and_conquer_spec,
    loop_nest_spec,
    range_tree,
    unit_work_points,
)


class TestLoopNestSpec:
    def test_executes_loop_order(self):
        visits = []
        spec = loop_nest_spec(3, 2, lambda i, j: visits.append((i, j)))
        run_original(spec)
        assert visits == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]

    def test_twisting_list_trees_preserves_body_count(self):
        visits = []
        spec = loop_nest_spec(4, 4, lambda i, j: visits.append((i, j)))
        run_twisted(spec)
        assert sorted(visits) == [(i, j) for i in range(4) for j in range(4)]


class TestRangeTree:
    def test_covers_range_with_unit_leaves(self):
        root = range_tree(0, 10)
        units = sorted(
            node.lo for node in root.iter_preorder() if node.is_unit
        )
        assert units == list(range(10))

    def test_midpoint_split(self):
        root = range_tree(0, 8)
        assert root.children[0].hi == 4
        assert root.children[1].lo == 4

    def test_balanced_depth(self):
        from repro.spaces import tree_depth

        assert tree_depth(range_tree(0, 64)) == 7  # log2(64) + 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            range_tree(3, 3)


class TestDivideAndConquer:
    def test_original_order_is_row_major(self):
        recorder = WorkRecorder()
        spec = divide_and_conquer_spec(4, 3, lambda i, j: None)
        run_original(spec, instrument=recorder)
        assert unit_work_points(recorder.points) == [
            (i, j) for i in range(4) for j in range(3)
        ]

    def test_body_runs_once_per_pair(self):
        counts = np.zeros((5, 7), dtype=int)

        def body(i, j):
            counts[i, j] += 1

        run_twisted(divide_and_conquer_spec(5, 7, body))
        assert (counts == 1).all()

    def test_twisted_order_is_blocked(self):
        recorder = WorkRecorder()
        run_twisted(divide_and_conquer_spec(8, 8, lambda i, j: None),
                    instrument=recorder)
        order = unit_work_points(recorder.points)
        assert sorted(order) == [(i, j) for i in range(8) for j in range(8)]
        # Not row-major: twisting reorders into recursive tiles.
        assert order != [(i, j) for i in range(8) for j in range(8)]

    def test_matvec_correct_under_twisting(self):
        rng = np.random.default_rng(1)
        a, x = rng.random((9, 6)), rng.random(6)
        y = np.zeros(9)

        def body(i, j):
            y[i] += a[i, j] * x[j]

        run_twisted(divide_and_conquer_spec(9, 6, body))
        assert np.allclose(y, a @ x)

"""Unit tests for the tree builders."""

import pytest

from repro.spaces import (
    balanced_tree,
    letter_labeler,
    list_tree,
    paper_inner_tree,
    paper_outer_tree,
    perfect_tree,
    random_tree,
    relabel_preorder,
    tree_depth,
)


class TestBalancedTree:
    def test_node_count(self):
        for n in (1, 2, 3, 7, 10, 100):
            assert balanced_tree(n).size == n

    def test_heap_shape_depth(self):
        assert tree_depth(balanced_tree(1)) == 1
        assert tree_depth(balanced_tree(7)) == 3
        assert tree_depth(balanced_tree(8)) == 4
        assert tree_depth(balanced_tree(1023)) == 10

    def test_bfs_labels(self):
        root = balanced_tree(5)
        assert root.label == 0
        assert {c.label for c in root.children} == {1, 2}

    def test_data_callback(self):
        root = balanced_tree(4, data=lambda k: k * 10)
        assert sorted(n.data for n in root.iter_preorder()) == [0, 10, 20, 30]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            balanced_tree(0)


class TestPerfectTree:
    def test_sizes(self):
        assert perfect_tree(1).size == 1
        assert perfect_tree(3).size == 7
        assert perfect_tree(5).size == 31

    def test_all_internal_nodes_have_two_children(self):
        root = perfect_tree(4)
        for node in root.iter_preorder():
            assert len(node.children) in (0, 2)

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            perfect_tree(0)


class TestListTree:
    def test_is_degenerate(self):
        root = list_tree(6)
        depths = tree_depth(root)
        assert depths == 6
        for node in root.iter_preorder():
            assert len(node.children) <= 1

    def test_labels_are_loop_indices(self):
        root = list_tree(4)
        assert [n.label for n in root.iter_preorder()] == [0, 1, 2, 3]

    def test_sizes_decrease_by_one(self):
        root = list_tree(5)
        assert [n.size for n in root.iter_preorder()] == [5, 4, 3, 2, 1]


class TestRandomTree:
    def test_deterministic_for_seed(self):
        a = random_tree(50, seed=3)
        b = random_tree(50, seed=3)
        assert [n.label for n in a.iter_preorder()] == [
            n.label for n in b.iter_preorder()
        ]

    def test_different_seeds_differ(self):
        a = random_tree(50, seed=1)
        b = random_tree(50, seed=2)
        assert [n.label for n in a.iter_preorder()] != [
            n.label for n in b.iter_preorder()
        ]

    def test_size_and_binary(self):
        root = random_tree(64, seed=9)
        assert root.size == 64
        for node in root.iter_preorder():
            assert len(node.children) <= 2


class TestPaperTrees:
    def test_outer_preorder_is_alphabetical(self):
        labels = [n.label for n in paper_outer_tree().iter_preorder()]
        assert labels == ["A", "B", "C", "D", "E", "F", "G"]

    def test_inner_preorder_is_numeric(self):
        labels = [n.label for n in paper_inner_tree().iter_preorder()]
        assert labels == [1, 2, 3, 4, 5, 6, 7]

    def test_shapes_are_perfect_depth_three(self):
        assert tree_depth(paper_outer_tree()) == 3
        assert paper_outer_tree().size == 7


class TestHelpers:
    def test_letter_labeler(self):
        assert letter_labeler(0) == "A"
        assert letter_labeler(25) == "Z"
        assert letter_labeler(26) == "AA"
        assert letter_labeler(27) == "AB"

    def test_relabel_preorder_defaults_to_numbers(self):
        root = paper_outer_tree()
        relabel_preorder(root)
        assert [n.label for n in root.iter_preorder()] == list(range(7))

    def test_relabel_preorder_custom(self):
        root = balanced_tree(3)
        relabel_preorder(root, ["x", "y", "z"])
        assert [n.label for n in root.iter_preorder()] == ["x", "y", "z"]

"""Unit tests for the dual-tree rule sets."""

import numpy as np
import pytest

from repro.dualtree import (
    KNearestNeighborRules,
    NearestNeighborRules,
    PointCorrelationRules,
    build_kdtree,
)
from repro.spaces import clustered_points


@pytest.fixture
def trees():
    q = build_kdtree(clustered_points(60, seed=1), leaf_size=4)
    r = build_kdtree(clustered_points(80, seed=2), leaf_size=4)
    return q, r


class TestPointCorrelationRules:
    def test_score_prunes_far_pairs(self, trees):
        q, r = trees
        rules = PointCorrelationRules(q, r, radius=1e-9)
        far_q = q.leaves()[0]
        far_r = max(
            r.leaves(), key=lambda leaf: far_q.bound.min_dist(leaf.bound)
        )
        if far_q.bound.min_dist(far_r.bound) > 0:
            assert rules.score(far_q, far_r) is True

    def test_score_keeps_overlapping_pairs(self, trees):
        q, r = trees
        rules = PointCorrelationRules(q, r, radius=10.0)
        assert rules.score(q.root, r.root) is False

    def test_base_case_counts_pairs(self, trees):
        q, r = trees
        rules = PointCorrelationRules(q, r, radius=100.0)
        leaf_q, leaf_r = q.leaves()[0], r.leaves()[0]
        rules.base_case(leaf_q, leaf_r)
        assert rules.count == leaf_q.count * leaf_r.count

    def test_self_pair_exclusion(self):
        pts = clustered_points(20, seed=3)
        tree_a = build_kdtree(pts, leaf_size=4)
        rules = PointCorrelationRules(tree_a, tree_a, radius=100.0,
                                      count_self_pairs=False)
        for leaf in tree_a.leaves():
            rules.base_case(leaf, leaf)
        # Diagonal pairs excluded.
        expected = sum(leaf.count * leaf.count - leaf.count for leaf in tree_a.leaves())
        assert rules.count == expected

    def test_negative_radius_rejected(self, trees):
        with pytest.raises(ValueError):
            PointCorrelationRules(*trees, radius=-1.0)


class TestNearestNeighborRules:
    def test_base_case_updates_best(self, trees):
        q, r = trees
        rules = NearestNeighborRules(q, r)
        leaf_q, leaf_r = q.leaves()[0], r.leaves()[0]
        rules.base_case(leaf_q, leaf_r)
        for query in leaf_q.point_ids:
            assert np.isfinite(rules.best_dist[query])
            assert rules.best_id[query] in leaf_r.point_ids

    def test_best_only_improves(self, trees):
        q, r = trees
        rules = NearestNeighborRules(q, r)
        leaf_q = q.leaves()[0]
        for leaf_r in r.leaves():
            before = rules.best_dist[leaf_q.point_ids].copy()
            rules.base_case(leaf_q, leaf_r)
            after = rules.best_dist[leaf_q.point_ids]
            assert (after <= before + 1e-12).all()

    def test_score_uses_worst_query_bound(self, trees):
        q, r = trees
        rules = NearestNeighborRules(q, r)
        leaf_q = q.leaves()[0]
        # With infinite bounds nothing is prunable.
        assert rules.score(leaf_q, r.root) is False

    def test_exclude_self(self):
        pts = clustered_points(30, seed=4)
        tree = build_kdtree(pts, leaf_size=4)
        rules = NearestNeighborRules(tree, tree, exclude_self=True)
        for leaf in tree.leaves():
            rules.base_case(leaf, leaf)
        assert (rules.best_id[np.arange(30)] != np.arange(30)).all()


class TestKnnRules:
    def test_candidates_sorted_and_bounded(self, trees):
        q, r = trees
        rules = KNearestNeighborRules(q, r, k=3)
        leaf_q = q.leaves()[0]
        for leaf_r in r.leaves():
            rules.base_case(leaf_q, leaf_r)
        for query in leaf_q.point_ids:
            candidates = rules.neighbors[query]
            assert len(candidates) == 3
            distances = [d for d, _ in candidates]
            assert distances == sorted(distances)
            assert rules.kth_dist[query] == pytest.approx(distances[-1])

    def test_neighbor_arrays(self, trees):
        q, r = trees
        rules = KNearestNeighborRules(q, r, k=2)
        ids = rules.neighbor_ids()
        dists = rules.neighbor_dists()
        assert ids.shape == (q.num_points, 2)
        assert (ids == -1).all()
        assert np.isinf(dists).all()

    def test_k_validation(self, trees):
        with pytest.raises(ValueError):
            KNearestNeighborRules(*trees, k=0)

"""Unit tests for the brute-force oracles."""

import numpy as np
import pytest

from repro.dualtree import brute_knn, brute_nearest_neighbor, brute_point_correlation


@pytest.fixture
def tiny():
    queries = np.array([[0.0, 0.0], [1.0, 0.0]])
    references = np.array([[0.0, 0.1], [1.0, 0.2], [5.0, 5.0]])
    return queries, references


class TestPointCorrelation:
    def test_counts_ordered_pairs(self, tiny):
        queries, references = tiny
        assert brute_point_correlation(queries, references, radius=0.25) == 2
        assert brute_point_correlation(queries, references, radius=100.0) == 6

    def test_self_pair_exclusion(self):
        pts = np.zeros((4, 2))
        assert brute_point_correlation(pts, pts, radius=0.1) == 16
        assert (
            brute_point_correlation(pts, pts, radius=0.1, count_self_pairs=False)
            == 12
        )


class TestNearestNeighbor:
    def test_ids_and_distances(self, tiny):
        queries, references = tiny
        ids, dists = brute_nearest_neighbor(queries, references)
        assert ids.tolist() == [0, 1]
        assert dists == pytest.approx([0.1, 0.2])

    def test_exclude_self(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        ids, _dists = brute_nearest_neighbor(pts, pts, exclude_self=True)
        assert (ids != np.arange(3)).all()


class TestKnn:
    def test_ordering_nearest_first(self, tiny):
        queries, references = tiny
        ids, dists = brute_knn(queries, references, k=3)
        assert ids.shape == (2, 3)
        assert (np.diff(dists, axis=1) >= 0).all()
        assert ids[0, 0] == 0 and ids[1, 0] == 1

    def test_tie_break_by_reference_id(self):
        queries = np.array([[0.0, 0.0]])
        references = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0]])
        ids, dists = brute_knn(queries, references, k=3)
        assert dists[0].tolist() == [1.0, 1.0, 1.0]
        assert ids[0].tolist() == [0, 1, 2]

"""Truncation analysis: regular or irregular? (Section 5, step two.)

"Next, the tool analyzes the nested recursions to decide whether
irregular truncation is performed (in other words, it determines
whether any portion of the inner recursion's truncation condition is
dependent on the outer recursion)."

The inner guard is a boolean expression; we split its top-level ``or``
into disjuncts and classify each by the parameters it mentions:

* mentions only the inner index → part of ``truncateInner1?``;
* mentions the outer index → part of ``truncateInner2?`` (irregular).

The split matters because the transformed code places the two parts
differently: ``truncateInner1?`` bounds the *swapped outer* recursion
(Figure 3, line 2), while ``truncateInner2?`` becomes flag-managed
state (Figure 6b).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from repro.errors import TransformError
from repro.transform.recognizer import RecursionTemplate


@dataclass
class TruncationAnalysis:
    """The inner guard split into its regular and irregular parts."""

    #: disjuncts depending only on the inner index (None = absent)
    inner1: Optional[ast.expr]
    #: disjuncts depending on the outer index (None = regular truncation)
    inner2: Optional[ast.expr]

    @property
    def is_irregular(self) -> bool:
        """True when the spec needs the Section 4 machinery."""
        return self.inner2 is not None

    def inner1_source(self) -> str:
        """Source of the regular part (``False`` when absent)."""
        return ast.unparse(self.inner1) if self.inner1 is not None else "False"

    def inner2_source(self) -> str:
        """Source of the irregular part (``False`` when absent)."""
        return ast.unparse(self.inner2) if self.inner2 is not None else "False"


def _top_level_disjuncts(expr: ast.expr) -> list[ast.expr]:
    """Split ``a or b or c`` into [a, b, c]; other shapes are one unit."""
    if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.Or):
        parts: list[ast.expr] = []
        for value in expr.values:
            parts.extend(_top_level_disjuncts(value))
        return parts
    return [expr]


def guard_aliases(expr: ast.expr, roots: tuple[str, ...]) -> dict[str, str]:
    """Resolve simple local aliases of the index parameters in a guard.

    A walrus assignment such as ``(oo := o)`` introduces a local alias
    of an index parameter that remains live in *later* disjuncts of the
    same guard, where a purely syntactic name check would miss it —
    ``i is None or ((oo := o) is i) or oo.deep`` mentions the outer
    index in its third disjunct only through ``oo``.  This resolves
    name-to-name walrus chains to their root parameter (transitively:
    ``(a := o)``, ``(b := a)`` both map to ``o``) and returns the
    ``alias -> parameter`` map.  Only plain ``Name := Name`` bindings
    are aliases; anything fancier keeps its own identity.
    """
    direct: dict[str, str] = {}
    for node in ast.walk(expr):
        if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            if isinstance(node.value, ast.Name):
                direct[node.target.id] = node.value.id
            else:
                # Rebinding to a non-name expression kills any alias.
                direct.pop(node.target.id, None)
    resolved: dict[str, str] = {}
    for alias in direct:
        seen = {alias}
        target = direct[alias]
        while target in direct and target not in seen:
            seen.add(target)
            target = direct[target]
        if target in roots:
            resolved[alias] = target
    return resolved


def _mentions(
    expr: ast.expr, name: str, aliases: Optional[dict[str, str]] = None
) -> bool:
    """True when ``expr`` mentions ``name`` directly or through an alias."""
    aliases = aliases or {}
    return any(
        isinstance(node, ast.Name)
        and (node.id == name or aliases.get(node.id) == name)
        for node in ast.walk(expr)
    )


def _join_or(parts: list[ast.expr]) -> Optional[ast.expr]:
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return ast.BoolOp(op=ast.Or(), values=parts)


def analyze_truncation(template: RecursionTemplate) -> TruncationAnalysis:
    """Classify the inner guard's disjuncts.

    A disjunct mentioning *neither* index is conservatively treated as
    part of ``truncateInner1?`` (it is invariant across the iteration
    space, e.g. a global toggle).  A disjunct mentioning *only* the
    outer index is rejected: the template has no such condition, and
    honouring one would require restructuring the outer recursion.

    Index-parameter *aliases* introduced by walrus assignments are
    resolved before classifying (:func:`guard_aliases`), so a disjunct
    reading the outer index through ``(oo := o)`` is still recognized
    as irregular rather than silently misfiled into the regular part.
    """
    aliases = guard_aliases(
        template.inner_guard, (template.o_param, template.i_param)
    )
    inner1_parts: list[ast.expr] = []
    inner2_parts: list[ast.expr] = []
    for part in _top_level_disjuncts(template.inner_guard):
        uses_outer = _mentions(part, template.o_param, aliases)
        uses_inner = _mentions(part, template.i_param, aliases)
        if uses_outer and uses_inner:
            inner2_parts.append(part)
        elif uses_outer:
            raise TransformError(
                f"inner truncation disjunct {ast.unparse(part)!r} depends "
                f"only on the outer index {template.o_param!r}; the Figure "
                f"2 template bounds the outer recursion in "
                f"{template.outer_name}, not here",
                code="TW003",
            )
        else:
            inner1_parts.append(part)
    _check_alias_locality(inner1_parts, inner2_parts, aliases)
    return TruncationAnalysis(
        inner1=_join_or(inner1_parts), inner2=_join_or(inner2_parts)
    )


def _check_alias_locality(
    inner1_parts: list[ast.expr],
    inner2_parts: list[ast.expr],
    aliases: dict[str, str],
) -> None:
    """Reject aliases that cross the inner1/inner2 split.

    The two guard parts are emitted into *different* generated
    functions (Figure 3 line 2 vs. Figure 6b), so a walrus alias
    defined in one part and read in the other would be an unbound name
    in the generated code.  Within one part the original evaluation
    order is preserved, so same-bucket uses are fine.
    """
    if not aliases:
        return
    for bucket in (inner1_parts, inner2_parts):
        defined = {
            node.target.id
            for part in bucket
            for node in ast.walk(part)
            if isinstance(node, ast.NamedExpr)
            and isinstance(node.target, ast.Name)
        }
        for part in bucket:
            for node in ast.walk(part):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in aliases
                    and node.id not in defined
                ):
                    raise TransformError(
                        f"truncation disjunct {ast.unparse(part)!r} reads "
                        f"the alias {node.id!r} (= {aliases[node.id]!r}), "
                        f"but the walrus defining it lands in the other "
                        f"part of the regular/irregular split; the "
                        f"generated code would leave it unbound — inline "
                        f"the index parameter instead"
                    )

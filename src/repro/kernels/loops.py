"""Loop nests as nested recursive iteration spaces (Sections 2.1 & 7.2).

Two bridges between ``for`` loops and the recursion template:

* :func:`loop_nest_spec` — the Section 2.1 degeneration: list-shaped
  trees make the template *exactly* a doubly-nested loop ("each of the
  'trees' being linked lists where each node ... represents one value
  of the corresponding loop index").
* :func:`divide_and_conquer_spec` — the Section 7.2 construction: "the
  way in which languages like Cilk handle for loops ... the loops are
  translated into a divide-and-conquer recursion".  Each loop becomes a
  balanced recursion over index *ranges*; the body runs at unit-range
  pairs.  "Applying recursion twisting to [the] resulting nested
  recursion automatically yields something similar to the
  cache-oblivious implementation" — the examples and benches
  demonstrate exactly that on matrix-vector multiplication.
"""

from __future__ import annotations

from typing import Callable

from repro.core.spec import NestedRecursionSpec
from repro.spaces.node import IndexNode, finalize_tree
from repro.spaces.trees import list_tree

LoopBody = Callable[[int, int], None]


def loop_nest_spec(n: int, m: int, body: LoopBody, name: str = "loop-nest") -> NestedRecursionSpec:
    """``for i in range(n): for j in range(m): body(i, j)`` as a spec.

    Built on list trees, so the original schedule is the loop nest's
    schedule verbatim (row ``i`` ascending, then column ``j``).
    Twisting such a spec never helps — a list tree's child subtree
    only shrinks by one per level — which is itself instructive: the
    benefit of twisting comes from the *logarithmic* size decay of
    balanced recursion, not from recursion per se.
    """
    outer = list_tree(n)
    inner = list_tree(m)

    # list_tree labels nodes 0..n-1, which *are* the loop indices.
    def work(o, i):
        body(o.label, i.label)

    return NestedRecursionSpec(outer, inner, work=work, name=name)


class RangeNode(IndexNode):
    """A half-open index range ``[lo, hi)`` in a divide-and-conquer tree.

    Unit ranges (``hi == lo + 1``) are the leaves where the loop body
    runs; internal ranges exist purely to schedule, mirroring Yi et
    al.'s transformation where "the recursive 'spine' of the code is
    simply used to schedule the underlying affine iteration space"
    (Section 8).
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int) -> None:
        super().__init__()
        self.lo = lo
        self.hi = hi

    @property
    def is_unit(self) -> bool:
        """True for a single loop index."""
        return self.hi == self.lo + 1

    @property
    def label(self) -> tuple[int, int]:
        """Stable label for recorders and rendering."""
        return (self.lo, self.hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangeNode[{self.lo}, {self.hi})"


def range_tree(lo: int, hi: int) -> RangeNode:
    """Balanced binary recursion tree over ``[lo, hi)``.

    Ranges split at the midpoint until unit size — the Cilk-style
    divide-and-conquer shape of Section 7.2 (without a granularity
    cutoff, so twisting sees the full size hierarchy).
    """
    if hi <= lo:
        raise ValueError(f"empty range [{lo}, {hi})")

    def build(a: int, b: int) -> RangeNode:
        node = RangeNode(a, b)
        if b - a > 1:
            mid = (a + b) // 2
            node.children = (build(a, mid), build(mid, b))
        return node

    root = build(lo, hi)
    finalize_tree(root)
    return root


def divide_and_conquer_spec(
    n: int, m: int, body: LoopBody, name: str = "dnc-loops"
) -> NestedRecursionSpec:
    """The Section 7.2 divide-and-conquer form of a doubly-nested loop.

    The loop body executes exactly once per ``(i, j)`` pair, at
    unit-range x unit-range work points; all other visited pairs are
    scheduling spine.  Under ``run_twisted`` the resulting schedule is
    the familiar recursive blocking of cache-oblivious algorithms.
    """
    outer = range_tree(0, n)
    inner = range_tree(0, m)

    def work(o: RangeNode, i: RangeNode) -> None:
        if o.is_unit and i.is_unit:
            body(o.lo, i.lo)

    return NestedRecursionSpec(outer, inner, work=work, name=name)


def unit_work_points(points) -> list[tuple[int, int]]:
    """Filter a recorded schedule down to the executed loop-body pairs.

    ``points`` are ``(outer_label, inner_label)`` entries from a
    :class:`~repro.core.instruments.WorkRecorder` over range trees;
    returns the ``(i, j)`` loop indices of unit-range pairs in
    execution order.
    """
    body_points = []
    for outer_label, inner_label in points:
        (o_lo, o_hi), (i_lo, i_hi) = outer_label, inner_label
        if o_hi == o_lo + 1 and i_hi == i_lo + 1:
            body_points.append((o_lo, i_lo))
    return body_points

"""Reuse-profile comparison across schedules.

Convenience drivers over :class:`~repro.memory.reuse.ReuseDistanceAnalyzer`
for the question every locality transformation paper answers with a CDF
plot (the paper's Figure 5): *how did the distribution of reuse
distances move?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.instruments import ReuseDistanceProbe
from repro.core.schedules import Schedule
from repro.core.spec import NestedRecursionSpec
from repro.memory.reuse import ReuseDistanceAnalyzer


def reuse_profile(
    spec_factory: Callable[[], NestedRecursionSpec], schedule: Schedule
) -> ReuseDistanceAnalyzer:
    """Run one schedule and return its reuse-distance analyzer."""
    probe = ReuseDistanceProbe()
    schedule.run(spec_factory(), instrument=probe)
    return probe.analyzer


def compare_profiles(
    spec_factory: Callable[[], NestedRecursionSpec],
    schedules: Sequence[Schedule],
) -> dict[str, ReuseDistanceAnalyzer]:
    """Reuse profiles of several schedules on fresh spec instances."""
    return {
        schedule.name: reuse_profile(spec_factory, schedule)
        for schedule in schedules
    }


@dataclass
class DominanceReport:
    """Where one profile's CDF sits above another's."""

    #: sampled distances
    distances: list[int]
    #: CDF values of the first profile at each sample
    first: list[float]
    #: CDF values of the second profile at each sample
    second: list[float]

    @property
    def dominance_fraction(self) -> float:
        """Fraction of samples where the first CDF is >= the second.

        1.0 means uniformly better (or equal) locality at every sampled
        granularity.  Note the paper's own caveat applies: twisting
        "generally lowers reuse distances, but not uniformly" — it
        trades a few of the O(1) outer-node reuses for large wins
        everywhere else, so expect high-but-not-perfect dominance at
        the smallest distances and strict dominance beyond.
        """
        if not self.distances:
            return 0.0
        wins = sum(1 for a, b in zip(self.first, self.second) if a >= b)
        return wins / len(self.distances)


def dominance(
    first: ReuseDistanceAnalyzer,
    second: ReuseDistanceAnalyzer,
    max_distance: int,
) -> DominanceReport:
    """Compare two CDFs at power-of-two distances up to ``max_distance``.

    Power-of-two sampling matches how cache capacities grow, so
    ``dominance_fraction == 1.0`` reads as "better for every cache
    size" (up to the sampling).
    """
    distances = []
    r = 1
    while r <= max_distance:
        distances.append(r)
        r *= 2
    return DominanceReport(
        distances=distances,
        first=[first.fraction_at_most(r - 1) for r in distances],
        second=[second.fraction_at_most(r - 1) for r in distances],
    )


def working_set_fraction(
    analyzer: ReuseDistanceAnalyzer, cache_lines: int
) -> float:
    """Predicted hit rate under a fully associative cache of given size.

    The stack-distance theorem: an access hits iff its reuse distance
    is below the capacity.  Handy for quick what-if questions without
    re-simulating a hierarchy.
    """
    if cache_lines <= 0:
        return 0.0
    return analyzer.fraction_at_most(cache_lines - 1)

"""Integration tests: dual-tree algorithms across all schedules.

The strongest cross-cutting guarantee in the reproduction: for every
dual-tree benchmark, every schedule — original, interchanged, twisted,
twisted with counters, twisted with cutoff — computes the brute-force
answer, *and* makes identical pruning decisions (same per-query
base-case sequences), which is the dynamic counterpart of the paper's
Section 3.3 soundness argument.
"""

import numpy as np
import pytest

from repro.core import (
    FootprintRecorder,
    Instrument,
    is_outer_parallel,
    run_interchanged,
    run_original,
    run_twisted,
)
from repro.dualtree import (
    KNearestNeighbors,
    NearestNeighbor,
    PointCorrelation,
    VPNearestNeighbors,
    brute_knn,
    brute_nearest_neighbor,
    brute_point_correlation,
    dual_tree_footprint,
)
from repro.spaces import clustered_points

SCHEDULES = [
    ("original", run_original, {}),
    ("interchange", run_interchanged, {}),
    ("interchange+counters", run_interchanged, {"use_counters": True}),
    ("twist", run_twisted, {}),
    ("twist+counters", run_twisted, {"use_counters": True}),
    ("twist+cutoff", run_twisted, {"cutoff": 16}),
]


class BaseCaseSequenceRecorder(Instrument):
    """Records, per query leaf, the sequence of reference leaves."""

    def __init__(self):
        self.sequences = {}

    def work(self, o, i):
        if not i.children:
            self.sequences.setdefault(o.number, []).append(i.number)


@pytest.fixture(scope="module")
def cloud():
    return clustered_points(400, clusters=10, spread=0.03, seed=33)


class TestPointCorrelation:
    def test_all_schedules_match_brute_force(self, cloud):
        expected = brute_point_correlation(cloud, cloud, 0.06)
        pc = PointCorrelation(cloud, radius=0.06, leaf_size=6)
        for name, run, kwargs in SCHEDULES:
            run(pc.make_spec(), **kwargs)
            assert pc.result == expected, name


class TestNearestNeighbor:
    def test_all_schedules_match_brute_force(self, cloud):
        queries = cloud
        references = clustered_points(300, clusters=10, spread=0.03, seed=34)
        expected_ids, expected_dists = brute_nearest_neighbor(queries, references)
        nn = NearestNeighbor(queries, references, leaf_size=6)
        for name, run, kwargs in SCHEDULES:
            run(nn.make_spec(), **kwargs)
            ids, dists = nn.result
            assert np.array_equal(ids, expected_ids), name
            assert np.allclose(dists, expected_dists), name


class TestKnnFamilies:
    @pytest.mark.parametrize(
        "cls,k", [(KNearestNeighbors, 5), (VPNearestNeighbors, 10)]
    )
    def test_all_schedules_match_brute_force(self, cls, k, cloud):
        queries = cloud[:250]
        references = cloud[150:]
        expected_ids, expected_dists = brute_knn(queries, references, k)
        algorithm = cls(queries, references, k=k, leaf_size=6)
        for name, run, kwargs in SCHEDULES:
            run(algorithm.make_spec(), **kwargs)
            ids, dists = algorithm.result
            assert np.allclose(dists, expected_dists), name
            assert np.array_equal(ids, expected_ids), name


class TestPruningDecisionEquivalence:
    def test_per_query_base_case_sequences_identical(self, cloud):
        # The mechanism behind soundness with stateful Score pruning:
        # each query leaf sees the same reference leaves in the same
        # order under every schedule, so the mutable bounds evolve
        # identically and pruning is schedule-invariant.
        nn = NearestNeighbor(cloud, cloud[::-1].copy(), leaf_size=6)
        reference = BaseCaseSequenceRecorder()
        run_original(nn.make_spec(), instrument=reference)
        for name, run, kwargs in SCHEDULES[1:]:
            recorder = BaseCaseSequenceRecorder()
            run(nn.make_spec(), instrument=recorder, **kwargs)
            assert recorder.sequences == reference.sequences, name


class TestSoundnessCriterion:
    def test_dual_tree_outer_recursion_is_parallel(self, cloud):
        # The paper's Section 6.1 classification, checked dynamically.
        knn = KNearestNeighbors(cloud[:150], cloud[150:300], k=3, leaf_size=6)
        recorder = FootprintRecorder(dual_tree_footprint(knn.rules))
        run_original(knn.make_spec(), instrument=recorder)
        assert is_outer_parallel(recorder)

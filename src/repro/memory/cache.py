"""A set-associative LRU cache simulator.

Operates on *line addresses* (integers from
:class:`repro.memory.layout.AddressMap`): one :meth:`access` per touched
line, returning hit or miss.  Kept deliberately simple — LRU
replacement, no write policies, no coherence — because the quantity the
paper's transformation changes is purely the temporal access order, and
hit/miss under LRU is what reuse distance predicts (footnote 2: "roughly,
reuse distances smaller than the cache size are likely to be cache hits
... modulo associativity effects"; the set-associative simulator models
exactly those associativity effects).

Per-set recency is an ``OrderedDict`` (move-to-end on hit, popitem on
eviction), giving ``O(1)`` amortized accesses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import MemorySimError

Address = int


@dataclass
class CacheStats:
    """Hit/miss counts for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        """Local miss rate: misses / accesses at this cache (0.0 if idle).

        This is the metric of Figure 8(b) — e.g. the L3 miss rate is the
        fraction of L3 *accesses* (i.e. L2 misses) that miss in L3.
        """
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        """1 - miss rate (0.0 if idle)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class SetAssociativeCache:
    """An ``num_sets x ways`` LRU cache over line addresses.

    ``capacity_lines = num_sets * ways``.  A fully associative cache is
    ``num_sets=1``; a direct-mapped cache is ``ways=1``.
    """

    def __init__(self, num_sets: int, ways: int, name: str = "cache") -> None:
        if num_sets < 1 or ways < 1:
            raise MemorySimError(
                f"{name}: num_sets and ways must be >= 1 "
                f"(got {num_sets} and {ways})"
            )
        self.num_sets = num_sets
        self.ways = ways
        self.name = name
        self.stats = CacheStats()
        self._sets: list[OrderedDict[Address, None]] = [
            OrderedDict() for _ in range(num_sets)
        ]

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.num_sets * self.ways

    def access(self, line: Address) -> bool:
        """Touch one line; return ``True`` on hit, ``False`` on miss.

        A miss inserts the line (allocate-on-miss), evicting the LRU
        line of the set if the set is full.
        """
        cache_set = self._sets[line % self.num_sets]
        self.stats.accesses += 1
        if line in cache_set:
            cache_set.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.ways:
            cache_set.popitem(last=False)
            self.stats.evictions += 1
        cache_set[line] = None
        return False

    def contains(self, line: Address) -> bool:
        """Non-mutating lookup (does not update recency or stats)."""
        return line in self._sets[line % self.num_sets]

    def flush(self) -> None:
        """Empty the cache, keeping accumulated statistics."""
        for cache_set in self._sets:
            cache_set.clear()

    def reset_stats(self) -> None:
        """Zero the statistics, keeping contents."""
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache({self.name!r}, sets={self.num_sets}, "
            f"ways={self.ways}, lines={self.capacity_lines})"
        )


def fully_associative(capacity_lines: int, name: str = "cache") -> SetAssociativeCache:
    """A fully associative LRU cache holding ``capacity_lines`` lines.

    Under full associativity, "hit iff reuse distance < capacity" holds
    exactly; the unit tests use this to cross-check the cache simulator
    against the reuse-distance analyzer.
    """
    return SetAssociativeCache(num_sets=1, ways=capacity_lines, name=name)

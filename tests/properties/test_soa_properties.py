"""Property-based guarantees for the SoA layer.

Two contracts, driven over arbitrary tree shapes:

1. **Round trip** — ``to_linked(to_soa(root, order))`` reconstructs an
   equivalent linked tree for every linearization: same children
   order, sizes, pre-order numbers, and payloads, on random, wide,
   and degenerate (list) shapes alike.
2. **Event parity** — the SoA executors reproduce the recursive
   executors' instrument event stream — every op, access, and work
   point, in order — for arbitrary spaces, irregular truncation
   patterns, schedule options, and storage orders.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    NestedRecursionSpec,
    run_interchanged,
    run_interchanged_soa,
    run_original,
    run_original_soa,
    run_twisted,
    run_twisted_soa,
)
from repro.core.instruments import Instrument
from repro.spaces import (
    TreeNode,
    finalize_tree,
    list_tree,
    random_tree,
    to_linked,
    to_soa,
)
from repro.spaces.soa import LINEARIZATIONS

orders = st.sampled_from(LINEARIZATIONS)

random_trees = st.builds(
    random_tree,
    st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=10_000),
)


def _wide_tree(fanout):
    root = TreeNode("root", data=-1)
    root.children = tuple(
        TreeNode(str(k), data=k) for k in range(fanout)
    )
    return finalize_tree(root)


#: Random shapes plus the degenerate extremes a random builder rarely
#: produces: pure chains (depth = n) and pure fans (fanout = n).
trees = st.one_of(
    random_trees,
    st.builds(list_tree, st.integers(min_value=1, max_value=40)),
    st.builds(_wide_tree, st.integers(min_value=1, max_value=40)),
)


def blocked_pairs_strategy(max_nodes=24):
    """Random irregular truncation patterns as (o_label, i_label) sets."""
    pair = st.tuples(
        st.integers(min_value=0, max_value=max_nodes - 1),
        st.integers(min_value=0, max_value=max_nodes - 1),
    )
    return st.frozensets(pair, max_size=12)


class EventRecorder(Instrument):
    """Records every instrument event, in order."""

    def __init__(self):
        self.events = []

    def op(self, kind):
        self.events.append(("op", kind))

    def access(self, tree, node):
        self.events.append(("access", tree, node.number))

    def work(self, o, i):
        self.events.append(("work", o.label, i.label))


def make_spec(outer, inner, blocked):
    """A spec over the given trees, irregular when ``blocked`` is set."""
    if blocked:
        return NestedRecursionSpec(
            outer,
            inner,
            truncate_inner2=lambda o, i: (o.label, i.label) in blocked,
        )
    return NestedRecursionSpec(outer, inner)


def events_of(run, spec, **kwargs):
    recorder = EventRecorder()
    run(spec, instrument=recorder, **kwargs)
    return recorder.events


@settings(max_examples=60, deadline=None)
@given(trees, orders)
def test_round_trip_preserves_structure_and_payloads(root, order):
    rebuilt = to_linked(to_soa(root, order))
    originals = list(root.iter_preorder())
    copies = list(rebuilt.iter_preorder())
    assert len(copies) == len(originals)
    for original, copy in zip(originals, copies):
        assert copy.label == original.label
        assert copy.data == original.data
        assert copy.size == original.size
        assert copy.number == original.number
        assert tuple(c.number for c in copy.children) == tuple(
            c.number for c in original.children
        )


@settings(max_examples=40, deadline=None)
@given(random_trees, random_trees, blocked_pairs_strategy(), orders)
def test_original_soa_event_parity(outer, inner, blocked, order):
    spec = make_spec(outer, inner, blocked)
    assert events_of(run_original_soa, spec, order=order) == events_of(
        run_original, spec
    )


@settings(max_examples=30, deadline=None)
@given(
    random_trees,
    random_trees,
    blocked_pairs_strategy(),
    st.booleans(),
    st.booleans(),
)
def test_interchanged_soa_event_parity(
    outer, inner, blocked, use_counters, subtree_truncation
):
    spec = make_spec(outer, inner, blocked)
    kwargs = {
        "use_counters": use_counters,
        "subtree_truncation": subtree_truncation,
    }
    assert events_of(run_interchanged_soa, spec, **kwargs) == events_of(
        run_interchanged, spec, **kwargs
    )


@settings(max_examples=30, deadline=None)
@given(
    random_trees,
    random_trees,
    blocked_pairs_strategy(),
    st.one_of(st.none(), st.integers(min_value=0, max_value=16)),
    st.booleans(),
    st.booleans(),
    orders,
)
def test_twisted_soa_event_parity(
    outer, inner, blocked, cutoff, use_counters, subtree_truncation, order
):
    spec = make_spec(outer, inner, blocked)
    kwargs = {
        "cutoff": cutoff,
        "use_counters": use_counters,
        "subtree_truncation": subtree_truncation,
    }
    assert events_of(run_twisted_soa, spec, order=order, **kwargs) == (
        events_of(run_twisted, spec, **kwargs)
    )

"""Typed kernel IR: what a spec kernel *does*, in lowerable terms.

The TW1xx conformance analyzer asks "does the batched kernel do the
same thing as the scalar one?".  The passes in
:mod:`repro.transform.lint.lower` ask a different question: "could a
fused/compiled backend run this kernel at all, and can two outer tasks
run it concurrently?".  Both need the same raw material — a summary of
the kernel's effects — but in *typed* terms: which arrays are touched,
through which index expressions (affine in the traversal ranks, or a
gather through a payload column), which state fields are reduced into,
where Python objects leak into the hot path.

This module extracts that summary from the live function objects of a
:class:`~repro.core.spec.NestedRecursionSpec` (``work``,
``work_batch``, ``work_batch_soa``, and the truncation guards).  It is
a *fact extractor*: it never emits diagnostics itself — the passes in
``lower.py`` interpret the facts.  Extraction is abstract
interpretation over the kernel's AST with a small value-kind lattice:

====================  =============================================
``("rank", a)``       a scalar position in axis ``a``'s rank space
``("rankvec", a, c, k)``  a vector of positions, affine ``c*r + k``
``("node", a)``       one tree node of axis ``a``
``("nodeseq", a)``    a sequence of axis-``a`` nodes (a batch)
``("view", a)``       the axis-``a`` :class:`~repro.spaces.soa.SoATree`
``("column", a, f)``  a full payload column ``f`` of axis ``a``
``("gather", a, f)``  per-node values of field ``f`` along axis ``a``
``("array", label)``  a typed ndarray captured from the environment
``("state", key, label)``  a live state object (e.g. an accumulator)
``("pyobject", label)``    an untyped Python container/object
``("mask",)``         a data-dependent boolean/index vector
``("nonaffine", a, why)``  rank-derived but not affine in the rank
``("scalar",)`` / ``("data",)`` / ``("unknown",)``
====================  =============================================

Axes are ``"outer"``/``"inner"`` — the two dimensions of the Figure 2
iteration space.  Affine tracking is deliberately 1-D per axis: the
paper's transformations never mix ranks inside one index dimension, so
``c*r + k`` per axis is exactly the precision the disjointness proof
in §7.3 needs.
"""

from __future__ import annotations

import ast
import inspect
import numbers
import textwrap
import types
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = [
    "AllocSite",
    "ArrayAccess",
    "HelperCall",
    "IndexDim",
    "KernelIR",
    "NodeFieldWrite",
    "ObjectUse",
    "StateAccess",
    "extract_kernel_ir",
    "ROLE_PARAM_KINDS",
]

# --------------------------------------------------------------------
# IR records
# --------------------------------------------------------------------

#: index-dimension classifications
AFFINE = "affine"
GATHER = "gather"
CONST = "const"
SLICE = "slice"
MASK = "mask"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class IndexDim:
    """One dimension of a subscript, classified for the footprint.

    ``affine`` dims carry the rank axis plus coefficient/offset of the
    ``coeff * rank + const`` form (``const=None`` = statically unknown
    but rank-independent).  ``gather`` dims index through the per-node
    values of payload field ``column`` along ``axis`` — disjointness
    then hinges on that column being injective, which the independence
    pass checks on the live tree.
    """

    kind: str
    axis: Optional[str] = None
    column: Optional[str] = None
    coeff: Optional[int] = None
    const: Optional[int] = None
    detail: str = ""

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``affine(1*outer_rank+0)``."""
        if self.kind == AFFINE:
            return f"affine({self.coeff}*{self.axis}_rank+{self.const})"
        if self.kind == GATHER:
            return f"gather({self.axis}.{self.column})"
        if self.kind == UNKNOWN and self.detail:
            return f"unknown({self.detail})"
        return self.kind


@dataclass(frozen=True)
class ArrayAccess:
    """A read or write of a typed array (or SoA payload column)."""

    array: str
    dims: tuple[IndexDim, ...]
    is_write: bool
    #: write folded in via a commutative augmented assignment
    reduction: bool = False
    line: int = 0

    def describe(self) -> str:
        """One-line summary: ``array[dim, ...]`` plus the access kind."""
        op = "+=" if self.reduction else ("=" if self.is_write else "read")
        dims = ", ".join(d.describe() for d in self.dims)
        return f"{self.array}[{dims}] {op}"


@dataclass(frozen=True)
class StateAccess:
    """A read or write of a scalar field on a live state object."""

    label: str
    is_write: bool
    reduction: bool = False
    #: the live field value was numeric (or absent: ``False``)
    typed: bool = True
    line: int = 0


@dataclass(frozen=True)
class NodeFieldWrite:
    """A write to an attribute of a traversal node."""

    axis: str
    attr: str
    line: int = 0


@dataclass(frozen=True)
class AllocSite:
    """An allocation in the kernel body (``kind``: list/dict/set/
    comprehension/ndarray)."""

    kind: str
    in_loop: bool
    line: int = 0


@dataclass(frozen=True)
class ObjectUse:
    """A Python-object operation a compiled loop could not express."""

    what: str
    line: int = 0


@dataclass(frozen=True)
class HelperCall:
    """A call whose effects could not be summarized."""

    name: str
    line: int = 0


@dataclass
class KernelIR:
    """The extracted effect summary of one kernel."""

    role: str
    name: str = "<kernel>"
    #: False when the source could not be fetched/parsed at all
    analyzable: bool = True
    array_accesses: list[ArrayAccess] = field(default_factory=list)
    state_accesses: list[StateAccess] = field(default_factory=list)
    node_writes: list[NodeFieldWrite] = field(default_factory=list)
    #: ``(axis, attr)`` node fields read as typed gathers — the
    #: lowerability pass validates their typedness on the live tree
    attr_reads: set[tuple[str, str]] = field(default_factory=set)
    allocations: list[AllocSite] = field(default_factory=list)
    object_uses: list[ObjectUse] = field(default_factory=list)
    unknown_helpers: list[HelperCall] = field(default_factory=list)
    #: ``(description, line)`` of values that stayed untyped
    untyped: list[tuple[str, int]] = field(default_factory=list)
    #: lines where a data-dependent extent (mask index) appeared
    dynamic_shapes: list[tuple[str, int]] = field(default_factory=list)

    def writes(self) -> list[ArrayAccess]:
        """The array accesses that mutate their target."""
        return [a for a in self.array_accesses if a.is_write]

    def reads(self) -> list[ArrayAccess]:
        """The array accesses that only observe their target."""
        return [a for a in self.array_accesses if not a.is_write]

    def state_writes(self) -> list[StateAccess]:
        """The state-field accesses that mutate their field."""
        return [s for s in self.state_accesses if s.is_write]

    def to_json(self) -> dict:
        """Compact JSON summary (embedded in the lowerability report)."""
        return {
            "role": self.role,
            "name": self.name,
            "analyzable": self.analyzable,
            "array_accesses": [a.describe() for a in self.array_accesses],
            "state_writes": sorted(
                {f"{s.label} {'+=' if s.reduction else '='}" for s in self.state_writes()}
            ),
            "node_writes": sorted({f"{w.axis}.{w.attr}" for w in self.node_writes}),
            "attr_reads": sorted(f"{a}.{f}" for a, f in self.attr_reads),
            "allocations": [f"{a.kind}@{a.line}" for a in self.allocations],
            "object_uses": [f"{o.what}@{o.line}" for o in self.object_uses],
            "unknown_helpers": sorted({h.name for h in self.unknown_helpers}),
            "untyped": [f"{d}@{line}" for d, line in self.untyped],
            "dynamic_shapes": [f"{d}@{line}" for d, line in self.dynamic_shapes],
        }


# --------------------------------------------------------------------
# Role signatures
# --------------------------------------------------------------------

#: kernel role -> kinds its positional parameters are bound to
ROLE_PARAM_KINDS: dict[str, tuple[tuple, ...]] = {
    "work": (("node", "outer"), ("node", "inner")),
    "work_batch": (("nodeseq", "outer"), ("nodeseq", "inner")),
    "work_batch_soa": (
        ("view", "outer"),
        ("view", "inner"),
        ("rankvec", "outer", 1, 0),
        ("rankvec", "inner", 1, 0),
    ),
    "truncate_outer": (("node", "outer"),),
    "truncate_inner1": (("node", "inner"),),
    "truncate_inner2": (("node", "outer"), ("node", "inner")),
    "truncate_inner2_batch": (("node", "outer"),),
}

#: builtins that stay inside the typed world
_PURE_BUILTINS = frozenset(
    {"len", "int", "float", "bool", "abs", "min", "max", "range", "sum", "round"}
)

#: container constructors — an allocation plus an untyped result
_CONTAINER_BUILTINS = frozenset({"list", "dict", "set", "tuple"})

#: numpy callables that stage/convert without changing index meaning
_NP_STAGING = frozenset(
    {"fromiter", "asarray", "array", "ascontiguousarray", "asanyarray"}
)

#: numpy callables that allocate a fresh array
_NP_ALLOC = frozenset({"zeros", "empty", "ones", "full", "zeros_like", "empty_like"})

#: numpy callables producing data-dependent index sets
_NP_DYNSHAPE = frozenset({"nonzero", "flatnonzero", "where", "argwhere", "unique"})

#: ndarray methods that read without mutating
_PURE_VALUE_METHODS = frozenset(
    {
        "sum",
        "dot",
        "mean",
        "min",
        "max",
        "astype",
        "copy",
        "item",
        "any",
        "all",
        "reshape",
        "ravel",
        "prod",
    }
)

#: augmented-assignment operators recognized as commutative reductions
_REDUCTION_OPS = (ast.Add, ast.Mult, ast.BitOr, ast.BitAnd, ast.BitXor)

_MAX_DEPTH = 6

_MISSING = object()


def _is_repro_function(obj: Any) -> bool:
    module = getattr(obj, "__module__", "") or ""
    return isinstance(obj, types.FunctionType) and module.split(".")[0] == "repro"


def _literal_int(node: ast.AST) -> Optional[int]:
    """The value of a compile-time integer literal, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    return None


def _classify_live(value: Any, label: str) -> tuple:
    """Kind of a live object captured from a closure or globals."""
    if isinstance(value, np.ndarray):
        return ("array", label)
    if isinstance(value, (bool, numbers.Number, np.generic, str)) or value is None:
        return ("scalar",)
    if isinstance(value, types.ModuleType):
        return ("module", value, label)
    if isinstance(value, (types.FunctionType, types.BuiltinFunctionType, type)) or (
        callable(value) and isinstance(value, types.MethodType)
    ):
        return ("callable", value, label)
    if isinstance(value, (dict, list, set, tuple, frozenset)):
        return ("pyobject", label)
    # Any other instance: a state object whose fields we resolve live.
    return ("state", id(value), label)


class _Extractor(ast.NodeVisitor):
    """Walks one kernel's AST, recording facts into a shared IR."""

    def __init__(
        self,
        ir: KernelIR,
        fn: types.FunctionType,
        param_kinds: tuple[tuple, ...],
        live: dict[int, Any],
        self_kind: Optional[tuple] = None,
        depth: int = 0,
        loop_depth: int = 0,
        memo: Optional[set] = None,
    ) -> None:
        self.ir = ir
        self.fn = fn
        self.live = live
        self.depth = depth
        self.loop_depth = loop_depth
        self.memo = memo if memo is not None else set()
        self.kinds: dict[str, tuple] = {}
        self.line_offset = 0
        try:
            source = textwrap.dedent(inspect.getsource(fn))
            tree = ast.parse(source)
        except (OSError, TypeError, SyntaxError, IndentationError):
            ir.analyzable = False
            return
        self.line_offset = fn.__code__.co_firstlineno - 1
        fndef = next(
            (
                node
                for node in ast.walk(tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            ),
            None,
        )
        if fndef is None:
            ir.analyzable = False
            return
        params = [arg.arg for arg in fndef.args.args]
        if self_kind is not None and params and params[0] == "self":
            self.kinds[params[0]] = self_kind
            params = params[1:]
        for name, kind in zip(params, param_kinds):
            self.kinds[name] = kind
        for name in params[len(param_kinds):]:
            self.kinds[name] = ("unknown",)
        for stmt in fndef.body:
            self.visit(stmt)

    # -- helpers -----------------------------------------------------

    def _line(self, node: ast.AST) -> int:
        return getattr(node, "lineno", 0) + self.line_offset

    def _register(self, value: Any) -> None:
        self.live[id(value)] = value

    def resolve_name(self, name: str) -> tuple:
        """Kind of a bare name: locals, then closure, then globals."""
        if name in self.kinds:
            return self.kinds[name]
        closure = self.fn.__closure__ or ()
        freevars = self.fn.__code__.co_freevars
        for var, cell in zip(freevars, closure):
            if var == name:
                try:
                    value = cell.cell_contents
                except ValueError:
                    return ("unknown",)
                kind = _classify_live(value, name)
                self._register(value)
                return kind
        if name in self.fn.__globals__:
            value = self.fn.__globals__[name]
            kind = _classify_live(value, name)
            self._register(value)
            return kind
        import builtins

        if hasattr(builtins, name):
            return ("callable", getattr(builtins, name), name)
        return ("unknown",)

    # -- expression evaluation ---------------------------------------

    def _eval(self, node: ast.AST) -> tuple:
        """Evaluate an expression to a value kind, recording effects."""
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # Anything unmodeled: visit children conservatively.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
        return ("unknown",)

    def _eval_Constant(self, node: ast.Constant) -> tuple:
        return ("scalar",)

    def _eval_Name(self, node: ast.Name) -> tuple:
        return self.resolve_name(node.id)

    def _eval_Tuple(self, node: ast.Tuple) -> tuple:
        kinds = tuple(self._eval(elt) for elt in node.elts)
        return ("tuple", kinds)

    def _eval_List(self, node: ast.List) -> tuple:
        for elt in node.elts:
            self._eval(elt)
        self.ir.allocations.append(
            AllocSite("list", self.loop_depth > 0, self._line(node))
        )
        return ("pyobject", "list literal")

    def _eval_Set(self, node: ast.Set) -> tuple:
        for elt in node.elts:
            self._eval(elt)
        self.ir.allocations.append(
            AllocSite("set", self.loop_depth > 0, self._line(node))
        )
        return ("pyobject", "set literal")

    def _eval_Dict(self, node: ast.Dict) -> tuple:
        for key in node.keys:
            if key is not None:
                self._eval(key)
        for value in node.values:
            self._eval(value)
        self.ir.allocations.append(
            AllocSite("dict", self.loop_depth > 0, self._line(node))
        )
        return ("pyobject", "dict literal")

    def _comp_kind(self, node) -> tuple:
        """Comprehensions: bind targets from the iterable, eval elt."""
        saved = dict(self.kinds)
        for comp in node.generators:
            iter_kind = self._eval(comp.iter)
            self._bind_target(comp.target, self._element_kind(iter_kind))
            for cond in comp.ifs:
                self._eval(cond)
        if isinstance(node, ast.DictComp):
            self._eval(node.key)
            elt_kind = self._eval(node.value)
        else:
            elt_kind = self._eval(node.elt)
        self.kinds = saved
        return elt_kind

    def _eval_ListComp(self, node: ast.ListComp) -> tuple:
        elt_kind = self._comp_kind(node)
        self.ir.allocations.append(
            AllocSite("list", self.loop_depth > 0, self._line(node))
        )
        # A listcomp of per-node gathers is itself a gather vector —
        # np.array([o.data for o in os]) keeps its index meaning.
        if elt_kind[0] in ("gather", "rank"):
            return self._vector_of(elt_kind)
        return ("pyobject", "list comprehension")

    def _eval_SetComp(self, node: ast.SetComp) -> tuple:
        self._comp_kind(node)
        self.ir.allocations.append(
            AllocSite("set", self.loop_depth > 0, self._line(node))
        )
        return ("pyobject", "set comprehension")

    def _eval_DictComp(self, node: ast.DictComp) -> tuple:
        self._comp_kind(node)
        self.ir.allocations.append(
            AllocSite("dict", self.loop_depth > 0, self._line(node))
        )
        return ("pyobject", "dict comprehension")

    def _eval_GeneratorExp(self, node: ast.GeneratorExp) -> tuple:
        elt_kind = self._comp_kind(node)
        if elt_kind[0] in ("gather", "rank"):
            return self._vector_of(elt_kind)
        return ("data",)

    @staticmethod
    def _vector_of(elt_kind: tuple) -> tuple:
        if elt_kind[0] == "gather":
            return elt_kind
        if elt_kind[0] == "rank":
            return ("rankvec", elt_kind[1], 1, 0)
        return ("data",)

    @staticmethod
    def _element_kind(iter_kind: tuple) -> tuple:
        """Kind of one element drawn from an iterable of ``iter_kind``."""
        if iter_kind[0] == "nodeseq":
            return ("node", iter_kind[1])
        if iter_kind[0] == "rankvec":
            return ("rank", iter_kind[1])
        if iter_kind[0] in ("gather", "column"):
            return ("data",)
        if iter_kind[0] == "array":
            return ("data",)
        if iter_kind[0] == "tuple":
            return ("unknown",)
        return ("unknown",)

    def _eval_Starred(self, node: ast.Starred) -> tuple:
        return self._eval(node.value)

    def _eval_IfExp(self, node: ast.IfExp) -> tuple:
        self._eval(node.test)
        body = self._eval(node.body)
        orelse = self._eval(node.orelse)
        return body if body == orelse else ("data",)

    def _eval_JoinedStr(self, node: ast.JoinedStr) -> tuple:
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                self._eval(value.value)
        return ("scalar",)

    def _eval_BoolOp(self, node: ast.BoolOp) -> tuple:
        for value in node.values:
            self._eval(value)
        return ("scalar",)

    def _eval_Compare(self, node: ast.Compare) -> tuple:
        kinds = [self._eval(node.left)]
        kinds.extend(self._eval(comp) for comp in node.comparators)
        if any(
            k[0] in ("rankvec", "gather", "column", "array", "mask", "nonaffine")
            for k in kinds
        ):
            return ("mask",)
        return ("scalar",)

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> tuple:
        operand = self._eval(node.operand)
        if isinstance(node.op, ast.USub):
            if operand[0] == "rankvec":
                return ("rankvec", operand[1], -operand[2], _neg(operand[3]))
            if operand[0] in ("rank", "gather"):
                return ("nonaffine", operand[1], "negated index")
        return operand if operand[0] in ("scalar", "data", "mask") else ("data",)

    def _eval_BinOp(self, node: ast.BinOp) -> tuple:
        left = self._eval(node.left)
        right = self._eval(node.right)
        lit_left = _literal_int(node.left)
        lit_right = _literal_int(node.right)
        return _combine_binop(node.op, left, right, lit_left, lit_right)

    def _eval_Attribute(self, node: ast.Attribute) -> tuple:
        base = self._eval(node.value)
        attr = node.attr
        if base[0] == "node":
            self.ir.attr_reads.add((base[1], attr))
            return ("gather", base[1], attr)
        if base[0] == "state":
            obj = self.live.get(base[1], _MISSING)
            label = f"{base[2]}.{attr}"
            if obj is _MISSING:
                return ("unknown",)
            value = getattr(obj, attr, _MISSING)
            if value is _MISSING:
                # A field first assigned by the kernel itself.
                return ("statefield", base[1], base[2], attr)
            if isinstance(value, np.ndarray):
                self._register(value)
                return ("array", label)
            if callable(value):
                return ("callable", value, label)
            if isinstance(value, (bool, numbers.Number, np.generic)):
                self.ir.state_accesses.append(
                    StateAccess(label, is_write=False, line=self._line(node))
                )
                return ("statefield", base[1], base[2], attr)
            if isinstance(value, (dict, list, set)):
                return ("pyobject", label)
            self._register(value)
            return ("state", id(value), label)
        if base[0] == "module":
            value = getattr(base[1], attr, _MISSING)
            if value is _MISSING:
                return ("unknown",)
            kind = _classify_live(value, f"{base[2]}.{attr}")
            if kind[0] == "array":
                self._register(value)
            return kind
        if base[0] == "pyobject":
            self.ir.object_uses.append(
                ObjectUse(f"attribute access on {base[1]}", self._line(node))
            )
            return ("unknown",)
        if base[0] in ("array", "rankvec", "gather", "column"):
            # shape/dtype/T and friends: typed metadata, not an escape.
            if attr in ("shape", "size", "ndim", "dtype", "T"):
                return ("scalar",) if attr != "T" else base
            return ("data",)
        if base[0] == "callable" or base[0] == "statefield":
            return ("unknown",)
        return ("unknown",)

    def _eval_Subscript(self, node: ast.Subscript) -> tuple:
        base = self._eval(node.value)
        if base[0] in ("array", "column"):
            dims = self._classify_dims(node.slice)
            label = base[1] if base[0] == "array" else f"{base[1]}.{base[2]}"
            self.ir.array_accesses.append(
                ArrayAccess(label, dims, is_write=False, line=self._line(node))
            )
            self._note_dim_effects(dims, node)
            if base[0] == "column" and len(dims) == 1:
                dim = dims[0]
                if dim.kind == AFFINE:
                    return ("gather", base[1], base[2])
                if dim.kind == SLICE:
                    return ("column", base[1], base[2])
            return ("data",)
        if base[0] == "nodeseq":
            return ("node", base[1])
        if base[0] == "rankvec":
            index = node.slice
            if _literal_int(index) is not None:
                return ("rank", base[1])
            if isinstance(index, ast.Slice):
                return ("rankvec", base[1], base[2], None)
            index_kind = self._eval(index)
            if index_kind[0] == "mask":
                self.ir.dynamic_shapes.append(
                    ("mask-selected rank subset", self._line(node))
                )
                return ("rankvec", base[1], base[2], None)
            return ("nonaffine", base[1], "rank vector indexed by a value")
        if base[0] == "gather":
            self._eval(node.slice)
            return ("data",)
        if base[0] == "pyobject":
            self._eval(node.slice)
            self.ir.object_uses.append(
                ObjectUse(f"subscript of {base[1]}", self._line(node))
            )
            return ("unknown",)
        if base[0] == "state":
            self.ir.object_uses.append(
                ObjectUse(f"subscript of state object {base[2]}", self._line(node))
            )
            return ("unknown",)
        if base[0] == "tuple":
            lit = _literal_int(node.slice)
            if lit is not None and 0 <= lit < len(base[1]):
                return base[1][lit]
            return ("unknown",)
        self._eval(node.slice)
        return ("data",) if base[0] in ("data", "mask") else ("unknown",)

    # -- calls -------------------------------------------------------

    def _eval_Call(self, node: ast.Call) -> tuple:
        func = node.func
        arg_kinds = [self._eval(arg) for arg in node.args]
        for keyword in node.keywords:
            self._eval(keyword.value)

        if isinstance(func, ast.Name):
            return self._call_named(func.id, node, arg_kinds)
        if isinstance(func, ast.Attribute):
            return self._call_method(func, node, arg_kinds)
        self.ir.unknown_helpers.append(HelperCall("<dynamic call>", self._line(node)))
        return ("unknown",)

    def _call_named(self, name: str, node: ast.Call, arg_kinds: list) -> tuple:
        if name in _PURE_BUILTINS:
            if name in ("int", "float", "bool", "abs") and arg_kinds:
                k = arg_kinds[0]
                if k[0] in ("rank", "gather", "rankvec"):
                    return k
            return ("scalar",)
        if name in _CONTAINER_BUILTINS:
            self.ir.allocations.append(
                AllocSite(name, self.loop_depth > 0, self._line(node))
            )
            return ("pyobject", f"{name}() call")
        kind = self.resolve_name(name)
        return self._dispatch_kind(kind, name, node, arg_kinds)

    def _call_method(
        self, func: ast.Attribute, node: ast.Call, arg_kinds: list
    ) -> tuple:
        base = self._eval(func.value)
        attr = func.attr
        if base[0] == "view":
            if attr == "column":
                if node.args and isinstance(node.args[0], ast.Constant):
                    return ("column", base[1], str(node.args[0].value))
                self.ir.untyped.append(
                    ("view.column() with a non-literal name", self._line(node))
                )
                return ("unknown",)
            return ("unknown",)
        if base[0] == "module":
            live_fn = getattr(base[1], attr, _MISSING)
            module_name = getattr(base[1], "__name__", "")
            root = module_name.split(".")[0]
            if root == "numpy":
                return self._numpy_call(attr, node, arg_kinds)
            if root == "math":
                return ("scalar",)
            if live_fn is not _MISSING and _is_repro_function(live_fn):
                return self._dispatch_function(live_fn, arg_kinds, node)
            self.ir.unknown_helpers.append(
                HelperCall(f"{module_name}.{attr}", self._line(node))
            )
            return ("unknown",)
        if base[0] in ("array", "column", "gather", "rankvec", "nodeseq"):
            if attr in _PURE_VALUE_METHODS:
                return ("data",)
            if attr in ("fill", "sort", "put", "setfield", "resize"):
                label = base[1] if base[0] == "array" else str(base[1])
                self.ir.array_accesses.append(
                    ArrayAccess(
                        label,
                        (IndexDim(SLICE),),
                        is_write=True,
                        line=self._line(node),
                    )
                )
                return ("scalar",)
            if attr == "tolist":
                self.ir.allocations.append(
                    AllocSite("list", self.loop_depth > 0, self._line(node))
                )
                return ("pyobject", "tolist()")
            return ("data",)
        if base[0] == "state":
            obj = self.live.get(base[1], _MISSING)
            if obj is not _MISSING:
                bound = getattr(obj, attr, _MISSING)
                if bound is not _MISSING and callable(bound):
                    return self._dispatch_bound_method(
                        bound, base, attr, arg_kinds, node
                    )
            self.ir.unknown_helpers.append(
                HelperCall(f"{base[2]}.{attr}", self._line(node))
            )
            return ("unknown",)
        if base[0] == "node":
            self.ir.unknown_helpers.append(
                HelperCall(f"<{base[1]} node>.{attr}", self._line(node))
            )
            return ("unknown",)
        if base[0] == "pyobject":
            self.ir.object_uses.append(
                ObjectUse(f"method {attr}() on {base[1]}", self._line(node))
            )
            return ("unknown",)
        if base[0] == "callable":
            return ("unknown",)
        if base[0] in ("scalar", "data", "mask"):
            return base
        self.ir.unknown_helpers.append(HelperCall(attr, self._line(node)))
        return ("unknown",)

    def _numpy_call(self, attr: str, node: ast.Call, arg_kinds: list) -> tuple:
        if attr in _NP_STAGING:
            if arg_kinds and arg_kinds[0][0] in ("rankvec", "gather", "rank"):
                return self._vector_of(arg_kinds[0]) if arg_kinds[0][0] != "rankvec" else arg_kinds[0]
            return ("data",)
        if attr in _NP_ALLOC:
            self.ir.allocations.append(
                AllocSite("ndarray", self.loop_depth > 0, self._line(node))
            )
            # The "<fresh ...>" label marks a kernel-local temporary:
            # the independence pass exempts writes into it.
            return ("array", f"<fresh np.{attr}>")
        if attr in _NP_DYNSHAPE:
            self.ir.dynamic_shapes.append((f"np.{attr}", self._line(node)))
            return ("mask",)
        # Everything else in numpy is a typed intrinsic over its args.
        return ("data",)

    def _dispatch_kind(
        self, kind: tuple, name: str, node: ast.Call, arg_kinds: list
    ) -> tuple:
        if kind[0] == "callable":
            target = kind[1]
            if _is_repro_function(target):
                return self._dispatch_function(target, arg_kinds, node)
            module = getattr(target, "__module__", "") or ""
            if module.split(".")[0] in ("numpy", "math"):
                return ("data",)
            if isinstance(target, type):
                self.ir.allocations.append(
                    AllocSite("object", self.loop_depth > 0, self._line(node))
                )
                self.ir.object_uses.append(
                    ObjectUse(f"constructs {name}()", self._line(node))
                )
                return ("unknown",)
            if isinstance(target, types.MethodType):
                self_obj = target.__self__
                self._register(self_obj)
                return self._dispatch_bound_method(
                    target,
                    ("state", id(self_obj), name),
                    getattr(target, "__name__", name),
                    arg_kinds,
                    node,
                )
            self.ir.unknown_helpers.append(HelperCall(name, self._line(node)))
            return ("unknown",)
        if kind[0] in ("unknown", "pyobject", "state"):
            self.ir.unknown_helpers.append(HelperCall(name, self._line(node)))
        return ("unknown",)

    def _dispatch_function(
        self,
        target: types.FunctionType,
        arg_kinds: list,
        node: ast.Call,
        self_kind: Optional[tuple] = None,
    ) -> tuple:
        name = getattr(target, "__name__", "<fn>")
        if self.depth >= _MAX_DEPTH:
            self.ir.unknown_helpers.append(HelperCall(name, self._line(node)))
            return ("unknown",)
        key = (target.__code__, tuple(k[0] for k in arg_kinds))
        if key in self.memo:
            return ("data",)
        self.memo.add(key)
        sub = _Extractor(
            self.ir,
            target,
            tuple(arg_kinds),
            self.live,
            self_kind=self_kind,
            depth=self.depth + 1,
            loop_depth=self.loop_depth,
            memo=self.memo,
        )
        if not self.ir.analyzable:
            # Helper source unavailable: record, but do not poison the
            # whole kernel — the caller's body was parseable.
            self.ir.analyzable = True
            self.ir.unknown_helpers.append(HelperCall(name, self._line(node)))
        del sub
        return ("data",)

    def _dispatch_bound_method(
        self,
        bound: Any,
        base: tuple,
        attr: str,
        arg_kinds: list,
        node: ast.Call,
    ) -> tuple:
        func = getattr(bound, "__func__", None)
        if func is None or not _is_repro_function(func):
            self.ir.unknown_helpers.append(
                HelperCall(f"{base[2]}.{attr}", self._line(node))
            )
            return ("unknown",)
        return self._dispatch_function(func, arg_kinds, node, self_kind=base)

    # -- index classification ----------------------------------------

    def _classify_dims(self, index: ast.AST) -> tuple[IndexDim, ...]:
        if isinstance(index, ast.Tuple):
            return tuple(self._classify_dim(elt) for elt in index.elts)
        return (self._classify_dim(index),)

    def _classify_dim(self, node: ast.AST) -> IndexDim:
        if isinstance(node, ast.Slice):
            if node.lower is not None:
                self._eval(node.lower)
            if node.upper is not None:
                self._eval(node.upper)
            return IndexDim(SLICE)
        if _literal_int(node) is not None:
            return IndexDim(CONST, const=_literal_int(node))
        kind = self._eval(node)
        if kind[0] == "rank":
            return IndexDim(AFFINE, axis=kind[1], coeff=1, const=0)
        if kind[0] == "rankvec":
            return IndexDim(AFFINE, axis=kind[1], coeff=kind[2], const=kind[3])
        if kind[0] == "gather":
            return IndexDim(GATHER, axis=kind[1], column=kind[2])
        if kind[0] == "nonaffine":
            return IndexDim(UNKNOWN, axis=kind[1], detail=kind[2])
        if kind[0] == "mask":
            return IndexDim(MASK)
        if kind[0] == "scalar":
            # A scalar *variable*: rank-independent as far as the IR can
            # see, but its provenance (a data value? a loop counter?) is
            # lost — claiming a definite location would overreach.
            return IndexDim(UNKNOWN, detail="scalar of unknown provenance")
        return IndexDim(UNKNOWN, detail="value-dependent index")

    def _note_dim_effects(self, dims: tuple[IndexDim, ...], node: ast.AST) -> None:
        for dim in dims:
            if dim.kind == MASK:
                self.ir.dynamic_shapes.append(
                    ("boolean-mask index", self._line(node))
                )

    # -- statements --------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        value_kind = self._eval(node.value)
        for target in node.targets:
            self._store(target, value_kind, node, reduction=False, aug=False)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is None:
            return
        value_kind = self._eval(node.value)
        self._store(node.target, value_kind, node, reduction=False, aug=False)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._eval(node.value)
        # The augmented target is read *and* written.
        self._eval(node.target)
        reduction = isinstance(node.op, _REDUCTION_OPS)
        self._store(node.target, ("data",), node, reduction=reduction, aug=True)

    def _store(
        self,
        target: ast.AST,
        value_kind: tuple,
        node: ast.AST,
        reduction: bool,
        aug: bool,
    ) -> None:
        line = self._line(node)
        if isinstance(target, ast.Name):
            if target.id in self.fn.__code__.co_freevars:
                self.ir.object_uses.append(
                    ObjectUse(f"rebinds captured variable {target.id!r}", line)
                )
                return
            self.kinds[target.id] = value_kind
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            kinds = (
                value_kind[1]
                if value_kind[0] == "tuple" and len(value_kind[1]) == len(target.elts)
                else tuple(("unknown",) for _ in target.elts)
            )
            for elt, kind in zip(target.elts, kinds):
                self._store(elt, kind, node, reduction=False, aug=False)
            return
        if isinstance(target, ast.Starred):
            self._store(target.value, ("unknown",), node, reduction=False, aug=False)
            return
        if isinstance(target, ast.Attribute):
            self._store_attribute(target, node, reduction, aug)
            return
        if isinstance(target, ast.Subscript):
            self._store_subscript(target, node, reduction)
            return
        self.ir.untyped.append(("unresolvable store target", line))

    def _store_attribute(
        self, target: ast.Attribute, node: ast.AST, reduction: bool, aug: bool
    ) -> None:
        base = self._eval(target.value)
        attr = target.attr
        line = self._line(node)
        if base[0] == "state":
            obj = self.live.get(base[1], _MISSING)
            label = f"{base[2]}.{attr}"
            typed = True
            if obj is not _MISSING:
                value = getattr(obj, attr, _MISSING)
                typed = value is _MISSING or isinstance(
                    value, (bool, numbers.Number, np.generic)
                )
            self.ir.state_accesses.append(
                StateAccess(
                    label,
                    is_write=True,
                    reduction=reduction and aug,
                    typed=typed,
                    line=line,
                )
            )
            return
        if base[0] == "node":
            self.ir.node_writes.append(NodeFieldWrite(base[1], attr, line))
            return
        if base[0] == "pyobject":
            self.ir.object_uses.append(
                ObjectUse(f"attribute store on {base[1]}", line)
            )
            return
        if base[0] == "view":
            self.ir.object_uses.append(
                ObjectUse(f"attribute store on the {base[1]} SoA view", line)
            )
            return
        self.ir.untyped.append((f"store to attribute {attr!r} of {base[0]}", line))

    def _store_subscript(
        self, target: ast.Subscript, node: ast.AST, reduction: bool
    ) -> None:
        base = self._eval(target.value)
        line = self._line(node)
        if base[0] in ("array", "column"):
            dims = self._classify_dims(target.slice)
            label = base[1] if base[0] == "array" else f"{base[1]}.{base[2]}"
            self.ir.array_accesses.append(
                ArrayAccess(label, dims, is_write=True, reduction=reduction, line=line)
            )
            self._note_dim_effects(dims, node)
            return
        if base[0] in ("pyobject", "state"):
            label = base[1] if base[0] == "pyobject" else base[2]
            self._eval(target.slice)
            self.ir.object_uses.append(ObjectUse(f"item store into {label}", line))
            return
        self._eval(target.slice)
        self.ir.untyped.append((f"store through a {base[0]} subscript", line))

    def visit_For(self, node: ast.For) -> None:
        iter_kind = self._eval(node.iter)
        if isinstance(node.iter, ast.Call) and isinstance(node.iter.func, ast.Name):
            fname = node.iter.func.id
            if fname == "enumerate" and node.iter.args:
                inner = self._eval(node.iter.args[0])
                iter_kind = ("tuple", (("scalar",), self._element_kind(inner)))
                self._bind_target(node.target, iter_kind)
                self._loop_body(node)
                return
            if fname == "zip":
                kinds = tuple(
                    self._element_kind(self._eval(arg)) for arg in node.iter.args
                )
                self._bind_target(node.target, ("tuple", kinds))
                self._loop_body(node)
                return
            if fname == "range":
                self._bind_target(node.target, ("scalar",))
                self._loop_body(node)
                return
        self._bind_target(node.target, self._element_kind(iter_kind))
        self._loop_body(node)

    def _loop_body(self, node: ast.For) -> None:
        self.loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def _bind_target(self, target: ast.AST, kind: tuple) -> None:
        if isinstance(target, ast.Name):
            self.kinds[target.id] = kind
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            kinds = (
                kind[1]
                if kind[0] == "tuple" and len(kind[1]) == len(target.elts)
                else tuple(("unknown",) for _ in target.elts)
            )
            for elt, sub in zip(target.elts, kinds):
                self._bind_target(elt, sub)

    def visit_While(self, node: ast.While) -> None:
        self._eval(node.test)
        self.loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_If(self, node: ast.If) -> None:
        self._eval(node.test)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Expr(self, node: ast.Expr) -> None:
        self._eval(node.value)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._eval(node.value)

    def visit_Assert(self, node: ast.Assert) -> None:
        self._eval(node.test)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self._eval(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)

    def visit_Try(self, node: ast.Try) -> None:
        for stmt in node.body:
            self.visit(stmt)
        for handler in node.handlers:
            for stmt in handler.body:
                self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        for stmt in node.finalbody:
            self.visit(stmt)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested def is a closure the compiled loop cannot have.
        self.ir.object_uses.append(
            ObjectUse(f"defines nested function {node.name!r}", self._line(node))
        )

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:  # pragma: no cover
        self.ir.object_uses.append(
            ObjectUse("defines a lambda", self._line(node))
        )

    def generic_visit(self, node: ast.AST) -> None:
        # Statements without a dedicated handler: evaluate expression
        # children so reads are still recorded.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
            else:
                self.visit(child)


def _neg(value: Optional[int]) -> Optional[int]:
    return None if value is None else -value


def _combine_binop(
    op: ast.operator,
    left: tuple,
    right: tuple,
    lit_left: Optional[int],
    lit_right: Optional[int],
) -> tuple:
    """Kind algebra for binary operators, preserving affineness."""
    rankish = ("rank", "rankvec")
    # Normalize: rank behaves as rankvec(1, 0) of width one.
    def as_affine(kind):
        if kind[0] == "rank":
            return ("rankvec", kind[1], 1, 0)
        return kind

    lk, rk = as_affine(left), as_affine(right)
    if lk[0] == "rankvec" and rk[0] == "rankvec":
        return ("nonaffine", lk[1], "combines two rank expressions")
    for vec, other, lit in ((lk, rk, lit_right), (rk, lk, lit_left)):
        if vec[0] == "rankvec" and other[0] == "scalar":
            if isinstance(op, (ast.Add, ast.Sub)):
                if vec is rk and isinstance(op, ast.Sub):
                    # k - (c*r + d) = -c*r + (k - d)
                    const = (
                        lit - vec[3]
                        if lit is not None and vec[3] is not None
                        else None
                    )
                    return ("rankvec", vec[1], -vec[2], const)
                if lit is None:
                    return ("rankvec", vec[1], vec[2], None)
                delta = lit if isinstance(op, ast.Add) else -lit
                const = None if vec[3] is None else vec[3] + delta
                return ("rankvec", vec[1], vec[2], const)
            if isinstance(op, ast.Mult):
                if lit is None:
                    return ("nonaffine", vec[1], "scaled by a runtime value")
                if lit == 0:
                    return ("scalar",)
                return (
                    "rankvec",
                    vec[1],
                    vec[2] * lit,
                    None if vec[3] is None else vec[3] * lit,
                )
            return ("nonaffine", vec[1], f"{type(op).__name__} of a rank expression")
    if lk[0] == "gather" and rk[0] == "scalar":
        if isinstance(op, (ast.Add, ast.Sub)):
            return lk
        if isinstance(op, ast.Mult) and lit_right not in (None, 0):
            return lk
        return ("data",)
    if rk[0] == "gather" and lk[0] == "scalar":
        if isinstance(op, ast.Add):
            return rk
        if isinstance(op, ast.Mult) and lit_left not in (None, 0):
            return rk
        return ("data",)
    if lk[0] == "gather" and rk[0] == "gather":
        return ("data",)
    if any(k[0] in rankish for k in (left, right)):
        axis = left[1] if left[0] in rankish else right[1]
        return ("nonaffine", axis, "rank combined with non-scalar data")
    if lk[0] == "mask" or rk[0] == "mask":
        return ("mask",)
    if lk[0] == "scalar" and rk[0] == "scalar":
        return ("scalar",)
    return ("data",)


# --------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------


def extract_kernel_ir(fn: Any, role: str) -> KernelIR:
    """Extract the typed IR of one live kernel function.

    ``role`` must be a key of :data:`ROLE_PARAM_KINDS`; it fixes the
    kinds the kernel's positional parameters are bound to.  A kernel
    whose source cannot be fetched yields ``analyzable=False`` (the
    lowerability pass turns that into TW200).
    """
    if role not in ROLE_PARAM_KINDS:
        raise ValueError(f"unknown kernel role {role!r}")
    ir = KernelIR(role=role, name=getattr(fn, "__name__", "<kernel>"))
    target = fn
    self_kind: Optional[tuple] = None
    live: dict[int, Any] = {}
    if isinstance(fn, types.MethodType):
        self_obj = fn.__self__
        live[id(self_obj)] = self_obj
        label = type(self_obj).__name__.lower()
        self_kind = ("state", id(self_obj), label)
        target = fn.__func__
    if not isinstance(target, types.FunctionType):
        ir.analyzable = False
        return ir
    _Extractor(ir, target, ROLE_PARAM_KINDS[role], live, self_kind=self_kind)
    return ir

#!/usr/bin/env python
"""The price of parameterlessness: cutoff twisting (Section 7.1).

Parameterless twisting keeps twisting even after the working set fits
in every cache, paying bookkeeping for no further locality gain.  A
*cutoff* switches back to the plain recursive schedule once the inner
tree is small.  This example sweeps cutoff values on point correlation
and prints the tradeoff the paper shows in Figure 10: larger cutoffs
mean less instruction overhead but, past the cache size, less locality.

Run:  python examples/cutoff_study.py
"""

from repro.bench import bench_hierarchy, make_pc, run_case
from repro.bench.reporting import ExperimentReport, percent
from repro.core.schedules import ORIGINAL, TWIST, twist_with_cutoff
from repro.memory import instruction_overhead, speedup


def main() -> None:
    case = make_pc(num_points=1024)
    baseline = run_case(case, ORIGINAL, bench_hierarchy)

    table = ExperimentReport(
        title="Cutoff twisting on PC (1024 points)",
        columns=["configuration", "instr overhead", "speedup"],
    )
    parameterless = run_case(case, TWIST, bench_hierarchy)
    table.add_row(
        "parameterless",
        percent(instruction_overhead(baseline, parameterless)),
        f"{speedup(baseline, parameterless):.2f}x",
    )
    for cutoff in (4, 16, 64, 256):
        run = run_case(case, twist_with_cutoff(cutoff), bench_hierarchy)
        table.add_row(
            f"cutoff={cutoff}",
            percent(instruction_overhead(baseline, run)),
            f"{speedup(baseline, run):.2f}x",
        )
    print(table.render())
    print("\nreading guide: small cutoffs ~= parameterless (max locality,")
    print("max overhead); huge cutoffs ~= baseline (no overhead, no gain);")
    print("the sweet spot sits near the largest cache's size.")


if __name__ == "__main__":
    main()

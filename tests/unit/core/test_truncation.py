"""Unit tests for the Section 4 truncation policies."""

import pytest

from repro.core import (
    CounterTruncation,
    FlagTruncation,
    NestedRecursionSpec,
    NoTruncation,
    WorkRecorder,
    make_policy,
    run_original,
    run_twisted,
    run_interchanged,
)
from repro.core.instruments import NULL_INSTRUMENT, OpCounter
from repro.errors import ScheduleError
from repro.spaces import balanced_tree, paper_inner_tree, paper_outer_tree


class TestPolicySelection:
    def test_regular_gets_noop(self):
        spec = NestedRecursionSpec(balanced_tree(3), balanced_tree(3))
        assert isinstance(make_policy(spec), NoTruncation)

    def test_irregular_gets_flags_by_default(self):
        spec = NestedRecursionSpec(
            balanced_tree(3), balanced_tree(3), truncate_inner2=lambda o, i: False
        )
        assert isinstance(make_policy(spec), FlagTruncation)

    def test_counters_on_request(self):
        spec = NestedRecursionSpec(
            balanced_tree(3), balanced_tree(3), truncate_inner2=lambda o, i: False
        )
        assert isinstance(make_policy(spec, use_counters=True), CounterTruncation)


class TestFlagPolicy:
    def test_set_check_unset_cycle(self):
        policy = FlagTruncation(lambda o, i: True)
        o, i = balanced_tree(1), balanced_tree(1)
        frame = policy.open_phase()
        assert policy.check_and_mark(o, i, frame, NULL_INSTRUMENT) is True
        assert o.trunc is True
        # Second check sees the flag without re-evaluating the predicate.
        assert policy.check_and_mark(o, i, frame, NULL_INSTRUMENT) is True
        assert frame == [o]  # added exactly once
        policy.close_phase(frame, NULL_INSTRUMENT)
        assert o.trunc is False

    def test_subtree_truncated_reads_flag(self):
        policy = FlagTruncation(lambda o, i: False)
        o, i = balanced_tree(1), balanced_tree(1)
        assert policy.subtree_truncated(o, i, NULL_INSTRUMENT) is False
        o.trunc = True
        assert policy.subtree_truncated(o, i, NULL_INSTRUMENT) is True


class TestCounterPolicy:
    def test_counter_covers_subtree_then_expires(self):
        inner = balanced_tree(7)  # numbers 0..6, subtree of node 1 = {1,2,3}
        node1 = next(n for n in inner.iter_preorder() if n.number == 1)
        node4 = next(n for n in inner.iter_preorder() if n.number == 4)
        policy = CounterTruncation(lambda o, i: i.number == 1)
        o = balanced_tree(1)
        assert policy.check_and_mark(o, node1, None, NULL_INSTRUMENT) is True
        assert o.trunc_counter == node1.number + node1.size  # == 4
        # Descendant of 1 (number 2 < 4): still truncated.
        node2 = next(n for n in inner.iter_preorder() if n.number == 2)
        assert policy.check_and_mark(o, node2, None, NULL_INSTRUMENT) is True
        # Past the subtree (number 4): naturally untruncated.
        assert policy.check_and_mark(o, node4, None, NULL_INSTRUMENT) is False

    def test_requires_numbering(self):
        from repro.spaces.node import TreeNode

        unnumbered = TreeNode("x")  # finalize_tree never called
        policy = CounterTruncation(lambda o, i: True)
        with pytest.raises(ScheduleError, match="pre-order numbering"):
            policy.check_and_mark(balanced_tree(1), unnumbered, None, NULL_INSTRUMENT)

    def test_no_unset_needed(self):
        policy = CounterTruncation(lambda o, i: True)
        assert policy.open_phase() is None
        policy.close_phase(None, NULL_INSTRUMENT)  # must be a no-op


class TestNestedTruncationRegions:
    """Regression for the Figure 6(b) double-add hazard (see
    repro.core.truncation module docs): when an outer node is truncated
    at an inner node AND at one of its descendants, the inner phase
    must not unset the outer phase's flag early."""

    def predicate(self, o, i):
        # B truncated for the whole subtree of 2, and (vacuously)
        # "again" at node 3 inside it.
        return o.label == "B" and i.label in (2, 3)

    def test_all_schedules_agree_with_original(self):
        spec = NestedRecursionSpec(
            paper_outer_tree(),
            paper_inner_tree(),
            truncate_inner2=self.predicate,
        )
        original = WorkRecorder()
        run_original(spec, instrument=original)
        # Original: (B,2),(B,3),(B,4) skipped (3's condition is shadowed).
        assert len(original.points) == 46

        for run, kwargs in [
            (run_interchanged, {}),
            (run_interchanged, {"use_counters": True}),
            (run_twisted, {}),
            (run_twisted, {"use_counters": True}),
        ]:
            recorder = WorkRecorder()
            run(spec, instrument=recorder, **kwargs)
            assert set(recorder.points) == set(original.points), kwargs

    def test_overlapping_regions_for_different_outer_nodes(self):
        spec = NestedRecursionSpec(
            paper_outer_tree(),
            paper_inner_tree(),
            truncate_inner2=lambda o, i: (o.label, i.label) in {
                ("B", 2), ("C", 1), ("E", 5), ("F", 2), ("F", 5)
            },
        )
        original, twisted = WorkRecorder(), WorkRecorder()
        run_original(spec, instrument=original)
        run_twisted(spec, instrument=twisted)
        assert set(original.points) == set(twisted.points)


class TestOpAccounting:
    def test_flag_ops_counted(self):
        spec = NestedRecursionSpec(
            paper_outer_tree(),
            paper_inner_tree(),
            truncate_inner2=lambda o, i: o.label == "B" and i.label == 2,
        )
        ops = OpCounter()
        run_interchanged(spec, instrument=ops)
        assert ops.counts["flag_set"] == 1
        assert ops.counts["flag_unset"] == 1
        assert ops.counts["flag_check"] == 49

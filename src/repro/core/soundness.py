"""Soundness checking for scheduling transformations (Section 3.3).

A scheduling transformation is sound when every pair of dependent
``work`` invocations (same location, at least one write) executes in
the same relative order before and after the transformation.  The
paper's prototype does *not* verify this automatically — it "relies on
the programmer to only annotate nested recursive functions that can be
safely transformed" — but a reproduction can do better: given a
*footprint* function describing what each ``work(o, i)`` reads and
writes, this module checks order preservation on concrete executions,
and implements the paper's conservative sufficient criterion ("if the
outer recursion is parallel, recursion interchange is sound, and
therefore recursion twisting is sound").

The order-preservation check uses a canonical form per location:
``[w, {reads}, w, {reads}, ...]`` — reads between consecutive writes
commute with each other, writes never commute, and a read never crosses
a write.  Two schedules preserve all dependences iff every location's
canonical form matches.

The static counterpart of this module is
:mod:`repro.transform.lint`, which decides the same "every write is
keyed by the outer index" criterion from the AST instead of from a
concrete run; the two share the footprint vocabulary (locations,
read/write accesses, outer-keying) and are cross-validated against
each other by ``tests/properties/test_lint_properties.py``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

from repro.core.instruments import Instrument
from repro.errors import SoundnessError
from repro.spaces.node import IndexNode

#: What one work invocation touches: (location, is_write) pairs.
Footprint = Callable[[IndexNode, IndexNode], Iterable[tuple[Hashable, bool]]]

WorkPointLabel = tuple[Hashable, Hashable]


def _label(node: IndexNode) -> Hashable:
    return getattr(node, "label", node.number)


class FootprintRecorder(Instrument):
    """Records, per location, the ordered access sequence of a run.

    Each entry is ``(work_point_label, is_write)``; the per-location
    sequences are all the soundness check needs (accesses to different
    locations always commute).
    """

    def __init__(self, footprint: Footprint) -> None:
        self.footprint = footprint
        self.by_location: dict[Hashable, list[tuple[WorkPointLabel, bool]]] = (
            defaultdict(list)
        )
        self.num_work_points = 0

    def work(self, o: IndexNode, i: IndexNode) -> None:
        self.num_work_points += 1
        point = (_label(o), _label(i))
        for location, is_write in self.footprint(o, i):
            self.by_location[location].append((point, is_write))


def canonical_form(
    sequence: Sequence[tuple[WorkPointLabel, bool]]
) -> list[tuple[str, object]]:
    """Canonicalize one location's access sequence.

    Writes stay ordered; maximal runs of reads between writes become
    frozen *multisets* (a point may read a location several times).
    Two sequences have equal canonical forms iff they agree on every
    read-write and write-write ordering.
    """
    form: list[tuple[str, object]] = []
    reads: dict[WorkPointLabel, int] = defaultdict(int)
    for point, is_write in sequence:
        if is_write:
            if reads:
                form.append(("reads", frozenset(reads.items())))
                reads = defaultdict(int)
            form.append(("write", point))
        else:
            reads[point] += 1
    if reads:
        form.append(("reads", frozenset(reads.items())))
    return form


@dataclass
class SoundnessReport:
    """Outcome of comparing a transformed schedule against the original."""

    #: locations whose dependence order differs (empty = sound)
    violations: list[Hashable]
    #: locations checked in total
    locations_checked: int
    #: True when the executed work-point multisets matched
    same_work_points: bool

    @property
    def is_sound(self) -> bool:
        """True when no dependence order was violated."""
        return not self.violations and self.same_work_points

    def raise_if_unsound(self) -> None:
        """Raise :class:`~repro.errors.SoundnessError` on violations."""
        if not self.same_work_points:
            raise SoundnessError(
                "transformed schedule executes a different set of "
                "iterations than the original"
            )
        if self.violations:
            raise SoundnessError(
                f"dependence order violated at {len(self.violations)} "
                f"location(s), e.g. {self.violations[0]!r}"
            )


def compare_recordings(
    original: FootprintRecorder, transformed: FootprintRecorder
) -> SoundnessReport:
    """Check that ``transformed`` preserves every dependence of ``original``."""
    violations: list[Hashable] = []
    locations = set(original.by_location) | set(transformed.by_location)
    for location in locations:
        before = canonical_form(original.by_location.get(location, []))
        after = canonical_form(transformed.by_location.get(location, []))
        if before != after:
            violations.append(location)
    return SoundnessReport(
        violations=sorted(violations, key=repr),
        locations_checked=len(locations),
        same_work_points=original.num_work_points == transformed.num_work_points,
    )


def check_transformation(
    spec_factory: Callable[[], "object"],
    footprint: Footprint,
    run_original: Callable[..., None],
    run_transformed: Callable[..., None],
) -> SoundnessReport:
    """Run both schedules on fresh specs and compare dependence orders.

    ``spec_factory`` must build an independent spec per call (the work
    function may mutate state, so the two runs cannot share it).
    """
    original_recorder = FootprintRecorder(footprint)
    run_original(spec_factory(), instrument=original_recorder)
    transformed_recorder = FootprintRecorder(footprint)
    run_transformed(spec_factory(), instrument=transformed_recorder)
    return compare_recordings(original_recorder, transformed_recorder)


def outer_parallel_violations(recorder: FootprintRecorder) -> list[Hashable]:
    """Locations refuting the §3.3 criterion on a concrete run.

    A location violates "the outer recursion is parallel" when it is
    involved in at least one write and is touched by work points with
    two different outer indices — i.e. the write is **not keyed by the
    outer index**.  This is the same write-keying vocabulary the static
    analyzer (:mod:`repro.transform.lint.footprints`) decides from the
    AST; its ``TW010``/``TW011`` findings are the static counterparts
    of the locations returned here, and the cross-validation property
    tests assert a static safe verdict implies this list is empty.
    """
    violations: list[Hashable] = []
    for location, accesses in recorder.by_location.items():
        if not any(is_write for _point, is_write in accesses):
            continue  # read-only locations never carry dependences
        outer_indices = {point[0] for point, _is_write in accesses}
        if len(outer_indices) > 1:
            violations.append(location)
    return violations


def is_outer_parallel(recorder: FootprintRecorder) -> bool:
    """The paper's conservative soundness criterion (Section 3.3).

    True when different outer-recursion invocations are independent
    (see :func:`outer_parallel_violations`).  When this holds,
    recursion interchange — and therefore recursion twisting — is
    sound, and the outer recursion may be task-parallelized (§7.3).
    """
    return not outer_parallel_violations(recorder)

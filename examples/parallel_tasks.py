#!/usr/bin/env python
"""Task parallelism + twisting (Section 7.3), simulated.

The paper's recipe: because the outer recursion is parallel (the
Section 3.3 soundness criterion), its invocations can be spawned as
independent tasks; *within* each task, recursion twisting improves
locality — but once a task is twisted, its outer recursions are no
longer independent, so spawning happens first, twisting second.

This example spawns a Tree Join across simulated workers, runs each
task twisted on the worker's private cache hierarchy, and reports both
the parallel speedup (load balance) and the per-task locality win.

Run:  python examples/parallel_tasks.py
"""

from repro.core import CacheProbe, OpCounter, combine, run_task_parallel, task_spec
from repro.core.schedules import ORIGINAL, TWIST
from repro.kernels import TreeJoin
from repro.memory import AddressMap, layout_tree
from repro.memory.hierarchy import CacheHierarchy, LevelSpec


def worker_machine() -> CacheHierarchy:
    """Each simulated worker's private two-level cache."""
    return CacheHierarchy(
        [
            LevelSpec("L1", 16, ways=8).build(),
            LevelSpec("L2", 128, ways=8).build(),
        ]
    )


def make_task_runner(schedule, address_map):
    """A task-cost function: modeled cycles on a private hierarchy."""
    from repro.memory.costmodel import CostModel, WorkCost, weighted_instructions

    model = CostModel(hit_latencies=(4, 12), memory_latency=120)

    def run_task(task, instrument):
        machine = worker_machine()  # cold caches per task: conservative
        ops = OpCounter()
        cache = CacheProbe(address_map, machine)
        schedule.run(task_spec(task), instrument=combine(ops, cache, instrument))
        instructions = weighted_instructions(
            dict(ops.counts), ops.work_points, WorkCost(2.0)
        )
        return model.cycles(instructions, cache.cache_level_hits, cache.memory_accesses)

    return run_task


def main() -> None:
    workers = 4
    tj = TreeJoin(500, 500)
    address_map = AddressMap()
    layout_tree(address_map, tj.outer_root, "outer")
    layout_tree(address_map, tj.inner_root, "inner")

    results = {}
    for name, schedule in [("original", ORIGINAL), ("twisted", TWIST)]:
        spec = tj.make_spec()
        report = run_task_parallel(
            spec,
            num_workers=workers,
            spawn_depth=3,
            schedule=schedule,
            task_cycles=make_task_runner(schedule, address_map),
        )
        assert tj.result == tj.expected_total(), "parallel result wrong!"
        results[name] = report
        print(f"--- {name} tasks on {workers} workers ---")
        print(f"  tasks: {sum(len(w.tasks) for w in report.workers)}")
        print(f"  makespan (cycles):        {report.makespan:,.0f}")
        print(f"  parallel speedup:         {report.parallel_speedup:.2f}x "
              f"(load balance over {workers} workers)")

    locality_win = results["original"].makespan / results["twisted"].makespan
    print(f"\ntwisting inside tasks cuts the makespan another "
          f"{locality_win:.2f}x on top of parallelism")
    assert locality_win > 1.0


if __name__ == "__main__":
    main()

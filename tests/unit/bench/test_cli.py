"""Unit tests for the experiment CLI."""

import json

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_scale(self, capsys):
        assert main(["fig5", "--scale", "0"]) == 2

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "worked example" in out
        assert "inf, 10, 3, 3, 10, 3, 3" in out

    def test_fig5_scaled(self, capsys):
        assert main(["fig5", "--scale", "0.1"]) == 0
        assert "reuse distance r" in capsys.readouterr().out

    def test_sec42_scaled(self, capsys):
        assert main(["sec42", "--scale", "0.1"]) == 0
        assert "interchange" in capsys.readouterr().out

    def test_sec72_scaled(self, capsys):
        assert main(["sec72", "--scale", "0.4"]) == 0
        assert "twisted-3level" in capsys.readouterr().out

    def test_registry_complete(self):
        # Every paper artifact has a CLI entry.
        for expected in (
            "fig1", "fig5", "fig7", "fig8", "fig9", "fig10",
            "sec42", "sec61", "sec72", "sec73", "ablations", "wallclock",
        ):
            assert expected in EXPERIMENTS


class TestWallclockFilters:
    def _run(self, tmp_path, monkeypatch, capsys, *extra):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "wallclock",
                "--scale", "0.03",
                "--benchmark", "tj",
                "--repeats", "1",
                *extra,
            ]
        )
        return code, capsys.readouterr().out

    def test_filtered_sweep_runs_and_writes_json(
        self, tmp_path, monkeypatch, capsys
    ):
        code, out = self._run(
            tmp_path, monkeypatch, capsys,
            "--schedule", "twist",
            "--backend", "recursive", "--backend", "soa",
        )
        assert code == 0
        assert "TJ" in out
        payload = json.loads((tmp_path / "BENCH_soa.json").read_text())
        assert payload["backends"] == ["recursive", "soa"]
        entries = payload["results"]
        assert {e["benchmark"] for e in entries} == {"TJ"}
        assert {e["schedule"] for e in entries} == {"twist"}
        assert all(e["results_match"] for e in entries)

    def test_benchmark_names_are_case_insensitive_and_validated(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(
                ["wallclock", "--scale", "0.03", "--benchmark", "bogus"]
            )

    def test_backend_choices_are_restricted(self, capsys):
        with pytest.raises(SystemExit):
            main(["wallclock", "--backend", "fastest"])


class TestPerfFloorCommand:
    def test_listed(self, capsys):
        assert main(["list"]) == 0
        assert "perf-floor" in capsys.readouterr().out

    def test_delegates_to_gate(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(
            json.dumps(
                {
                    "results": [
                        {
                            "benchmark": "TJ",
                            "schedule": "twist",
                            "results_match": True,
                            "timings": {"recursive": 1.0, "auto": 0.9},
                        }
                    ]
                }
            )
        )
        assert main(["perf-floor", "--json", str(path)]) == 0
        assert "perf floor passed" in capsys.readouterr().out
        assert (
            main(["perf-floor", "--json", str(path), "--floor", "1.5"]) == 1
        )

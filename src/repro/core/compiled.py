"""The ``compiled`` backend: proof-gated fused traversal + kernel.

The SoA executors (:mod:`repro.core.soa_exec`) already traverse
integers, but their hot loop still pays per-block Python overhead:
every ``DEFAULT_BATCH_SIZE`` pairs the position lists cross the
interpreter into ``work_batch_soa``, which re-stages them into typed
arrays, re-resolves the payload columns through the view, and updates
captured state through attribute access.  For a spec whose TW20x
verdict is ``lowerable`` all of that is provably removable: the
traversal's emission sequence is a pure function of the (static) tree
shapes and the schedule, and the kernel is certified allocation-free
over typed gathers.

This backend exploits both facts:

* the **traversal** is evaluated once per (trees, schedule kind,
  storage order, cutoff) into two whole-run ``np.intp`` position
  arrays — original and interchange orders collapse to
  ``repeat``/``tile`` expressions, the twist order is produced by the
  same ``_run_twisted_bulk`` stack machine the SoA backend runs
  (collected instead of dispatched), so the pair sequence is
  bit-identical to the SoA backend's emission order;
* the **kernel** runs once over those arrays, as a fused artifact from
  :mod:`repro.transform.lower_codegen` (numba-jitted when numba is
  importable, generated NumPy otherwise), or — when the kernel falls
  outside the code generator's subset — as a single whole-run dispatch
  of the original ``work_batch_soa``.

One whole-run dispatch is within the ``work_batch_soa`` contract: the
kernel must be equivalent to per-pair ``work`` calls in order for *any*
block partition, so partitioning into one block is just the coarsest
legal choice.

Gating is proof-carrying: every entry point re-checks the TW20x
verdict (cached, so this is cheap) and raises
:class:`~repro.errors.ScheduleError` when the spec is not certified
``lowerable`` — ``backend="compiled"`` cannot run unproven code even
when requested explicitly.  Instrumented runs and truncating specs
delegate to the SoA executors (identical events by construction), so
``backend="sanitize"`` lockstep validation works unchanged.
"""

from __future__ import annotations

import sys
import weakref
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.core.batched import DEFAULT_BATCH_SIZE
from repro.core.instruments import NULL_INSTRUMENT, Instrument
from repro.core.soa_exec import (
    _bulk_eligible,
    _run_twisted_bulk,
    run_interchanged_soa,
    run_original_soa,
    run_twisted_soa,
)
from repro.core.spec import NestedRecursionSpec
from repro.errors import ScheduleError
from repro.spaces.soa import SoATree, soa_view
from repro.transform.lower_codegen import (
    FusedKernel,
    LoweringUnsupported,
    generate_fused_kernel,
)

__all__ = [
    "artifact_info",
    "compiled_artifact",
    "position_cache_info",
    "run_interchanged_compiled",
    "run_original_compiled",
    "run_twisted_compiled",
    "set_position_cache_limits",
]


# --------------------------------------------------------------------
# Proof gate


def _require_lowerable(spec: NestedRecursionSpec) -> None:
    """Raise unless the TW20x pass certifies ``spec`` as lowerable."""
    from repro.transform.lint.lower import LowerVerdict, lint_lower

    try:
        report = lint_lower(spec)
    except Exception as exc:
        raise ScheduleError(
            "backend='compiled' requires a TW20x 'lowerable' verdict, but "
            f"the lowerability analyzer failed on {spec.name or 'spec'}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if report.lower is not LowerVerdict.LOWERABLE:
        raise ScheduleError(
            "backend='compiled' requires a TW20x 'lowerable' verdict; "
            f"{spec.name or 'spec'} is {report.lower.value!r} "
            f"({report.lower_reason}).  Use backend='soa' or 'auto' instead."
        )


# --------------------------------------------------------------------
# Fused-artifact cache (per kernel family, not per spec instance)

_ARTIFACTS: dict = {}
#: Sentinel distinguishing "codegen declined" from "not yet tried".
_NO_ARTIFACT = object()


def compiled_artifact(spec: NestedRecursionSpec) -> Optional[FusedKernel]:
    """The fused artifact for this spec family, or None.

    ``None`` means the certified kernel falls outside the code
    generator's subset; the backend then runs the original
    ``work_batch_soa`` as a single whole-run dispatch (still fused
    traversal, still one dispatch).  Artifacts bind per call, so one
    cache entry serves every fresh spec the same benchmark produces.
    """
    from repro.transform.lint.backend import _spec_cache_key

    key = _spec_cache_key(spec)
    cached = _ARTIFACTS.get(key, _NO_ARTIFACT)
    if cached is not _NO_ARTIFACT:
        return cached
    try:
        artifact: Optional[FusedKernel] = generate_fused_kernel(spec.work_batch_soa)
    except LoweringUnsupported:
        artifact = None
    _ARTIFACTS[key] = artifact
    return artifact


def artifact_info(spec: NestedRecursionSpec) -> dict:
    """Diagnostic view of the compiled artifact (for bench/tests)."""
    artifact = compiled_artifact(spec)
    if artifact is None:
        return {"codegen": "fallback-dispatch", "jit": "numpy"}
    return {
        "codegen": "fused-source",
        "jit": artifact.jit,
        "jit_note": artifact.jit_note,
        "source": artifact.source,
    }


def clear_caches() -> None:
    """Drop cached artifacts and position arrays (test hook)."""
    _ARTIFACTS.clear()
    _POSITIONS.clear()


# --------------------------------------------------------------------
# Whole-run position arrays (per trees x schedule kind x order x cutoff)


class _Collector:
    """A PositionDispatcher stand-in that only accumulates."""

    __slots__ = ("_os", "_is")

    def __init__(self) -> None:
        self._os: list[int] = []
        self._is: list[int] = []

    def flush(self) -> None:  # pragma: no cover - trivially empty
        pass


_POSITIONS: "OrderedDict[tuple, tuple]" = OrderedDict()
#: Bounded twice over: each entry holds two O(mn) intp arrays, so an
#: unbounded cache across a bench sweep — or a resident service that
#: never exits — would hoard memory.  The entry cap bounds the count,
#: the byte cap bounds the footprint (a handful of large-tree entries
#: can dwarf dozens of small ones); eviction is LRU under both.
_POSITIONS_CAP = 8
_POSITIONS_MAX_BYTES = 256 * 1024 * 1024


def _positions_nbytes() -> int:
    return sum(
        rows.nbytes + cols.nbytes
        for _ref_o, _ref_i, rows, cols in _POSITIONS.values()
    )


def position_cache_info() -> dict:
    """Entry/byte usage of the position cache (for tests and stats)."""
    return {
        "entries": len(_POSITIONS),
        "bytes": _positions_nbytes(),
        "max_entries": _POSITIONS_CAP,
        "max_bytes": _POSITIONS_MAX_BYTES,
    }


def set_position_cache_limits(
    max_entries: Optional[int] = None, max_bytes: Optional[int] = None
) -> tuple[int, int]:
    """Adjust the cache bounds; returns the previous ``(max_entries, max_bytes)``.

    Limits apply on the next insertion (shrinking does not evict
    retroactively until something is cached).  Long-lived services can
    tighten these to match their memory budget.
    """
    global _POSITIONS_CAP, _POSITIONS_MAX_BYTES
    previous = (_POSITIONS_CAP, _POSITIONS_MAX_BYTES)
    if max_entries is not None:
        if max_entries < 1:
            raise ScheduleError("position cache needs max_entries >= 1")
        _POSITIONS_CAP = max_entries
    if max_bytes is not None:
        if max_bytes < 1:
            raise ScheduleError("position cache needs max_bytes >= 1")
        _POSITIONS_MAX_BYTES = max_bytes
    return previous


def _position_arrays(
    spec: NestedRecursionSpec,
    kind: str,
    order: str,
    cutoff: Optional[int] = None,
) -> tuple[SoATree, SoATree, np.ndarray, np.ndarray]:
    """(outer view, inner view, rows, cols) for one schedule kind.

    The returned arrays replay exactly the pair sequence the SoA
    backend's bulk fast path emits for the same schedule — ``original``
    and ``interchange`` are closed forms over rank space (rank space is
    pre-order, so visit order equals rank order), ``twist`` is the SoA
    stack machine itself run into a collector.
    """
    outer = soa_view(spec.outer_root, order)
    inner = soa_view(spec.inner_root, order)
    key = (id(spec.outer_root), id(spec.inner_root), kind, order, cutoff)
    hit = _POSITIONS.get(key)
    if hit is not None:
        ref_o, ref_i, rows, cols = hit
        if ref_o() is spec.outer_root and ref_i() is spec.inner_root:
            _POSITIONS.move_to_end(key)
            return outer, inner, rows, cols
        del _POSITIONS[key]
    o_pos = np.asarray(outer.rank_pos_list, dtype=np.intp)
    i_pos = np.asarray(inner.rank_pos_list, dtype=np.intp)
    n_o, n_i = outer.num_nodes, inner.num_nodes
    if kind == "original":
        # Outer pre-order, whole inner pre-order per outer node.
        rows = np.repeat(o_pos, n_i)
        cols = np.tile(i_pos, n_o)
    elif kind == "interchange":
        # Inner pre-order, whole outer pre-order per inner node.
        rows = np.tile(o_pos, n_i)
        cols = np.repeat(i_pos, n_o)
    elif kind == "twist":
        collector = _Collector()
        _run_twisted_bulk(collector, True, outer, inner, cutoff, sys.maxsize)
        rows = np.asarray(collector._os, dtype=np.intp)
        cols = np.asarray(collector._is, dtype=np.intp)
    else:  # pragma: no cover - internal misuse
        raise ScheduleError(f"unknown compiled schedule kind {kind!r}")
    _POSITIONS[key] = (
        weakref.ref(spec.outer_root),
        weakref.ref(spec.inner_root),
        rows,
        cols,
    )
    while _POSITIONS and (
        len(_POSITIONS) > _POSITIONS_CAP
        or _positions_nbytes() > _POSITIONS_MAX_BYTES
    ):
        _POSITIONS.popitem(last=False)
    return outer, inner, rows, cols


def _dispatch(
    spec: NestedRecursionSpec,
    outer: SoATree,
    inner: SoATree,
    rows: np.ndarray,
    cols: np.ndarray,
) -> None:
    """Run the whole cross product in one fused (or direct) dispatch."""
    artifact = compiled_artifact(spec)
    if artifact is not None:
        artifact.call(spec.work_batch_soa, outer, inner, rows, cols)
    else:
        spec.work_batch_soa(outer, inner, rows, cols)


# --------------------------------------------------------------------
# Entry points (signatures mirror the SoA runners)


def run_original_compiled(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    order: str = "preorder",
) -> None:
    """Compiled counterpart of :func:`repro.core.soa_exec.run_original_soa`."""
    _require_lowerable(spec)
    ins = instrument or NULL_INSTRUMENT
    if not _bulk_eligible(spec, ins):
        # Instrumented (or truncating) runs delegate to the SoA
        # executor: identical events, identical results, and the
        # sanitize lockstep phases stay meaningful.
        run_original_soa(
            spec, instrument=instrument, batch_size=batch_size, order=order
        )
        return
    outer, inner, rows, cols = _position_arrays(spec, "original", order)
    _dispatch(spec, outer, inner, rows, cols)


def run_interchanged_compiled(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
    use_counters: bool = False,
    subtree_truncation: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
    order: str = "preorder",
) -> None:
    """Compiled counterpart of :func:`repro.core.soa_exec.run_interchanged_soa`."""
    _require_lowerable(spec)
    ins = instrument or NULL_INSTRUMENT
    if not _bulk_eligible(spec, ins):
        run_interchanged_soa(
            spec,
            instrument=instrument,
            use_counters=use_counters,
            subtree_truncation=subtree_truncation,
            batch_size=batch_size,
            order=order,
        )
        return
    outer, inner, rows, cols = _position_arrays(spec, "interchange", order)
    _dispatch(spec, outer, inner, rows, cols)


def run_twisted_compiled(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
    cutoff: Optional[int] = None,
    use_counters: bool = False,
    subtree_truncation: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
    order: str = "preorder",
) -> None:
    """Compiled counterpart of :func:`repro.core.soa_exec.run_twisted_soa`."""
    _require_lowerable(spec)
    ins = instrument or NULL_INSTRUMENT
    if not _bulk_eligible(spec, ins):
        run_twisted_soa(
            spec,
            instrument=instrument,
            cutoff=cutoff,
            use_counters=use_counters,
            subtree_truncation=subtree_truncation,
            batch_size=batch_size,
            order=order,
        )
        return
    outer, inner, rows, cols = _position_arrays(spec, "twist", order, cutoff)
    _dispatch(spec, outer, inner, rows, cols)

"""Unit tests for the dual-tree -> nested-recursion lowering."""

import numpy as np
import pytest

from repro.core import OpCounter, WorkRecorder, run_original
from repro.dualtree import (
    PointCorrelationRules,
    build_kdtree,
    dual_tree_footprint,
    dual_tree_spec,
)
from repro.spaces import clustered_points


@pytest.fixture
def setup():
    pts = clustered_points(100, seed=6)
    query = build_kdtree(pts, leaf_size=4)
    reference = build_kdtree(pts, leaf_size=4)
    rules = PointCorrelationRules(query, reference, radius=0.05)
    return query, reference, rules


class TestSpecShape:
    def test_spec_is_irregular(self, setup):
        query, reference, rules = setup
        spec = dual_tree_spec(query, reference, rules)
        assert spec.is_irregular
        assert spec.outer_root is query.root
        assert spec.inner_root is reference.root

    def test_internal_query_nodes_truncate_immediately(self, setup):
        query, reference, rules = setup
        spec = dual_tree_spec(query, reference, rules)
        internal = next(n for n in query.root.iter_preorder() if not n.is_leaf)
        assert spec.truncate_inner2(internal, reference.root) is True

    def test_leaf_scoring_delegates_to_rules(self, setup):
        query, reference, rules = setup
        spec = dual_tree_spec(query, reference, rules)
        leaf = query.leaves()[0]
        assert spec.truncate_inner2(leaf, reference.root) == rules.score(
            leaf, reference.root
        )


class TestExecution:
    def test_work_points_are_leaf_rows(self, setup):
        query, reference, rules = setup
        spec = dual_tree_spec(query, reference, rules)
        seen_outer = set()

        from repro.core import WorkCallback

        run_original(spec, instrument=WorkCallback(lambda o, i: seen_outer.add(o)))
        assert all(o.is_leaf for o in seen_outer)

    def test_base_case_bounded_by_all_pairs(self, setup):
        query, reference, rules = setup
        spec = dual_tree_spec(query, reference, rules)
        run_original(spec)
        assert 0 < rules.count <= 100 * 100

    def test_base_case_fires_exactly_at_reference_leaves(self, setup):
        query, reference, _rules = setup
        fired = []

        class CountingRules(PointCorrelationRules):
            def base_case(self, q, r):
                fired.append((q, r))
                super().base_case(q, r)

        counting = CountingRules(query, reference, radius=0.05)
        run_original(dual_tree_spec(query, reference, counting))
        assert fired, "no base cases at all?"
        assert all(q.is_leaf and r.is_leaf for q, r in fired)


class TestFootprint:
    def test_leaf_leaf_touches_best_and_refs(self, setup):
        query, reference, rules = setup
        footprint = dual_tree_footprint(rules)
        q_leaf, r_leaf = query.leaves()[0], reference.leaves()[0]
        touches = footprint(q_leaf, r_leaf)
        writes = [loc for loc, is_write in touches if is_write]
        reads = [loc for loc, is_write in touches if not is_write]
        assert len(writes) == q_leaf.count
        assert len(reads) == r_leaf.count

    def test_internal_reference_is_empty(self, setup):
        query, reference, rules = setup
        footprint = dual_tree_footprint(rules)
        internal = next(n for n in reference.root.iter_preorder() if not n.is_leaf)
        assert footprint(query.leaves()[0], internal) == []

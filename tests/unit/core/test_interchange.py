"""Unit tests for recursion interchange (Figure 3 + Section 4 flags)."""

import pytest

from repro.core import (
    NestedRecursionSpec,
    OpCounter,
    WorkRecorder,
    run_interchanged,
    run_original,
)
from repro.spaces import balanced_tree, paper_inner_tree, paper_outer_tree


def paper_spec(**kwargs):
    return NestedRecursionSpec(paper_outer_tree(), paper_inner_tree(), **kwargs)


class TestRegularInterchange:
    def test_row_major_enumeration(self):
        recorder = WorkRecorder()
        run_interchanged(paper_spec(), instrument=recorder)
        expected = [(o, i) for i in range(1, 8) for o in "ABCDEFG"]
        assert recorder.points == expected

    def test_same_iterations_as_original(self):
        original, interchanged = WorkRecorder(), WorkRecorder()
        spec = paper_spec()
        run_original(spec, instrument=original)
        run_interchanged(spec, instrument=interchanged)
        assert set(original.points) == set(interchanged.points)

    def test_per_outer_row_order_preserved(self):
        # Intra-traversal dependences (Section 3.3): for each outer
        # node, the inner visit order must match the original.
        spec = paper_spec()
        original, interchanged = WorkRecorder(), WorkRecorder()
        run_original(spec, instrument=original)
        run_interchanged(spec, instrument=interchanged)
        for outer_label in "ABCDEFG":
            row_original = [i for o, i in original.points if o == outer_label]
            row_interchanged = [i for o, i in interchanged.points if o == outer_label]
            assert row_original == row_interchanged


class TestIrregularInterchange:
    def truncation(self, o, i):
        return o.label == "B" and i.label == 2

    def test_flags_suppress_implicitly_skipped_points(self):
        spec = paper_spec(truncate_inner2=self.truncation)
        original, interchanged = WorkRecorder(), WorkRecorder()
        run_original(spec, instrument=original)
        run_interchanged(spec, instrument=interchanged)
        assert set(original.points) == set(interchanged.points)
        assert ("B", 3) not in set(interchanged.points)

    def test_flag_is_unset_after_subtree(self):
        # (B,5) must execute: node 5 is outside 2's subtree, so the
        # flag set at (B,2) has to be released by then (Figure 6b's
        # unTrunc bookkeeping).
        spec = paper_spec(truncate_inner2=self.truncation)
        recorder = WorkRecorder()
        run_interchanged(spec, instrument=recorder)
        assert ("B", 5) in set(recorder.points)

    def test_flags_cleaned_up_after_run(self):
        spec = paper_spec(truncate_inner2=self.truncation)
        run_interchanged(spec)
        for node in spec.outer_root.iter_preorder():
            assert node.trunc is False

    def test_counter_mode_equivalent(self):
        spec = paper_spec(truncate_inner2=self.truncation)
        flags, counters = WorkRecorder(), WorkRecorder()
        run_interchanged(spec, instrument=flags)
        run_interchanged(spec, instrument=counters, use_counters=True)
        assert flags.points == counters.points

    def test_counter_mode_has_no_unset_ops(self):
        spec = paper_spec(truncate_inner2=self.truncation)
        ops = OpCounter()
        run_interchanged(spec, instrument=ops, use_counters=True)
        assert ops.counts["flag_unset"] == 0
        assert ops.counts["counter_set"] >= 1

    def test_full_cross_product_visited(self):
        # Interchange cannot truncate: all 49 points are visited even
        # though only 46 execute (the Section 4.2 work explosion).
        spec = paper_spec(truncate_inner2=self.truncation)
        ops = OpCounter()
        run_interchanged(spec, instrument=ops)
        assert ops.counts["visit"] == 49
        assert ops.work_points == 46


class TestSubtreeTruncation:
    def test_cuts_off_fully_truncated_regions(self):
        # Truncate EVERY outer node at inner node 2: the whole subtree
        # of 2 can then be skipped by the swapped recursion.
        spec = paper_spec(truncate_inner2=lambda o, i: i.label == 2)
        plain, subtree = OpCounter(), OpCounter()
        run_interchanged(spec, instrument=plain)
        run_interchanged(spec, instrument=subtree, subtree_truncation=True)
        assert subtree.counts["visit"] < plain.counts["visit"]
        # Both execute the same set of iterations.
        assert subtree.work_points == plain.work_points == 7 * 4

    def test_results_unchanged(self):
        spec = paper_spec(truncate_inner2=lambda o, i: i.label == 2)
        a, b = WorkRecorder(), WorkRecorder()
        run_interchanged(spec, instrument=a)
        run_interchanged(spec, instrument=b, subtree_truncation=True)
        assert set(a.points) == set(b.points)

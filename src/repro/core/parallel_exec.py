"""Real multi-core task parallelism over shared-memory SoA trees (§7.3).

:mod:`repro.core.parallel` *models* the paper's Section 7.3 recipe —
spawn independent outer subtrees as tasks, twist only inside tasks —
on simulated workers.  This module executes the same decomposition on
hardware:

* the **process engine** publishes the spec's finalized input arrays
  (packed SoA payload/topology columns, matrices, point sets) once via
  ``multiprocessing.shared_memory``; workers attach zero-copy and
  rebuild the spec locally from a module-level *worker factory*, so a
  task submission ships only ``(outer_rank, schedule, order)``
  descriptors — never pickled trees;
* the **thread engine** runs the identical chunk runner on
  ``ThreadPoolExecutor`` workers sharing the parent's arrays directly,
  the right choice when ``work_batch_soa`` kernels spend their time in
  GIL-releasing NumPy calls.

Both engines reuse the simulated runtime's machinery unchanged: the
spawn decomposition (:func:`~repro.core.parallel.spawn_tasks`), the
LPT placement (:func:`~repro.core.parallel.lpt_assign`), and the
single-node-view task restriction
(:func:`~repro.core.parallel.task_spec`) — a measured run executes
exactly the task layout the simulation modeled.  Whatever ``schedule``
the caller picks is applied *inside* each task, per the paper's "once
recursion twisting is applied, it is no longer sound to treat outer
recursions as independent" — twisting across tasks is unrepresentable
here by construction.

Outputs come back through declared
:class:`~repro.spaces.soa.ResultColumn` s: ``shared`` columns are
written in place at disjoint slots (MM's output cells, per-query
neighbor state), ``sum`` columns are worker-private and reduced in the
parent in deterministic worker order.  Together with the per-query
ordering argument of Section 3.3 (each query's inner-traversal order
is preserved within its one owning task), this makes parallel results
**bit-identical** to serial execution — the integration tests assert
it on all six benchmarks and across engines.

Parallelism is *refused* unless outer-independence is proven: the plan
carries a witness (a small probe instance plus its soundness
footprint), and :func:`check_outer_independence` runs it once under
:class:`~repro.core.soundness.FootprintRecorder`, accepting only when
:func:`~repro.core.soundness.outer_parallel_violations` is empty —
the same write-keyed-by-outer-index criterion the static analyzer's
TW030 diagnostic decides from the AST.  ``allow_unproven=True`` is the
explicit override, as elsewhere in the backend selector.
"""

from __future__ import annotations

import importlib
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.core.parallel import (
    Task,
    _real_node,
    _single_node_view,
    _SingleNodeView,
    auto_spawn_depth,
    lpt_assign,
    spawn_tasks,
    task_spec,
)
from repro.core.schedules import ORIGINAL, Schedule, get_schedule
from repro.core.soundness import (
    Footprint,
    FootprintRecorder,
    outer_parallel_violations,
)
from repro.core.spec import NestedRecursionSpec
from repro.errors import ParallelWorkerError, ScheduleError
from repro.spaces.soa import (
    ResultColumn,
    SharedArrayHandle,
    SharedPublication,
    attach_shared_arrays,
    attach_shared_arrays_cached,
    close_shared_segments,
    export_shared_arrays,
    reduce_sum_columns,
)

#: Engines this module provides (the simulated one lives in
#: :mod:`repro.core.parallel`).
REAL_ENGINES = ("process", "thread")

#: Executor families a task may run on inside a worker.
TASK_BACKENDS = ("recursive", "batched", "soa", "auto")


@dataclass
class ParallelPlan:
    """How the real runtime rebuilds one spec inside workers.

    Attached to a spec as ``spec.parallel_plan`` by the benchmark's
    ``make_spec``.  Everything a worker needs is picklable
    (``factory`` is a dotted path, ``arrays`` travel as shared-memory
    handles); everything parent-side (``apply``, ``make_probe``) never
    crosses the process boundary.

    ``factory`` — ``"package.module:function"`` resolving to::

        factory(arrays, params, results) -> spec
        factory(arrays, params, results) -> (spec, finish)

    where ``arrays`` are the attached input arrays, ``params`` the
    plan's picklable parameters, and ``results`` maps every declared
    result column to its array (shared columns: the one published
    array; sum columns: this worker's private accumulator).  The
    optional ``finish(ran)`` hook is called once after the worker's
    chunk with the list of ``(outer_node, was_single_node_view)``
    pairs it executed — for factories that materialize shared columns
    from richer local state (e.g. k-NN candidate lists).

    ``apply`` — parent-side write-back: receives the fully reduced
    ``{column name: array}`` dict and absorbs it into the live
    benchmark state, so ``case.result()`` probes read parallel results
    exactly as they read serial ones.

    ``make_probe`` — the independence witness: builds a *small* fresh
    instance of the same computation and returns ``(probe_spec,
    footprint)`` for :func:`check_outer_independence`.  ``None`` means
    unproven, and the parallel backend refuses the spec.

    ``witness_key`` — cache key for the witness verdict (one probe run
    per benchmark family per session); defaults to ``factory``.
    """

    factory: str
    arrays: dict[str, np.ndarray]
    params: dict
    results: tuple[ResultColumn, ...]
    apply: Callable[[dict[str, np.ndarray]], None]
    make_probe: Optional[
        Callable[[], tuple[NestedRecursionSpec, Footprint]]
    ] = None
    witness_key: str = ""

    def __post_init__(self) -> None:
        if ":" not in self.factory:
            raise ScheduleError(
                f"parallel plan factory {self.factory!r} must be a "
                "'package.module:function' dotted path"
            )
        if not self.witness_key:
            self.witness_key = self.factory


@dataclass
class ParallelExecReport:
    """Outcome of one real parallel execution.

    The vocabulary mirrors the simulated
    :class:`~repro.core.parallel.ParallelReport` — ``makespan`` /
    ``parallel_speedup`` — but measured in wall-clock seconds on real
    workers instead of modeled cycles.
    """

    engine: str
    num_workers: int
    spawn_depth: int
    schedule: str
    #: tasks per worker chunk, in worker order
    task_counts: list[int]
    #: busy seconds per worker chunk (attach + rebuild excluded)
    worker_seconds: list[float]
    #: parent-observed wall seconds for the whole run (includes
    #: publication, pool startup, and reduction)
    wall_seconds: float
    #: executor family the tasks ran on
    task_backend: str = "auto"

    @property
    def num_tasks(self) -> int:
        """Total spawned tasks."""
        return sum(self.task_counts)

    @property
    def makespan(self) -> float:
        """Slowest worker chunk's busy seconds."""
        return max(self.worker_seconds, default=0.0)

    @property
    def total_seconds(self) -> float:
        """Sum of all workers' busy seconds (serial-equivalent time)."""
        return sum(self.worker_seconds)

    @property
    def parallel_speedup(self) -> float:
        """total busy time / makespan: the load-balance-limited speedup."""
        if self.makespan == 0:
            return float("inf")
        return self.total_seconds / self.makespan


# One witness run per benchmark family per session.
_INDEPENDENCE_CACHE: dict[str, tuple[bool, str]] = {}


def _static_independence_proof(spec) -> Optional[tuple[bool, str]]:
    """Try the TW21x static proof; ``None`` means "use the probe".

    Delegates to :func:`repro.transform.lint.lower.static_independence`
    — the affine-footprint pass over the typed kernel IR.  Only a full
    ``independent`` verdict short-circuits the dynamic witness; a
    ``needs-runtime-check`` or even ``dependent`` verdict falls back
    to the probe, which remains the authoritative oracle (the static
    pass is deliberately conservative, never the other way around).
    Any analyzer failure degrades silently to the dynamic path.
    """
    try:
        from repro.transform.lint.lower import static_independence

        verdict, reason = static_independence(spec)
    except Exception:  # pragma: no cover - defensive: probe still runs
        return None
    if verdict != "independent":
        return None
    return (
        True,
        f"outer recursion proven parallel statically: {reason} "
        "(TW21x affine-footprint proof; no warm-up probe)",
    )


def check_outer_independence(
    plan: ParallelPlan, spec=None, use_cache: bool = True
) -> tuple[bool, str]:
    """Prove (or refute) the §3.3 criterion for one plan.

    When the owning ``spec`` is supplied, the static TW21x
    independence pass runs first: an ``independent`` verdict is
    accepted outright, with **zero** warm-up runs.  Otherwise — no
    spec, analyzer failure, or any weaker verdict — the plan's witness
    probe runs serially under a
    :class:`~repro.core.soundness.FootprintRecorder` and is accepted
    iff :func:`~repro.core.soundness.outer_parallel_violations` is
    empty — i.e. every written location is keyed by the outer index,
    the exact property the static analyzer's TW030 diagnostic checks.
    Verdicts are cached per ``witness_key``, so the proof (static or
    dynamic) is discharged once per benchmark family.
    """
    if use_cache and plan.witness_key in _INDEPENDENCE_CACHE:
        return _INDEPENDENCE_CACHE[plan.witness_key]
    if spec is not None:
        static = _static_independence_proof(spec)
        if static is not None:
            _INDEPENDENCE_CACHE[plan.witness_key] = static
            return static
    if plan.make_probe is None:
        verdict = (
            False,
            "plan carries no independence witness (make_probe is None), "
            "so outer-independence (the TW030 property) is unproven",
        )
    else:
        probe_spec, footprint = plan.make_probe()
        recorder = FootprintRecorder(footprint)
        ORIGINAL.run(probe_spec, instrument=recorder, backend="recursive")
        violations = outer_parallel_violations(recorder)
        if violations:
            verdict = (
                False,
                f"outer-independence refuted on the witness run: "
                f"{len(violations)} location(s) written from multiple "
                f"outer indices, e.g. {violations[0]!r} (the dynamic "
                f"counterpart of TW030)",
            )
        else:
            verdict = (
                True,
                f"outer recursion proven parallel on the witness run "
                f"({recorder.num_work_points} work points, "
                f"{len(recorder.by_location)} locations, all writes keyed "
                f"by the outer index)",
            )
    _INDEPENDENCE_CACHE[plan.witness_key] = verdict
    return verdict


def _resolve_factory(dotted: str) -> Callable:
    module_name, _, attribute = dotted.partition(":")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attribute)
    except AttributeError:
        raise ScheduleError(
            f"parallel worker factory {dotted!r} does not exist"
        ) from None


def _execute_chunk(
    arrays: dict[str, np.ndarray],
    shared_results: dict[str, np.ndarray],
    payload: dict,
) -> dict:
    """Run one worker's task chunk; shared by both engines.

    Rebuilds the spec through the plan's factory, executes each task
    descriptor under the requested schedule/backend, runs the
    factory's ``finish`` hook, and returns the chunk's busy seconds
    plus its private sum-column accumulators.  Any failure is
    re-raised as a picklable :class:`~repro.errors.ParallelWorkerError`
    carrying the original traceback.
    """
    try:
        factory = _resolve_factory(payload["factory"])
        sums = {column.name: column.allocate() for column in payload["sum_columns"]}
        results = dict(shared_results)
        results.update(sums)
        built = factory(arrays, payload["params"], results)
        spec, finish = built if isinstance(built, tuple) else (built, None)
        schedule = get_schedule(payload["schedule"])
        preorder = list(spec.outer_root.iter_preorder())
        ran: list[tuple[Any, bool]] = []
        start = time.perf_counter()
        for rank, is_view in payload["descriptors"]:
            node = preorder[rank]
            outer = _single_node_view(node) if is_view else node
            task = Task(outer_root=outer, spec=spec)
            schedule.run(
                task_spec(task),
                backend=payload["task_backend"],
                order=payload["order"],
            )
            ran.append((node, is_view))
        if finish is not None:
            finish(ran)
        seconds = time.perf_counter() - start
        return {"seconds": seconds, "sums": sums}
    except ParallelWorkerError:
        raise
    except BaseException as exc:
        raise ParallelWorkerError(
            f"task chunk failed in worker: {type(exc).__name__}: {exc}",
            traceback.format_exc(),
        ) from None


def _execute_chunk_process(payload: dict) -> dict:
    """Process-engine worker entry: attach shared memory, run, detach.

    Workers close their segments but never unlink (the parent owns the
    segments' lifetime); attached handles are already unregistered
    from the resource tracker by :func:`attach_shared_arrays`, so a
    worker exiting cannot destroy the parent's data.
    """
    arrays, input_segments = attach_shared_arrays(payload["input_handles"])
    shared_results, result_segments = attach_shared_arrays(
        payload["result_handles"]
    )
    try:
        return _execute_chunk(arrays, shared_results, payload)
    finally:
        # NumPy views created by the rebuilt spec may still pin the
        # buffers (close then raises BufferError, which the helper
        # swallows); the mapping is reclaimed at worker exit either
        # way, and only the parent's unlink removes the /dev/shm name.
        close_shared_segments(input_segments, unlink=False)
        close_shared_segments(result_segments, unlink=False)


def _execute_chunk_pooled(payload: dict) -> dict:
    """Persistent-pool worker entry: cached attach for resident inputs.

    Input arrays belong to a long-lived :class:`SharedPublication` and
    are attached once per worker via the soa-level attachment cache;
    result columns are per-run and attach/close normally.  Workers
    still never unlink — only the pool owner's ``close()`` removes the
    ``/dev/shm`` names.
    """
    arrays = attach_shared_arrays_cached(payload["input_handles"])
    shared_results, result_segments = attach_shared_arrays(
        payload["result_handles"]
    )
    try:
        return _execute_chunk(arrays, shared_results, payload)
    finally:
        close_shared_segments(result_segments, unlink=False)


class PersistentWorkerPool:
    """Publish-once input arrays plus a long-lived process pool.

    The one-shot process engine pays three fixed costs on every call:
    exporting the input arrays to shared memory, spawning a fresh
    ``ProcessPoolExecutor``, and tearing both down.  A resident service
    executes thousands of batches against the *same* finalized arrays,
    so this pool hoists all three: the arrays are published once into a
    :class:`~repro.spaces.soa.SharedPublication`, workers are spawned
    once and attach zero-copy through the per-worker attachment cache,
    and only per-run result columns cross the boundary per call.

    A crashed worker breaks the executor, not the pool: ``reset()``
    discards the broken executor while the publication survives
    (workers never unlink), and the next submission spawns a fresh one.
    ``close()`` is idempotent and unlinks the publication; an abandoned
    pool is cleaned up by the publication's own finalizer.
    """

    def __init__(
        self,
        arrays: dict[str, np.ndarray],
        max_workers: Optional[int] = None,
    ) -> None:
        self._source = dict(arrays)
        self.publication = SharedPublication.publish(self._source)
        self.max_workers = max_workers or os.cpu_count() or 1
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def input_handles(self) -> list[SharedArrayHandle]:
        """Handles of the resident publication, for task payloads."""
        return self.publication.handles

    def matches(self, arrays: dict[str, np.ndarray]) -> bool:
        """True iff ``arrays`` are the exact objects published here."""
        if set(arrays) != set(self._source):
            return False
        return all(arrays[name] is self._source[name] for name in arrays)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self.publication.closed:
            raise ScheduleError("persistent worker pool is closed")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def submit_chunk(self, payload: dict):
        """Submit one chunk payload against the resident publication."""
        payload["input_handles"] = self.publication.handles
        return self._ensure_executor().submit(_execute_chunk_pooled, payload)

    def reset(self) -> None:
        """Discard the (possibly broken) executor; keep the arrays."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Shut the executor down and unlink the publication."""
        self.reset()
        self.publication.close()

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _run_pooled_engine(
    pool: PersistentWorkerPool,
    plan: ParallelPlan,
    chunk_descriptors: list[list[tuple[int, bool]]],
    schedule_name: str,
    order: str,
    task_backend: str,
    sum_columns: tuple[ResultColumn, ...],
    shared_columns: tuple[ResultColumn, ...],
    num_workers: int,
) -> tuple[list[Optional[dict]], dict[str, np.ndarray]]:
    """Fan out on a persistent pool; only result columns are per-run."""
    if not pool.matches(plan.arrays):
        raise ScheduleError(
            "persistent worker pool was published from different arrays "
            "than this spec's parallel plan; build the pool from "
            "plan.arrays (or reuse the same benchmark instance)"
        )
    from concurrent.futures.process import BrokenProcessPool

    segments: list = []
    try:
        result_handles, result_segments = export_shared_arrays(
            {column.name: column.allocate() for column in shared_columns}
        )
        segments.extend(result_segments)
        parent_views = {
            handle.name: np.ndarray(
                handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf
            )
            for handle, segment in zip(result_handles, result_segments)
        }
        outs: list[Optional[dict]] = [None] * len(chunk_descriptors)
        futures = {}
        for index, descriptors in enumerate(chunk_descriptors):
            if not descriptors:
                continue
            payload = _chunk_payload(
                plan, descriptors, schedule_name, order, task_backend,
                sum_columns,
            )
            payload["result_handles"] = result_handles
            futures[index] = pool.submit_chunk(payload)
        try:
            for index, future in futures.items():
                outs[index] = future.result()
        except BrokenProcessPool as exc:
            pool.reset()
            raise ParallelWorkerError(
                "persistent pool worker died mid-chunk; the executor was "
                "reset (resident arrays survive) — resubmit the batch",
                str(exc),
            ) from None
        shared_out = {
            name: np.array(view, copy=True)
            for name, view in parent_views.items()
        }
        del parent_views
        return outs, shared_out
    finally:
        close_shared_segments(segments, unlink=True)


def _chunk_payload(
    plan: ParallelPlan,
    descriptors: list[tuple[int, bool]],
    schedule_name: str,
    order: str,
    task_backend: str,
    sum_columns: tuple[ResultColumn, ...],
) -> dict:
    return {
        "factory": plan.factory,
        "params": plan.params,
        "descriptors": descriptors,
        "schedule": schedule_name,
        "order": order,
        "task_backend": task_backend,
        "sum_columns": sum_columns,
    }


def _run_process_engine(
    plan: ParallelPlan,
    chunk_descriptors: list[list[tuple[int, bool]]],
    schedule_name: str,
    order: str,
    task_backend: str,
    sum_columns: tuple[ResultColumn, ...],
    shared_columns: tuple[ResultColumn, ...],
    num_workers: int,
) -> tuple[list[Optional[dict]], dict[str, np.ndarray]]:
    """Publish, fan out, reduce — with unconditional segment teardown."""
    segments: list = []
    try:
        input_handles, input_segments = export_shared_arrays(plan.arrays)
        segments.extend(input_segments)
        result_handles, result_segments = export_shared_arrays(
            {column.name: column.allocate() for column in shared_columns}
        )
        segments.extend(result_segments)
        parent_views = {
            handle.name: np.ndarray(
                handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf
            )
            for handle, segment in zip(result_handles, result_segments)
        }
        live = sum(1 for descriptors in chunk_descriptors if descriptors)
        outs: list[Optional[dict]] = [None] * len(chunk_descriptors)
        with ProcessPoolExecutor(max_workers=max(1, min(num_workers, live))) as pool:
            futures = {}
            for index, descriptors in enumerate(chunk_descriptors):
                if not descriptors:
                    continue
                payload = _chunk_payload(
                    plan, descriptors, schedule_name, order, task_backend,
                    sum_columns,
                )
                payload["input_handles"] = input_handles
                payload["result_handles"] = result_handles
                futures[index] = pool.submit(_execute_chunk_process, payload)
            for index, future in futures.items():
                outs[index] = future.result()
        shared_out = {
            name: np.array(view, copy=True)
            for name, view in parent_views.items()
        }
        del parent_views
        return outs, shared_out
    finally:
        close_shared_segments(segments, unlink=True)


def _run_thread_engine(
    plan: ParallelPlan,
    chunk_descriptors: list[list[tuple[int, bool]]],
    schedule_name: str,
    order: str,
    task_backend: str,
    sum_columns: tuple[ResultColumn, ...],
    shared_columns: tuple[ResultColumn, ...],
    num_workers: int,
) -> tuple[list[Optional[dict]], dict[str, np.ndarray]]:
    """Same chunk runner, same-process workers, direct array sharing."""
    shared_arrays = {
        column.name: column.allocate() for column in shared_columns
    }
    live = sum(1 for descriptors in chunk_descriptors if descriptors)
    outs: list[Optional[dict]] = [None] * len(chunk_descriptors)
    with ThreadPoolExecutor(max_workers=max(1, min(num_workers, live))) as pool:
        futures = {}
        for index, descriptors in enumerate(chunk_descriptors):
            if not descriptors:
                continue
            payload = _chunk_payload(
                plan, descriptors, schedule_name, order, task_backend,
                sum_columns,
            )
            futures[index] = pool.submit(
                _execute_chunk, plan.arrays, shared_arrays, payload
            )
        for index, future in futures.items():
            outs[index] = future.result()
    return outs, shared_arrays


def run_parallel(
    spec: NestedRecursionSpec,
    schedule: Schedule = ORIGINAL,
    *,
    engine: str = "process",
    max_workers: Optional[int] = None,
    spawn_depth: Optional[int] = None,
    order: str = "preorder",
    task_backend: str = "auto",
    allow_unproven: bool = False,
    pool: Optional[PersistentWorkerPool] = None,
) -> ParallelExecReport:
    """Execute a spec on real workers via its parallel plan.

    Passing ``pool`` (a :class:`PersistentWorkerPool` published from
    the plan's arrays) runs the process engine against resident
    workers: no per-call export, no per-call executor spawn.  The pool
    outlives the call; the caller owns its ``close()``.

    ``spawn_depth=None`` (the default) engages the autotuner:
    :func:`~repro.core.parallel.auto_spawn_depth` grows the depth
    until there are ~4 tasks per worker, capped by LPT cost balance.
    ``schedule`` is applied *inside* each task; ``order`` is the SoA
    linearization tasks use; ``task_backend`` picks the executor
    family per task (``"auto"`` probes each task's restricted spec).

    Refuses to parallelize unless the plan's witness proves
    outer-independence (:func:`check_outer_independence`);
    ``allow_unproven=True`` overrides, for callers who discharged the
    proof themselves.  On any worker failure every shared-memory
    segment is closed and unlinked before the original traceback
    propagates as a :class:`~repro.errors.ParallelWorkerError`.
    """
    if engine not in REAL_ENGINES:
        raise ScheduleError(
            f"unknown parallel engine {engine!r}; known: {list(REAL_ENGINES)} "
            "(the simulated engine lives in run_task_parallel)"
        )
    if pool is not None and engine != "process":
        raise ScheduleError(
            "a persistent worker pool implies the process engine; "
            f"got engine={engine!r}"
        )
    if task_backend not in TASK_BACKENDS:
        raise ScheduleError(
            f"unknown task backend {task_backend!r}; known: "
            f"{list(TASK_BACKENDS)}"
        )
    plan = spec.parallel_plan
    if plan is None:
        raise ScheduleError(
            f"spec {spec.name!r} carries no parallel plan; the real "
            "engines need shared input arrays and a worker factory "
            "(see repro.core.parallel_exec.ParallelPlan)"
        )
    if not allow_unproven:
        proven, why = check_outer_independence(plan, spec)
        if not proven:
            raise ScheduleError(
                f"parallelism refused for {spec.name!r}: {why}; pass "
                "allow_unproven=True only after discharging "
                "outer-independence yourself"
            )
    num_workers = max_workers if max_workers is not None else os.cpu_count() or 1
    if num_workers < 1:
        raise ScheduleError(f"max_workers must be >= 1, got {num_workers}")
    depth = (
        auto_spawn_depth(spec, num_workers)
        if spawn_depth is None
        else spawn_depth
    )
    tasks = spawn_tasks(spec, depth)
    chunks = lpt_assign(tasks, num_workers)
    rank_of = {
        id(node): rank
        for rank, node in enumerate(spec.outer_root.iter_preorder())
    }
    chunk_descriptors = [
        [
            (
                rank_of[id(_real_node(task.outer_root))],
                isinstance(task.outer_root, _SingleNodeView),
            )
            for task in chunk
        ]
        for chunk in chunks
    ]
    sum_columns = tuple(c for c in plan.results if c.mode == "sum")
    shared_columns = tuple(c for c in plan.results if c.mode == "shared")
    if pool is not None:
        def engine_runner(*runner_args):
            return _run_pooled_engine(pool, *runner_args)
    elif engine == "process":
        engine_runner = _run_process_engine
    else:
        engine_runner = _run_thread_engine
    wall_start = time.perf_counter()
    outs, shared_out = engine_runner(
        plan,
        chunk_descriptors,
        schedule.name,
        order,
        task_backend,
        sum_columns,
        shared_columns,
        num_workers,
    )
    wall_seconds = time.perf_counter() - wall_start
    reduced = reduce_sum_columns(
        sum_columns, [out["sums"] for out in outs if out is not None]
    )
    results: dict[str, np.ndarray] = dict(shared_out)
    results.update(reduced)
    plan.apply(results)
    return ParallelExecReport(
        engine=engine,
        num_workers=num_workers,
        spawn_depth=depth,
        schedule=schedule.name,
        task_counts=[len(chunk) for chunk in chunks],
        worker_seconds=[
            out["seconds"] if out is not None else 0.0 for out in outs
        ],
        wall_seconds=wall_seconds,
        task_backend=task_backend,
    )

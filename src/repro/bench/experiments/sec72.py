"""Section 7.2 extension: multi-level twisting on matrix-matrix multiply.

The paper names MMM as the reason to "generalize recursion twisting to
more than two levels of recursion" — two-level twisting can block two
of MMM's three dimensions at best.  This experiment runs the
three-level generalization (:mod:`repro.core.multilevel`) against the
untransformed triple recursion on the element-granular cache model and
reports the blocking effect at both cache levels.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport, percent
from repro.core.multilevel import (
    MultiLevelInstrument,
    OpCounterN,
    run_original_n,
    run_twisted_n,
)
from repro.kernels.matmul3 import MatMul3, MatMul3CacheProbe
from repro.memory.hierarchy import CacheHierarchy, LevelSpec


def _machine() -> CacheHierarchy:
    # Two levels sized so one matrix row set exceeds L1 and one full
    # matrix exceeds L2 at the default problem size.
    return CacheHierarchy(
        [
            LevelSpec("L1", 16, ways=8).build(),
            LevelSpec("L2", 128, ways=8).build(),
        ]
    )


def run_sec72(
    n: int = 48,
) -> tuple[ExperimentReport, dict[str, dict[str, float]]]:
    """Original vs three-level-twisted MMM (``n x n x n``)."""
    data: dict[str, dict[str, float]] = {}
    for name, run in (("original", run_original_n), ("twisted-3level", run_twisted_n)):
        mmm = MatMul3(n=n, m=n, p=n)
        machine = _machine()
        probe = MatMul3CacheProbe(mmm, machine)
        ops = OpCounterN()

        # Compose manually (the N-level instrument API is tiny).
        class Composed(MultiLevelInstrument):
            def op(self, kind):
                ops.op(kind)

            def point(self, nodes):
                ops.point(nodes)
                probe.point(nodes)

        run(mmm.make_spec(), instrument=Composed())
        assert mmm.max_error() < 1e-9
        stats = machine.stats_by_name()
        data[name] = {
            "points": float(ops.work_points),
            "L1_miss": stats["L1"].miss_rate,
            "L2_miss": stats["L2"].miss_rate,
            "memory": float(machine.memory_accesses),
        }

    report = ExperimentReport(
        title=f"Section 7.2 extension: 3-level twisting on MMM ({n}^3)",
        columns=["schedule", "points", "L1 miss", "L2 miss", "memory accesses"],
    )
    for name, metrics in data.items():
        report.add_row(
            name,
            int(metrics["points"]),
            percent(metrics["L1_miss"]),
            percent(metrics["L2_miss"]),
            int(metrics["memory"]),
        )
    ratio = data["original"]["memory"] / max(data["twisted-3level"]["memory"], 1.0)
    report.add_note(
        f"three-level twisting cuts memory traffic {ratio:.1f}x with zero "
        f"tile-size parameters (the cache-oblivious MMM blocking)"
    )
    return report, data

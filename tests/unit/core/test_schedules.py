"""Unit tests for the named schedule registry."""

import pytest

from repro.core import (
    BY_NAME,
    INTERCHANGE,
    NestedRecursionSpec,
    ORIGINAL,
    TWIST,
    TWIST_COUNTERS,
    WorkRecorder,
    get_schedule,
    twist_with_cutoff,
)
from repro.errors import ScheduleError
from repro.spaces import paper_inner_tree, paper_outer_tree


def spec():
    return NestedRecursionSpec(paper_outer_tree(), paper_inner_tree())


class TestRegistry:
    def test_names_are_canonical(self):
        assert ORIGINAL.name == "original"
        assert INTERCHANGE.name == "interchange"
        assert TWIST.name == "twist"
        for name, schedule in BY_NAME.items():
            assert schedule.name == name

    def test_lookup_by_name(self):
        assert get_schedule("original") is ORIGINAL
        assert get_schedule("twist+counters") is TWIST_COUNTERS

    def test_lookup_cutoff_syntax(self):
        schedule = get_schedule("twist(cutoff=16)")
        assert schedule.name == "twist(cutoff=16)"

    def test_unknown_name(self):
        with pytest.raises(ScheduleError, match="unknown schedule"):
            get_schedule("loop-skewing")

    def test_negative_cutoff(self):
        with pytest.raises(ScheduleError):
            twist_with_cutoff(-1)


class TestExecution:
    @pytest.mark.parametrize("name", sorted(BY_NAME))
    def test_every_schedule_runs_and_covers_space(self, name):
        recorder = WorkRecorder()
        get_schedule(name).run(spec(), instrument=recorder)
        assert len(set(recorder.points)) == 49

    def test_cutoff_schedule_runs(self):
        recorder = WorkRecorder()
        twist_with_cutoff(3).run(spec(), instrument=recorder)
        assert len(recorder.points) == 49

"""The serving load generator at a small, test-sized scale.

One real end-to-end scenario (hundreds of users, not 10^5) proves the
measurement plumbing: the payload carries every field the trajectory
table and the CI gate read, the bit-identity check really ran over
every user, and the report renders.  The full-scale numbers live in
the checked-in ``BENCH_serve.json``.
"""

import json

from repro.bench.serve_load import (
    LoadSpec,
    generate_workload,
    run_serve_load,
    write_serve_json,
)
from repro.serve.protocol import CountQuery, KNNQuery, NNQuery

SMALL = LoadSpec(
    references=512,
    users=200,
    serial_sample=50,
    concurrency=64,
    hot_set=16,
)


class TestGenerateWorkload:
    def test_deterministic_mix_with_a_hot_set(self):
        from repro.spaces.points import clustered_points

        references = clustered_points(128, clusters=8, spread=0.1, seed=1)
        first = generate_workload(SMALL, references)
        second = generate_workload(SMALL, references)
        assert first == second
        assert len(first) == SMALL.users
        kinds = {type(query) for query in first}
        assert kinds == {NNQuery, KNNQuery, CountQuery}
        # The hot set makes queries recur — the skew the verdict cache
        # and the admission batcher are built for.
        assert len(set(first)) < len(first)


class TestRunServeLoad:
    def test_payload_carries_the_contract_fields(self, tmp_path):
        report, payload = run_serve_load(SMALL)
        assert payload["experiment"] == "serve"
        assert payload["users"] == SMALL.users
        assert payload["references"] == SMALL.references
        assert payload["bit_identical"] is True
        assert payload["speedup"] > 0
        assert payload["qps"] > 0
        for percentile in ("p50", "p99", "mean", "max"):
            assert payload["latency_ms"][percentile] >= 0
        assert payload["serial"]["sampled"] == SMALL.serial_sample
        assert payload["serial"]["mean_ms"] > 0
        assert set(payload["backends"]) == {"nn", "knn", "count"}
        assert payload["batcher"]["ticks"] >= 1
        assert "hits" in payload["verdict_cache"]

        rendered = report.render()
        assert "queries/sec (batched service)" in rendered
        assert "bit-identical vs oracle" in rendered

        path = write_serve_json(payload, str(tmp_path / "BENCH_serve.json"))
        with open(path) as handle:
            assert json.load(handle) == payload

"""CI gate: the static cost model must track measured reality.

The TW30x locality analyzer and the ``choose_backend`` decision table
predict winners before anything runs.  Those predictions are only
worth gating on if they keep agreeing with the clocks, so this module
replays every checked-in ``BENCH_*.json`` payload and compares the
*predicted* winner against the *measured* one, row by row:

* **Wall-clock payloads** (``BENCH_soa.json``, ``BENCH_compiled.json``
  — entries carry a ``timings`` dict): the spec is rebuilt at the
  payload's recorded scale, ``choose_backend`` picks a backend, and
  the pick is mapped into the row's actually-measured backends (a
  ``compiled`` prediction against a sweep that never timed compiled
  falls back to ``soa``, the backend it fuses).  The row validates if
  the predicted backend's time is within :data:`DIRECTION_FACTOR` of
  the row's best single backend — direction, not magnitude: the model
  claims "this backend is the right family", not "exactly this fast".

* **Parallel payloads** (entries carry ``runs``): the model predicts
  a parallel win exactly when the recorded host had at least two
  cores; the measurement says a win happened when any run's
  ``speedup_vs_serial_soa`` clears 1.0.  One prediction per payload —
  the per-row task-spawn economics are the parallel floor's job.

* **Serve payloads** (no per-backend rows) are skipped with a note:
  admission batching has no static prediction to validate.

The gate fails when the fraction of mispredicted rows exceeds
:data:`DEFAULT_TOLERANCE` — a calibrated-but-forgiving bar: a single
drifted row on a noisy runner must not block CI, a systematically
wrong model must.

Run it as ``python -m repro.bench cost-validate [--json PATH ...]
[--scale-cap S] [--tolerance F]``.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

#: Predicted backend's time may lag the row's best by this factor and
#: still count as directionally correct.  Calibrated against the
#: checked-in payloads: the worst honest near-miss (PC/original, where
#: soa and batched trade places run to run) sits at 1.41x.
DIRECTION_FACTOR = 1.5

#: Maximum tolerated fraction of mispredicted rows.
DEFAULT_TOLERANCE = 0.25

#: Payloads replayed when no ``--json`` is given (missing files skip).
DEFAULT_PAYLOADS = (
    "BENCH_soa.json",
    "BENCH_compiled.json",
    "BENCH_parallel.json",
    "BENCH_serve.json",
)

#: Fallback chain mapping a predicted backend into a sweep that did
#: not time it: each backend degrades to the one it is built on.
_FALLBACK_CHAIN = {
    "compiled": ("compiled", "soa", "batched", "recursive"),
    "soa": ("soa", "batched", "recursive"),
    "batched": ("batched", "recursive"),
    "recursive": ("recursive",),
}


@dataclass
class RowCheck:
    """One validated prediction."""

    label: str
    predicted: str
    mapped: str
    measured_best: str
    ratio: float
    correct: bool

    def render(self) -> str:
        """One ``[ok ]``/``[MISS]`` report line for this row."""
        mark = "ok " if self.correct else "MISS"
        mapped = (
            f" (mapped to {self.mapped})" if self.mapped != self.predicted else ""
        )
        return (
            f"  [{mark}] {self.label}: predicted {self.predicted}{mapped}, "
            f"measured best {self.measured_best}, ratio {self.ratio:.2f}x"
        )


@dataclass
class ValidationResult:
    """All checks for one replayed payload."""

    path: str
    rows: list[RowCheck] = field(default_factory=list)
    skips: list[str] = field(default_factory=list)

    @property
    def misses(self) -> list[RowCheck]:
        return [row for row in self.rows if not row.correct]

    def to_json(self) -> dict:
        """Machine-readable row verdicts and skips for this payload."""
        return {
            "path": self.path,
            "rows": [
                {
                    "label": row.label,
                    "predicted": row.predicted,
                    "mapped": row.mapped,
                    "measured_best": row.measured_best,
                    "ratio": round(row.ratio, 3),
                    "correct": row.correct,
                }
                for row in self.rows
            ],
            "skips": list(self.skips),
        }


def _spec_factories(scale: float) -> dict[str, Callable]:
    from repro.bench.workloads import wallclock_cases

    return {case.name: case.make_spec for case in wallclock_cases(scale)}


def _predict_backend(spec, schedule: str) -> str:
    from repro.core.backend_select import choose_backend

    return choose_backend(spec, schedule_name=schedule).backend


def validate_wallclock(
    payload: dict,
    path: str,
    direction_factor: float = DIRECTION_FACTOR,
    scale_cap: Optional[float] = None,
) -> ValidationResult:
    """Replay one wall-clock payload against the current cost model."""
    result = ValidationResult(path=path)
    scale = float(payload.get("scale", 1.0))
    if scale_cap is not None and scale > scale_cap:
        result.skips.append(
            f"specs rebuilt at scale {scale_cap} (payload measured at "
            f"{scale}; --scale-cap smoke mode)"
        )
        scale = scale_cap
    factories = _spec_factories(scale)
    specs: dict[str, object] = {}
    for entry in payload.get("results", []):
        benchmark = entry.get("benchmark")
        schedule = entry.get("schedule", "original")
        label = f"{benchmark}/{schedule}"
        factory = factories.get(benchmark)
        if factory is None:
            result.skips.append(f"{label}: unknown benchmark, no spec to replay")
            continue
        timings = {
            backend: seconds
            for backend, seconds in entry.get("timings", {}).items()
            if backend != "auto" and isinstance(seconds, (int, float)) and seconds > 0
        }
        if len(timings) < 2:
            result.skips.append(f"{label}: fewer than two measured backends")
            continue
        if benchmark not in specs:
            specs[benchmark] = factory()
        predicted = _predict_backend(specs[benchmark], schedule)
        mapped = next(
            (
                backend
                for backend in _FALLBACK_CHAIN.get(predicted, (predicted,))
                if backend in timings
            ),
            None,
        )
        if mapped is None:
            result.skips.append(
                f"{label}: predicted {predicted!r} and no fallback was timed"
            )
            continue
        best = min(timings, key=timings.get)
        ratio = timings[mapped] / timings[best]
        result.rows.append(
            RowCheck(
                label=label,
                predicted=predicted,
                mapped=mapped,
                measured_best=best,
                ratio=ratio,
                correct=ratio <= direction_factor,
            )
        )
    return result


def validate_parallel(payload: dict, path: str) -> ValidationResult:
    """One direction check: did parallelism pay where the model says?

    The static prediction is purely structural — a host with a single
    core cannot win by spawning, one with two or more might.  The
    measurement is the payload's best ``speedup_vs_serial_soa`` over
    the rows the model actually makes a claim about: the regular
    benchmarks (same scope as the parallel perf floor — the dual-tree
    traversals prune irregularly, so their balance is workload luck)
    at two or more workers (a 1-worker "speedup" is dispatch noise).
    """
    from repro.bench.perf_floor import PARALLEL_FLOOR_BENCHMARKS

    result = ValidationResult(path=path)
    cpu_count = payload.get("host", {}).get("cpu_count") or 1
    predicted_win = cpu_count >= 2
    speedups = [
        run.get("speedup_vs_serial_soa", 0.0)
        for entry in payload.get("results", [])
        if entry.get("benchmark") in PARALLEL_FLOOR_BENCHMARKS
        for run in entry.get("runs", [])
        if run.get("workers", 0) >= 2
    ]
    if not speedups:
        result.skips.append("no parallel runs recorded")
        return result
    measured_win = max(speedups) > 1.0
    # A capable host that fails to win is a measurement fact (task
    # imbalance, starved runner), not a model error — only the claim
    # "a single core wins by spawning" can be falsified.
    correct = predicted_win or not measured_win
    result.rows.append(
        RowCheck(
            label=f"parallel sweep ({cpu_count} core(s))",
            predicted="parallel-win" if predicted_win else "no-parallel-win",
            mapped="parallel-win" if predicted_win else "no-parallel-win",
            measured_best=(
                "parallel-win" if measured_win else "no-parallel-win"
            ),
            ratio=max(speedups),
            correct=correct,
        )
    )
    return result


def validate_payload(
    payload: dict,
    path: str,
    direction_factor: float = DIRECTION_FACTOR,
    scale_cap: Optional[float] = None,
) -> ValidationResult:
    """Dispatch one payload by shape (wall-clock / parallel / serve)."""
    entries = payload.get("results", [])
    if entries and "timings" in entries[0]:
        return validate_wallclock(
            payload, path, direction_factor=direction_factor, scale_cap=scale_cap
        )
    if entries and "runs" in entries[0]:
        return validate_parallel(payload, path)
    result = ValidationResult(path=path)
    result.skips.append(
        "no per-backend rows (serve-style payload); nothing to validate"
    )
    return result


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench cost-validate",
        description="Fail if the static cost model mispredicts the "
        "measured winner on too many checked-in BENCH rows.",
    )
    parser.add_argument(
        "--json",
        action="append",
        metavar="PATH",
        help="payload to replay (repeatable; default: every checked-in "
        "BENCH_*.json, missing files skipped)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="maximum tolerated fraction of mispredicted rows "
        f"(default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--direction-factor",
        type=float,
        default=DIRECTION_FACTOR,
        help="predicted backend may lag the measured best by this "
        f"factor and still count as correct (default {DIRECTION_FACTOR})",
    )
    parser.add_argument(
        "--scale-cap",
        type=float,
        default=None,
        help="rebuild replay specs at no more than this scale (CI "
        "smoke mode; predictions are replayed, timings are not)",
    )
    parser.add_argument(
        "--emit-json",
        metavar="PATH",
        default=None,
        help="also write the row-by-row verdicts as JSON",
    )
    args = parser.parse_args(argv)

    paths = args.json if args.json else list(DEFAULT_PAYLOADS)
    results: list[ValidationResult] = []
    for path in paths:
        if not os.path.exists(path):
            if args.json:
                print(f"error: cannot read {path}", file=sys.stderr)
                return 2
            continue
        with open(path) as handle:
            payload = json.load(handle)
        results.append(
            validate_payload(
                payload,
                path,
                direction_factor=args.direction_factor,
                scale_cap=args.scale_cap,
            )
        )

    all_rows = [row for result in results for row in result.rows]
    misses = [row for row in all_rows if not row.correct]
    for result in results:
        print(f"{result.path}:")
        for row in result.rows:
            print(row.render())
        for skip in result.skips:
            print(f"  (skip) {skip}")
    if args.emit_json:
        with open(args.emit_json, "w") as handle:
            json.dump(
                {
                    "kind": "cost-validate",
                    "direction_factor": args.direction_factor,
                    "tolerance": args.tolerance,
                    "payloads": [result.to_json() for result in results],
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    if not all_rows:
        print("cost model validation: no rows to check")
        return 0
    fraction = len(misses) / len(all_rows)
    if fraction > args.tolerance:
        print(
            f"cost model validation FAILED: {len(misses)}/{len(all_rows)} "
            f"rows mispredicted ({fraction:.0%} > {args.tolerance:.0%})"
        )
        return 1
    print(
        f"cost model validation passed: {len(all_rows) - len(misses)}/"
        f"{len(all_rows)} rows directionally correct "
        f"({len(misses)} tolerated miss(es))"
    )
    return 0

"""Recursion twisting — Figure 4(a), the paper's headline transformation.

``run_twisted`` continually re-decides which tree the outer recursion
traverses: whenever the subtree about to be handed to the outer
recursion is no larger than the tree the inner recursion would
traverse, the two recursions swap roles ("the schedule twists").  The
effect is the recursive analog of multi-level loop tiling: nested tiles
emerge in the schedule (visible in Figure 4(b)), reuse distances halve
at every twist, and — because no tile size is ever chosen — the
schedule is simultaneously blocked for every cache level.  That is the
parameterless property of Section 3.2.

Irregular truncation is handled with the same policy objects as
interchange (:mod:`repro.core.truncation`), applied in both orders:

* in *swapped* phases the flag/counter machinery records and honours
  truncations (Figure 6(b) applies "without modification");
* in *regular* phases, ``truncateInner2?`` can cut recursion off
  structurally as in the original code — this is why twisting's work
  overhead is a few percent where interchange's is several-fold
  (Section 4.2) — and, per Section 4.1's closing remark, the outer
  node's truncation flag is checked before launching the inner
  traversal, because a flag set by an enclosing swapped phase covers
  the whole inner subtree about to be traversed.

``cutoff`` implements the Section 7.1 variant: the regular order only
twists into the swapped order while the inner tree being traversed is
larger than the cutoff, trading some locality for less bookkeeping.
``cutoff=None`` is the paper's parameterless transformation.
"""

from __future__ import annotations

from typing import Optional

from repro.core.instruments import NULL_INSTRUMENT, Instrument
from repro.core.recursion import exceeds_safe_depth, recursion_guard
from repro.core.spec import INNER_TREE, OUTER_TREE, NestedRecursionSpec
from repro.core.truncation import make_policy


def run_twisted(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
    cutoff: Optional[int] = None,
    use_counters: bool = False,
    subtree_truncation: bool = True,
) -> None:
    """Execute the spec under recursion twisting.

    Parameters
    ----------
    instrument:
        Probe receiving ops/accesses/work events.
    cutoff:
        Section 7.1 cutoff: only twist out of the regular order while
        the current inner tree has more than ``cutoff`` nodes.  ``None``
        (the default) is the parameterless transformation evaluated in
        Section 6.
    use_counters:
        Use Section 4.3 counters instead of Figure 6(b) flags for
        irregular truncation.
    subtree_truncation:
        Section 4.2 early cut-off of swapped phases when every live
        outer node below is truncated.  On by default, as in the
        paper's evaluated configuration.

    Iteration spaces too deep for safe Python recursion are routed
    through the explicit-stack batched executor, which emits the exact
    same instrumentation event sequence.
    """
    if exceeds_safe_depth(spec.outer_root, spec.inner_root):
        from repro.core.batched import run_twisted_batched

        run_twisted_batched(
            spec,
            instrument,
            cutoff=cutoff,
            use_counters=use_counters,
            subtree_truncation=subtree_truncation,
        )
        return
    ins = instrument or NULL_INSTRUMENT
    policy = make_policy(spec, use_counters)
    irregular = spec.is_irregular
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    truncate_inner2 = spec.truncate_inner2
    work = spec.work
    ins_op = ins.op
    ins_access = ins.access
    ins_work = ins.work

    def recurse_outer(o, i):
        # Regular order (Figure 4a, lines 1-14): o descends the tree it
        # arrived on; each visited o runs an inner traversal of the
        # subtree rooted at i.
        ins_op("call")
        ins_op("trunc_check")
        if truncate_outer(o):
            return
        if irregular and policy.subtree_truncated(o, i, ins):
            # A truncation recorded by an enclosing swapped phase covers
            # this entire inner subtree for o: skip the traversal, but
            # still recurse over o's children, which carry their own
            # (in)dependent truncation state.
            pass
        else:
            recurse_inner(o, i)
        for child in o.children:
            ins_op("size_compare")
            if child.size <= i.size and (cutoff is None or i.size > cutoff):
                ins_op("twist")  # regular -> swapped mode switch
                recurse_outer_swapped(child, i)
            else:
                recurse_outer(child, i)

    def recurse_inner(o, i):
        # Regular-order inner traversal: identical to the original
        # template's recurseInner, including structural truncateInner2?
        # cut-off — in the regular order the implicit skipping semantics
        # of recursion are exactly what we want.
        ins_op("call")
        ins_op("trunc_check")
        if truncate_inner1(i):
            return
        ins_op("visit")
        if irregular:
            ins_op("trunc_check")
            if truncate_inner2(o, i):
                return
        ins_access(INNER_TREE, i)
        ins_access(OUTER_TREE, o)
        ins_work(o, i)
        if work is not None:
            work(o, i)
        for child in i.children:
            recurse_inner(o, child)

    def recurse_outer_swapped(o, i):
        # Swapped order (Figure 4a, lines 16-29): the outer recursion
        # advances through the inner tree; one truncation phase per
        # visited inner node.
        ins_op("call")
        ins_op("trunc_check")
        if truncate_inner1(i):
            return
        frame = policy.open_phase()
        all_truncated = recurse_inner_swapped(o, i, frame)
        if not (subtree_truncation and all_truncated):
            for child in i.children:
                ins_op("size_compare")
                if child.size <= o.size:
                    ins_op("twist")  # swapped -> regular mode switch
                    recurse_outer(o, child)
                else:
                    recurse_outer_swapped(o, child)
        policy.close_phase(frame, ins)

    def recurse_inner_swapped(o, i, frame):
        # Swapped-order inner traversal over the outer tree, with the
        # Figure 6(b)/Section 4.3 truncation machinery.  Returns the
        # all-truncated signal for subtree truncation.
        ins_op("call")
        ins_op("trunc_check")
        if truncate_outer(o):
            return True
        ins_op("visit")
        if irregular:
            skipped = policy.check_and_mark(o, i, frame, ins)
        else:
            skipped = False
        if not skipped:
            ins_access(INNER_TREE, i)
            ins_access(OUTER_TREE, o)
            ins_work(o, i)
            if work is not None:
                work(o, i)
        all_truncated = skipped
        for child in o.children:
            child_truncated = recurse_inner_swapped(child, i, frame)
            all_truncated = all_truncated and child_truncated
        return all_truncated

    spec.reset_truncation_state()
    with recursion_guard(spec.outer_root, spec.inner_root):
        recurse_outer(spec.outer_root, spec.inner_root)

"""Unit tests for the sanitize backend (shadow execution).

The static analyzer's dynamic complement: the candidate backend runs
in lockstep with the recursive reference and the first observable
difference — event stream or payload — raises
:class:`SanitizeDivergence` with enough context to reproduce it.
The seeded bugs here are exactly the ones a static read/write-set
comparison cannot see: numerically wrong but structurally conforming
kernels, and a block truncation guard that silently drops the mask.
"""

import pytest

from repro.core.sanitize import (
    EventRecorder,
    LockstepChecker,
    SanitizeDivergence,
    SanitizeReport,
    run_sanitized,
)
from repro.core.schedules import BACKENDS, get_schedule
from repro.core.spec import NestedRecursionSpec
from repro.errors import ScheduleError
from repro.spaces.trees import balanced_tree


# ---------------------------------------------------------------------------
# Spec factories.  Kernels are real module-level closures: the sanitize
# sweep runs them, and the conformance analyzer (which several paths
# consult via backend="auto") needs retrievable source.


def make_factory(bug="none", nodes=63):
    """Fresh-spec factory plus payload probe, with an optional seeded bug.

    ``double`` scales every batched contribution by two; ``drop``
    silently discards the last pair of each block.  Both conform
    structurally (same fields read and written, per-pair replay loops)
    so only the shadow execution can catch them.
    """
    state = {}

    def factory():
        root = balanced_tree(nodes, data=float)
        acc = {"total": 0.0}
        state["acc"] = acc

        def work(o, i):
            acc["total"] += o.data * i.data

        def work_batch(os, is_):
            for o, i in zip(os, is_):
                acc["total"] += o.data * i.data

        def work_batch_double(os, is_):
            for o, i in zip(os, is_):
                acc["total"] += o.data * i.data * 2.0

        def work_batch_drop(os, is_):
            kept = is_[: len(is_) - 1] if len(is_) > 1 else is_
            for o, i in zip(os, kept):
                acc["total"] += o.data * i.data

        batches = {
            "none": work_batch,
            "double": work_batch_double,
            "drop": work_batch_drop,
        }
        return NestedRecursionSpec(
            outer_root=root,
            inner_root=root,
            name="sanitize-unit",
            work=work,
            work_batch=batches[bug],
        )

    return factory, (lambda: state["acc"]["total"])


def make_masked_factory(drop_mask=False, nodes=63):
    """A truncating spec whose block guard can drop the mask.

    The scalar guard prunes odd-numbered inner subtrees.  The faithful
    block guard precomputes the same decisions; the mutant returns
    ``False`` (never truncate) — statically invisible (it reads
    *less* than the scalar guard) and only catchable on the
    uninstrumented fast path, where block truncation engages.
    """
    state = {}

    def factory():
        root = balanced_tree(nodes, data=float)
        acc = {"total": 0.0}
        state["acc"] = acc

        def work(o, i):
            acc["total"] += o.data * i.data

        def work_batch(os, is_):
            for o, i in zip(os, is_):
                acc["total"] += o.data * i.data

        def truncate_inner2(o, i):
            return i.number % 2 == 1

        def truncate_inner2_block(o):
            if drop_mask:
                return False
            return [number % 2 == 1 for number in range(nodes)]

        return NestedRecursionSpec(
            outer_root=root,
            inner_root=root,
            name="masked-unit",
            work=work,
            work_batch=work_batch,
            truncate_inner2=truncate_inner2,
            truncate_inner2_batch=truncate_inner2_block,
        )

    return factory, (lambda: state["acc"]["total"])


# ---------------------------------------------------------------------------


class TestLockstepChecker:
    CONTEXT = dict(
        spec_name="unit", backend="batched", schedule="original", kernels=[]
    )

    def test_matching_stream_passes(self):
        recorder = EventRecorder()
        recorder.op("call")
        recorder.access("outer", balanced_tree(1))
        checker = LockstepChecker(recorder.events, **self.CONTEXT)
        checker.op("call")
        checker.access("outer", balanced_tree(1))
        checker.finish()

    def test_first_mismatch_raises_with_index_and_both_events(self):
        checker = LockstepChecker([("op", "call")], **self.CONTEXT)
        with pytest.raises(SanitizeDivergence) as excinfo:
            checker.op("trunc_check")
        err = excinfo.value
        assert err.phase == "events"
        assert err.index == 0
        assert err.expected == ("op", "call")
        assert err.actual == ("op", "trunc_check")
        assert err.spec_name == "unit" and err.backend == "batched"

    def test_extra_event_beyond_recording_raises(self):
        checker = LockstepChecker([], **self.CONTEXT)
        with pytest.raises(SanitizeDivergence) as excinfo:
            checker.op("call")
        assert excinfo.value.expected is None

    def test_finish_flags_missing_tail(self):
        checker = LockstepChecker(
            [("op", "call"), ("op", "call")], **self.CONTEXT
        )
        checker.op("call")
        with pytest.raises(SanitizeDivergence) as excinfo:
            checker.finish()
        err = excinfo.value
        assert err.index == 1
        assert err.actual is None

    def test_work_events_use_node_ranks(self):
        root = balanced_tree(3)
        recorder = EventRecorder()
        recorder.work(root, root.left)
        assert recorder.events == [("work", root.number, root.left.number)]


class TestRunSanitized:
    def test_conforming_spec_passes_all_phases(self):
        factory, probe = make_factory("none")
        report = run_sanitized(factory, "original", backend="batched", probe=probe)
        assert isinstance(report, SanitizeReport)
        assert report.backend == "batched"
        assert report.phases == ["record", "lockstep", "fast-path"]
        assert report.events > 0
        assert report.engaged["work_batch"]
        payload = report.to_json()
        assert payload["spec"] == "sanitize-unit"
        assert payload["payload"] is not None

    def test_schedule_object_and_twist_also_pass(self):
        factory, probe = make_factory("none")
        report = run_sanitized(
            factory, get_schedule("twist"), backend="soa", probe=probe
        )
        assert report.backend == "soa"
        assert report.phases == ["record", "lockstep", "fast-path"]

    def test_doubled_contribution_diverges_in_payload(self):
        factory, probe = make_factory("double")
        with pytest.raises(SanitizeDivergence) as excinfo:
            run_sanitized(factory, "original", backend="batched", probe=probe)
        err = excinfo.value
        assert err.phase == "payload"
        assert err.expected != err.actual
        assert any("work_batch" in name for name in err.kernels)

    def test_dropped_pair_diverges_in_payload(self):
        factory, probe = make_factory("drop")
        with pytest.raises(SanitizeDivergence) as excinfo:
            run_sanitized(factory, "original", backend="batched", probe=probe)
        assert excinfo.value.phase == "payload"

    def test_faithful_block_guard_passes_with_truncation_engaged(self):
        factory, probe = make_masked_factory(drop_mask=False)
        report = run_sanitized(factory, "original", backend="batched", probe=probe)
        assert report.phases == ["record", "lockstep", "fast-path"]
        assert report.engaged["block_truncation"]

    def test_dropped_truncation_mask_diverges_on_fast_path(self):
        """The mutant guard truncates nothing: the instrumented
        lockstep phase (scalar guard) matches, so the divergence must
        be caught by the uninstrumented fast-path payload check."""
        factory, probe = make_masked_factory(drop_mask=True)
        with pytest.raises(SanitizeDivergence) as excinfo:
            run_sanitized(factory, "original", backend="batched", probe=probe)
        err = excinfo.value
        assert err.phase == "payload"
        assert "fast-path" in str(err)

    def test_recursive_candidate_short_circuits(self):
        """backend='auto' on a tiny space resolves to recursive: the
        candidate *is* the reference, so only the record phase runs."""
        factory, probe = make_factory("none", nodes=7)
        report = run_sanitized(factory, "original", backend="auto", probe=probe)
        assert report.backend == "recursive"
        assert report.phases == ["record"]

    def test_without_probe_payload_is_skipped(self):
        factory, _probe = make_factory("none")
        report = run_sanitized(factory, "original", backend="batched")
        assert report.phases == ["record", "lockstep"]
        assert report.payload is None


class TestScheduleIntegration:
    def test_sanitize_is_a_named_backend(self):
        assert "sanitize" in BACKENDS

    def test_schedule_run_sanitize_round_trip(self):
        factory, _probe = make_factory("none")
        get_schedule("original").run(factory(), backend="sanitize")

    def test_schedule_run_sanitize_with_factory(self):
        factory, _probe = make_factory("none")
        get_schedule("twist").run(
            factory(), backend="sanitize", spec_factory=factory
        )

    def test_observing_spec_requires_factory(self):
        """A work-observing spec cannot be re-run on stale state: the
        sanitize branch demands a fresh-spec factory."""
        root = balanced_tree(7, data=float)
        spec = NestedRecursionSpec(
            outer_root=root,
            inner_root=root,
            work=lambda o, i: None,
            truncate_inner2=lambda o, i: False,
            truncation_observes_work=True,
        )
        with pytest.raises(ScheduleError, match="spec_factory"):
            get_schedule("original").run(spec, backend="sanitize")

    def test_observing_spec_with_factory_passes(self):
        def factory():
            root = balanced_tree(31, data=float)
            acc = {"total": 0.0}

            def work(o, i):
                acc["total"] += o.data * i.data

            return NestedRecursionSpec(
                outer_root=root,
                inner_root=root,
                name="observing",
                work=work,
                truncate_inner2=lambda o, i: False,
                truncation_observes_work=True,
            )

        get_schedule("original").run(
            factory(), backend="sanitize", spec_factory=factory
        )


class TestSanitizeSweep:
    def test_sweep_over_one_benchmark_is_clean(self, tmp_path):
        from repro.bench.sanitize_sweep import (
            run_sanitize_sweep,
            write_sanitize_json,
        )

        sweep = run_sanitize_sweep(scale=0.02, benchmarks=("TJ",))
        assert sweep.ok
        assert len(sweep.runs) == 4  # 2 schedules x 2 backends
        assert all(run["spec"].startswith("TJ") for run in sweep.runs)
        text = sweep.render()
        assert "0 divergence(s)" in text
        path = write_sanitize_json(sweep, str(tmp_path / "SANITIZE.json"))
        import json

        payload = json.loads(open(path).read())
        assert payload["ok"] is True and payload["divergences"] == []

    def test_bench_cli_dispatch(self, tmp_path, capsys, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        assert (
            main(["sanitize", "--scale", "0.02", "--benchmark", "TJ"]) == 0
        )
        out = capsys.readouterr().out
        assert "sanitize sweep" in out
        assert (tmp_path / "SANITIZE.json").exists()

"""Bounding volumes for spatial trees: hyperrectangles and balls.

kd-tree nodes carry axis-aligned bounding hyperrectangles
(:class:`HRect`); vantage-point tree nodes carry metric balls
(:class:`Ball`).  Dual-tree ``Score`` functions prune on conservative
*minimum* distances between two bounds, and accept in bulk on
conservative *maximum* distances, so both types provide ``min_dist`` /
``max_dist`` against their own kind.

Bounds are plain Python tuples rather than numpy arrays: they are
touched once per visited node pair (millions of times per run) where a
2-8 element Python loop beats numpy's per-call overhead by an order of
magnitude.
"""

from __future__ import annotations

import math
from typing import Sequence


class HRect:
    """An axis-aligned hyperrectangle ``[mins[d], maxs[d]]`` per dimension."""

    __slots__ = ("mins", "maxs")

    def __init__(self, mins: Sequence[float], maxs: Sequence[float]) -> None:
        if len(mins) != len(maxs):
            raise ValueError("mins and maxs must have equal dimension")
        self.mins = tuple(float(v) for v in mins)
        self.maxs = tuple(float(v) for v in maxs)
        for lo, hi in zip(self.mins, self.maxs):
            if lo > hi:
                raise ValueError(f"empty extent [{lo}, {hi}]")

    @classmethod
    def of_points(cls, points) -> "HRect":
        """Tight bounding box of an ``(n, d)`` point array."""
        return cls(points.min(axis=0), points.max(axis=0))

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self.mins)

    def min_dist(self, other: "HRect") -> float:
        """Smallest Euclidean distance between any two contained points.

        Zero when the rectangles overlap; the standard per-axis gap
        formula otherwise.
        """
        total = 0.0
        for lo_a, hi_a, lo_b, hi_b in zip(self.mins, self.maxs, other.mins, other.maxs):
            gap = lo_b - hi_a if lo_b > hi_a else lo_a - hi_b
            if gap > 0.0:
                total += gap * gap
        return math.sqrt(total)

    def max_dist(self, other: "HRect") -> float:
        """Largest Euclidean distance between any two contained points."""
        total = 0.0
        for lo_a, hi_a, lo_b, hi_b in zip(self.mins, self.maxs, other.mins, other.maxs):
            span = max(hi_b - lo_a, hi_a - lo_b)
            total += span * span
        return math.sqrt(total)

    def contains_point(self, point: Sequence[float]) -> bool:
        """Is the point inside (or on the boundary of) the rectangle?"""
        return all(
            lo <= coordinate <= hi
            for coordinate, lo, hi in zip(point, self.mins, self.maxs)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HRect({self.mins}, {self.maxs})"


class Ball:
    """A metric ball: center point plus radius."""

    __slots__ = ("center", "radius")

    def __init__(self, center: Sequence[float], radius: float) -> None:
        if radius < 0.0:
            raise ValueError(f"negative radius {radius}")
        self.center = tuple(float(v) for v in center)
        self.radius = float(radius)

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self.center)

    def center_dist(self, other: "Ball") -> float:
        """Euclidean distance between the two centers."""
        total = 0.0
        for a, b in zip(self.center, other.center):
            diff = a - b
            total += diff * diff
        return math.sqrt(total)

    def min_dist(self, other: "Ball") -> float:
        """Smallest possible distance between contained points.

        ``max(0, |c1 - c2| - r1 - r2)`` — zero when the balls intersect.
        """
        return max(0.0, self.center_dist(other) - self.radius - other.radius)

    def max_dist(self, other: "Ball") -> float:
        """Largest possible distance between contained points."""
        return self.center_dist(other) + self.radius + other.radius

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ball({self.center}, r={self.radius:.4g})"


def point_dist(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two points (plain-Python hot path)."""
    total = 0.0
    for x, y in zip(a, b):
        diff = x - y
        total += diff * diff
    return math.sqrt(total)

"""Property-based soundness of the TW21x static independence pass.

The contract under test: **static never overclaims**.  Any spec the
affine-footprint pass certifies ``independent`` must also pass the
dynamic TW030 witness (a serial run under a
:class:`~repro.core.soundness.FootprintRecorder` with zero
outer-parallel violations).  The reverse direction is not required —
the pass may be conservative — but on the scatter family below a
``dependent`` refutation is checked to be real, so the proof can't
drift into vacuous pessimism either.

Counterexamples found while developing the pass are quarantined as
pinned regression tests at the bottom (see also
``TestQuarantinedRegressions`` in ``tests/unit/transform/lint``).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.soundness import FootprintRecorder, outer_parallel_violations
from repro.core.schedules import ORIGINAL
from repro.core.spec import NestedRecursionSpec
from repro.kernels import TreeJoin
from repro.spaces import random_tree
from repro.transform.lint import lower


def payload_tree(num_nodes: int, seed: int, duplicate: bool):
    """A random-shaped tree whose payloads are a permutation of
    ``range(num_nodes)`` — optionally with one forced collision."""
    root = random_tree(num_nodes, seed=seed)
    rng = np.random.default_rng(seed)
    values = rng.permutation(num_nodes)
    nodes = list(root.iter_preorder())
    for node, value in zip(nodes, values):
        node.data = int(value)
    if duplicate and len(nodes) >= 2:
        nodes[-1].data = nodes[0].data
    return root


def scatter_spec(outer_nodes, inner_nodes, seed, duplicate):
    """MM-shaped scatter: every work point writes out[o.data, i.data]."""
    out = np.zeros((outer_nodes, inner_nodes))

    def work(o, i):
        out[o.data, i.data] = 1.0

    def footprint(o, i):
        return ((("out", o.data, i.data), True),)

    spec = NestedRecursionSpec(
        outer_root=payload_tree(outer_nodes, seed, duplicate),
        inner_root=payload_tree(inner_nodes, seed + 1, False),
        work=work,
        name="scatter-prop",
    )
    return spec, footprint


def dynamic_witness_violations(spec, footprint):
    recorder = FootprintRecorder(footprint)
    ORIGINAL.run(spec, instrument=recorder, backend="recursive")
    return outer_parallel_violations(recorder)


@given(
    outer_nodes=st.integers(min_value=2, max_value=24),
    inner_nodes=st.integers(min_value=1, max_value=16),
    duplicate=st.booleans(),
    seed=st.integers(min_value=0, max_value=9_999),
)
@settings(max_examples=40, deadline=None)
def test_static_independent_implies_the_dynamic_witness_passes(
    outer_nodes, inner_nodes, duplicate, seed
):
    lower.clear_cache()
    spec, footprint = scatter_spec(outer_nodes, inner_nodes, seed, duplicate)
    verdict, reason = lower.static_independence(spec)
    violations = dynamic_witness_violations(spec, footprint)
    if verdict == "independent":
        # Soundness: a static certificate may never contradict the
        # dynamic oracle.
        assert not violations, (reason, violations[:3])
    if verdict == "dependent":
        # On this family the refutation must be real, too: TW210 fires
        # exactly when outer.data collides, and a collision really does
        # write one cell from two outer tasks.
        assert violations, reason


@given(
    num_nodes=st.integers(min_value=1, max_value=24),
)
@settings(max_examples=15, deadline=None)
def test_reduction_specs_certify_and_pass_the_witness(num_nodes):
    lower.clear_cache()
    tj = TreeJoin(num_nodes, num_nodes)
    spec = tj.make_spec()
    verdict, _reason = lower.static_independence(spec)
    assert verdict == "independent"
    _probe_spec, footprint = spec.parallel_plan.make_probe()
    assert not dynamic_witness_violations(tj.make_spec(), footprint)


class TestQuarantinedCounterexamples:
    """Minimal inputs that once broke the property, pinned forever."""

    def test_single_collision_is_refuted_not_certified(self):
        # The smallest dependent scatter: two outer nodes, same payload.
        lower.clear_cache()
        spec, footprint = scatter_spec(2, 1, seed=0, duplicate=True)
        verdict, _ = lower.static_independence(spec)
        assert verdict == "dependent"
        assert dynamic_witness_violations(spec, footprint)

    def test_singleton_outer_tree_is_trivially_independent(self):
        # One outer task cannot overlap with itself; the pass must not
        # degrade to needs-runtime-check on the degenerate tree.
        lower.clear_cache()
        spec, footprint = scatter_spec(1, 4, seed=3, duplicate=False)
        verdict, _ = lower.static_independence(spec)
        assert verdict == "independent"
        assert not dynamic_witness_violations(spec, footprint)

"""Tree-independent dual-tree rule sets (Curtin et al., ICML 2013).

Curtin et al. factor every dual-tree algorithm into two callbacks:

* ``Score(q_node, r_node)`` — may the pair be *pruned*?  Must be
  conservative: prune only when no point pair under the two nodes can
  affect the answer;
* ``BaseCase(q_point, r_point)`` — the point-pair computation.

Our traverser (:mod:`repro.dualtree.traverser`) maps these onto the
paper's nested recursion template: ``Score`` becomes the irregular
``truncateInner2?``, and ``BaseCase`` batches run at leaf-leaf work
points.  The three rule sets below — point correlation, nearest
neighbor, k-nearest neighbors — are the algorithms behind the PC, NN,
KNN, and VP benchmarks (VP is KNN over vantage-point trees).

All rule state is per-query (counts per query leaf, best distances per
query point), so the *outer recursion is parallel* in the paper's
Section 3.3 sense: rule state never flows between different query
leaves.  That is what licenses interchange and twisting on these
algorithms despite their inner-recursion-carried dependences.
"""

from __future__ import annotations

import numpy as np

from repro.dualtree.spatial import SpatialNode, SpatialTree


class DualTreeRules:
    """Base interface: prune test plus leaf-leaf base case."""

    #: True when ``score`` reads state that ``base_case`` writes (or
    #: itself writes productive state), so deferring base cases past a
    #: score evaluation could change decisions or results.  The batched
    #: executor uses this to decide whether truncation checks need a
    #: work barrier (``spec.truncation_observes_work``).  Conservative
    #: default: assume stateful.
    observes_results: bool = True

    def score(self, q: SpatialNode, r: SpatialNode) -> bool:
        """Return ``True`` to prune the pair (skip ``r``'s subtree)."""
        raise NotImplementedError

    def base_case(self, q: SpatialNode, r: SpatialNode) -> None:
        """Process all point pairs of two leaves."""
        raise NotImplementedError

    def base_case_batch(
        self, qs: list[SpatialNode], rs: list[SpatialNode]
    ) -> None:
        """Process a block of leaf pairs, as if ``base_case`` ran per pair.

        Must be semantically equivalent to calling ``base_case`` on
        each pair in list order.  The default is exactly that loop;
        subclasses override it with vectorized forms.
        """
        for q, r in zip(qs, rs):
            self.base_case(q, r)


def _leaf_points(tree: SpatialTree, node: SpatialNode) -> np.ndarray:
    """The (k, d) array of points owned by a leaf."""
    return tree.points[tree.indices[node.start : node.end]]


def _pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense Euclidean distances between two small point sets."""
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


class PointCorrelationRules(DualTreeRules):
    """2-point correlation: count pairs within ``radius``.

    The classic clustering statistic ("determines how 'clustered' a
    data set is").  ``Score`` prunes a node pair when even the closest
    possible points are farther apart than the radius; the base case
    counts qualifying ordered pairs.  Counting is a commutative
    reduction, so PC's answer is schedule-independent by construction.

    ``Score`` reads only geometry and the fixed radius — never the
    count — so base cases can be deferred arbitrarily
    (``observes_results`` is False) and PC gets the largest batches of
    all the dual-tree benchmarks.
    """

    observes_results = False

    def __init__(
        self,
        query_tree: SpatialTree,
        reference_tree: SpatialTree,
        radius: float,
        count_self_pairs: bool = True,
    ) -> None:
        if radius < 0.0:
            raise ValueError(f"negative radius {radius}")
        self.query_tree = query_tree
        self.reference_tree = reference_tree
        self.radius = radius
        self.count_self_pairs = count_self_pairs
        #: ordered (query, reference) pairs within the radius
        self.count = 0

    def score(self, q: SpatialNode, r: SpatialNode) -> bool:
        return q.bound.min_dist(r.bound) > self.radius

    def score_block(self, q: SpatialNode):
        """``score(q, r)`` for *every* reference node at once, or ``None``.

        Returns a boolean array indexed by the reference nodes'
        pre-order ``number``; entry ``r.number`` is bit-identical to the
        scalar ``score(q, r)`` (same float ops in the same order).
        Returns ``None`` when the reference tree's bounds are not
        hyperrectangles, in which case callers use the scalar path.
        Legal for PC because ``Score`` is stateless — a pure function of
        node geometry — so evaluating it early changes nothing.
        """
        from repro.dualtree.batch import bound_arrays, min_dists_to_tree

        arrays = bound_arrays(self.reference_tree)
        if arrays is None:
            return None
        return min_dists_to_tree(q.bound, arrays) > self.radius

    def base_case(self, q: SpatialNode, r: SpatialNode) -> None:
        distances = _pairwise_distances(
            _leaf_points(self.query_tree, q), _leaf_points(self.reference_tree, r)
        )
        within = distances <= self.radius
        if not self.count_self_pairs and self.query_tree is self.reference_tree:
            q_ids = np.asarray(q.point_ids)
            r_ids = np.asarray(r.point_ids)
            within &= q_ids[:, None] != r_ids[None, :]
        self.count += int(within.sum())

    def base_case_batch(
        self, qs: list[SpatialNode], rs: list[SpatialNode]
    ) -> None:
        """Count all point pairs of a block of leaf pairs at once.

        Bit-identical to the scalar base case: the distances are the
        same elementwise expressions, the comparison is exact, and the
        total is an integer sum (order-independent).
        """
        from repro.dualtree.batch import block_distances, leaf_blocks

        query_blocks = leaf_blocks(self.query_tree)
        reference_blocks = leaf_blocks(self.reference_tree)
        q_rows = query_blocks.rows(qs)
        r_rows = reference_blocks.rows(rs)
        distances = block_distances(query_blocks, reference_blocks, q_rows, r_rows)
        within = distances <= self.radius
        within &= (
            query_blocks.valid[q_rows][:, :, None]
            & reference_blocks.valid[r_rows][:, None, :]
        )
        if not self.count_self_pairs and self.query_tree is self.reference_tree:
            within &= (
                query_blocks.ids[q_rows][:, :, None]
                != reference_blocks.ids[r_rows][:, None, :]
            )
        self.count += int(within.sum())


class NearestNeighborRules(DualTreeRules):
    """Single nearest neighbor of every query point.

    Per-query state: ``best_dist[q]`` and ``best_id[q]``.  ``Score``
    prunes a reference node when its closest possible point is farther
    than the *worst* current best among the queries in the query leaf —
    the standard dual-tree NN bound.  Because the bound only shrinks,
    pruning is always conservative, and — as Section 3.3 requires — any
    schedule that preserves each query leaf's inner-traversal order
    makes identical pruning decisions.
    """

    def __init__(
        self,
        query_tree: SpatialTree,
        reference_tree: SpatialTree,
        exclude_self: bool = False,
    ) -> None:
        self.query_tree = query_tree
        self.reference_tree = reference_tree
        self.exclude_self = exclude_self
        n = query_tree.num_points
        self.best_dist = np.full(n, np.inf)
        self.best_id = np.full(n, -1, dtype=int)

    def score(self, q: SpatialNode, r: SpatialNode) -> bool:
        bound = float(self.best_dist[self.query_tree.indices[q.start : q.end]].max())
        return q.bound.min_dist(r.bound) > bound

    def base_case(self, q: SpatialNode, r: SpatialNode) -> None:
        q_ids = self.query_tree.indices[q.start : q.end]
        r_ids = self.reference_tree.indices[r.start : r.end]
        distances = _pairwise_distances(
            self.query_tree.points[q_ids], self.reference_tree.points[r_ids]
        )
        if self.exclude_self:
            distances[np.equal.outer(np.asarray(q_ids), np.asarray(r_ids))] = np.inf
        arg = distances.argmin(axis=1)
        best_here = distances[np.arange(len(q_ids)), arg]
        improved = best_here < self.best_dist[q_ids]
        self.best_dist[q_ids[improved]] = best_here[improved]
        self.best_id[q_ids[improved]] = np.asarray(r_ids)[arg[improved]]

    def base_case_batch(
        self, qs: list[SpatialNode], rs: list[SpatialNode]
    ) -> None:
        """Vectorized block form with sequential update semantics.

        The scalar base case updates on strict ``<`` (ties keep the
        earlier candidate) and breaks within-pair ties by the first
        minimal reference slot.  Per query, that makes the sequential
        outcome "the candidate of the earliest pair achieving the
        minimal distance" — recovered here with a lexsort on
        (query, distance, pair sequence) and a first-occurrence pick,
        so the batch is bit-identical to running the pairs in order.
        """
        from repro.dualtree.batch import block_distances, leaf_blocks

        query_blocks = leaf_blocks(self.query_tree)
        reference_blocks = leaf_blocks(self.reference_tree)
        q_rows = query_blocks.rows(qs)
        r_rows = reference_blocks.rows(rs)
        distances = block_distances(query_blocks, reference_blocks, q_rows, r_rows)
        q_ids = query_blocks.ids[q_rows]
        r_ids = reference_blocks.ids[r_rows]
        if self.exclude_self:
            distances[q_ids[:, :, None] == r_ids[:, None, :]] = np.inf
        # Padding tail is a suffix, so pinning it to +inf preserves the
        # scalar argmin's first-minimal-slot tie break.
        distances = np.where(
            reference_blocks.valid[r_rows][:, None, :], distances, np.inf
        )
        arg = distances.argmin(axis=2)
        best_here = np.take_along_axis(distances, arg[:, :, None], axis=2)[:, :, 0]
        candidate_ref = np.take_along_axis(r_ids, arg, axis=1)

        num_pairs, q_capacity = q_ids.shape
        sequence = np.repeat(np.arange(num_pairs), q_capacity)
        flat_q = q_ids.ravel()
        flat_d = best_here.ravel()
        flat_ref = candidate_ref.ravel()
        keep = query_blocks.valid[q_rows].ravel()
        flat_q, flat_d, flat_ref, sequence = (
            flat_q[keep],
            flat_d[keep],
            flat_ref[keep],
            sequence[keep],
        )
        order = np.lexsort((sequence, flat_d, flat_q))
        sorted_q = flat_q[order]
        first = np.ones(len(sorted_q), dtype=bool)
        first[1:] = sorted_q[1:] != sorted_q[:-1]
        winner_q = sorted_q[first]
        winner_d = flat_d[order][first]
        winner_ref = flat_ref[order][first]
        improved = winner_d < self.best_dist[winner_q]
        self.best_dist[winner_q[improved]] = winner_d[improved]
        self.best_id[winner_q[improved]] = winner_ref[improved]


class KNearestNeighborRules(DualTreeRules):
    """k nearest neighbors of every query point.

    Per-query state is a bounded worst-first candidate list; the prune
    bound for a query is its current k-th best distance (infinite until
    k candidates exist), and a query *leaf*'s bound is the max over its
    queries.  Used by both the KNN benchmark (kd-trees) and the VP
    benchmark (vantage-point trees) — the rules are tree-independent.
    """

    def __init__(
        self,
        query_tree: SpatialTree,
        reference_tree: SpatialTree,
        k: int,
        exclude_self: bool = False,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.query_tree = query_tree
        self.reference_tree = reference_tree
        self.k = k
        self.exclude_self = exclude_self
        n = query_tree.num_points
        #: kth-best (i.e. worst retained) distance per query
        self.kth_dist = np.full(n, np.inf)
        #: per-query candidate lists: sorted [(dist, ref_id), ...]
        self.neighbors: list[list[tuple[float, int]]] = [[] for _ in range(n)]

    def score(self, q: SpatialNode, r: SpatialNode) -> bool:
        bound = float(self.kth_dist[self.query_tree.indices[q.start : q.end]].max())
        return q.bound.min_dist(r.bound) > bound

    def base_case(self, q: SpatialNode, r: SpatialNode) -> None:
        q_ids = self.query_tree.indices[q.start : q.end]
        r_ids = self.reference_tree.indices[r.start : r.end]
        distances = _pairwise_distances(
            self.query_tree.points[q_ids], self.reference_tree.points[r_ids]
        )
        for row, query in enumerate(q_ids):
            candidates = self.neighbors[query]
            threshold = self.kth_dist[query]
            for col, reference in enumerate(r_ids):
                if self.exclude_self and query == reference:
                    continue
                distance = float(distances[row, col])
                if distance >= threshold and len(candidates) >= self.k:
                    continue
                # Insert keeping the list sorted by distance (ties by
                # reference id for determinism across schedules).
                entry = (distance, int(reference))
                lo, hi = 0, len(candidates)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if candidates[mid] < entry:
                        lo = mid + 1
                    else:
                        hi = mid
                candidates.insert(lo, entry)
                if len(candidates) > self.k:
                    candidates.pop()
                if len(candidates) >= self.k:
                    threshold = candidates[-1][0]
                    self.kth_dist[query] = threshold

    def base_case_batch(
        self, qs: list[SpatialNode], rs: list[SpatialNode]
    ) -> None:
        """Block form: one distance computation, exact per-pair inserts.

        The candidate-list maintenance is inherently sequential (each
        insert can move the pruning threshold consulted by the next),
        so the inserts replay in pair order; what gets batched is the
        distance computation — a single broadcast expression for the
        whole block instead of one small NumPy call per pair.  The
        distances are elementwise identical to the scalar path, so the
        resulting lists are too.
        """
        from repro.dualtree.batch import block_distances, leaf_blocks

        query_blocks = leaf_blocks(self.query_tree)
        reference_blocks = leaf_blocks(self.reference_tree)
        q_rows = query_blocks.rows(qs)
        r_rows = reference_blocks.rows(rs)
        distances = block_distances(query_blocks, reference_blocks, q_rows, r_rows)
        q_ids = query_blocks.ids[q_rows]
        r_ids = reference_blocks.ids[r_rows]
        q_counts = query_blocks.counts[q_rows]
        r_counts = reference_blocks.counts[r_rows]
        for pair in range(len(qs)):
            pair_distances = distances[pair]
            pair_r_ids = r_ids[pair]
            for row in range(q_counts[pair]):
                query = int(q_ids[pair, row])
                candidates = self.neighbors[query]
                threshold = self.kth_dist[query]
                for col in range(r_counts[pair]):
                    reference = int(pair_r_ids[col])
                    if self.exclude_self and query == reference:
                        continue
                    distance = float(pair_distances[row, col])
                    if distance >= threshold and len(candidates) >= self.k:
                        continue
                    entry = (distance, reference)
                    lo, hi = 0, len(candidates)
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if candidates[mid] < entry:
                            lo = mid + 1
                        else:
                            hi = mid
                    candidates.insert(lo, entry)
                    if len(candidates) > self.k:
                        candidates.pop()
                    if len(candidates) >= self.k:
                        threshold = candidates[-1][0]
                        self.kth_dist[query] = threshold

    def neighbor_ids(self) -> np.ndarray:
        """(n, k) reference ids, nearest first (-1 pads short lists)."""
        result = np.full((len(self.neighbors), self.k), -1, dtype=int)
        for query, candidates in enumerate(self.neighbors):
            for position, (_dist, reference) in enumerate(candidates):
                result[query, position] = reference
        return result

    def neighbor_dists(self) -> np.ndarray:
        """(n, k) distances, nearest first (inf pads short lists)."""
        result = np.full((len(self.neighbors), self.k), np.inf)
        for query, candidates in enumerate(self.neighbors):
            for position, (distance, _reference) in enumerate(candidates):
                result[query, position] = distance
        return result

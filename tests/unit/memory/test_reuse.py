"""Unit tests for reuse-distance analysis (Olken + naive oracle)."""

import pytest

from repro.memory import (
    FenwickTree,
    ReuseDistanceAnalyzer,
    distances_of_key,
    naive_reuse_distances,
)


class TestFenwickTree:
    def test_prefix_sums(self):
        tree = FenwickTree(8)
        tree.add(0, 3)
        tree.add(3, 2)
        tree.add(7, 1)
        assert tree.prefix_sum(0) == 3
        assert tree.prefix_sum(2) == 3
        assert tree.prefix_sum(3) == 5
        assert tree.prefix_sum(7) == 6

    def test_range_sum(self):
        tree = FenwickTree(10)
        for index in range(10):
            tree.add(index, 1)
        assert tree.range_sum(2, 5) == 4
        assert tree.range_sum(5, 2) == 0
        assert tree.range_sum(0, 9) == 10

    def test_grow_preserves_contents(self):
        tree = FenwickTree(4)
        tree.add(1, 5)
        tree.add(3, 7)
        tree.grow(32)
        assert len(tree) == 32
        assert tree.prefix_sum(3) == 12
        tree.add(20, 1)
        assert tree.prefix_sum(31) == 13

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)


class TestNaiveOracle:
    def test_textbook_example(self):
        # a b c a : distance of second 'a' is 2 (b and c in between)
        assert naive_reuse_distances(["a", "b", "c", "a"]) == [None, None, None, 2]

    def test_immediate_reuse_is_zero(self):
        assert naive_reuse_distances(["x", "x"]) == [None, 0]

    def test_duplicates_between_count_once(self):
        # a b b a : only one unique location between
        assert naive_reuse_distances(["a", "b", "b", "a"]) == [None, None, 0, 1]


class TestAnalyzer:
    def test_matches_naive_on_fixed_trace(self):
        trace = ["a", "b", "a", "c", "b", "a", "a", "d", "c", "b"]
        analyzer = ReuseDistanceAnalyzer()
        assert analyzer.process(trace) == naive_reuse_distances(trace)

    def test_cold_access_counting(self):
        analyzer = ReuseDistanceAnalyzer()
        analyzer.process(["a", "b", "a"])
        assert analyzer.cold_accesses == 2
        assert analyzer.num_accesses == 3

    def test_histogram_accumulates(self):
        analyzer = ReuseDistanceAnalyzer()
        analyzer.process(["a", "b", "a", "b", "a"])
        # distances: a@2 -> 1, b@3 -> 1, a@4 -> 1
        assert analyzer.histogram == {1: 3}

    def test_cdf_monotone_and_bounded(self):
        analyzer = ReuseDistanceAnalyzer()
        analyzer.process(list("abcabcxyzabc"))
        cdf = analyzer.cdf()
        fractions = [fraction for _d, fraction in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] <= 1.0

    def test_fraction_at_most(self):
        analyzer = ReuseDistanceAnalyzer()
        analyzer.process(["a", "a", "b", "a"])
        # distances: 0 (a), 1 (a after b)
        assert analyzer.fraction_at_most(0) == pytest.approx(1 / 4)
        assert analyzer.fraction_at_most(1) == pytest.approx(2 / 4)

    def test_mean_finite_distance(self):
        analyzer = ReuseDistanceAnalyzer()
        analyzer.process(["a", "b", "a", "b"])  # distances 1, 1
        assert analyzer.mean_finite_distance() == pytest.approx(1.0)
        assert ReuseDistanceAnalyzer().mean_finite_distance() == 0.0

    def test_grows_past_initial_capacity(self):
        analyzer = ReuseDistanceAnalyzer()
        trace = [k % 7 for k in range(5000)]
        distances = analyzer.process(trace)
        assert distances[-1] == 6  # steady-state round-robin distance

    def test_empty_cdf(self):
        assert ReuseDistanceAnalyzer().cdf() == []


class TestDistancesOfKey:
    def test_selects_single_key(self):
        trace = ["a", "b", "a", "c", "a"]
        assert distances_of_key(trace, "a") == [None, 1, 1]
        assert distances_of_key(trace, "b") == [None]
        assert distances_of_key(trace, "zzz") == []

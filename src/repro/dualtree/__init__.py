"""Dual-tree n-body substrate (Curtin et al.-style, Section 6).

* :mod:`repro.dualtree.boxes` — hyperrectangle and metric-ball bounds;
* :mod:`repro.dualtree.spatial` — shared spatial-node/tree machinery;
* :mod:`repro.dualtree.kdtree` / :mod:`repro.dualtree.vptree` — tree
  builders;
* :mod:`repro.dualtree.rules` — tree-independent Score/BaseCase rule
  sets (point correlation, NN, k-NN);
* :mod:`repro.dualtree.traverser` — the lowering onto the nested
  recursion template (Score as ``truncateInner2?``);
* :mod:`repro.dualtree.algorithms` — the PC/NN/KNN/VP benchmarks as
  runnable objects;
* :mod:`repro.dualtree.batch` — padded leaf blocks and vectorized
  block distances for the batched executor;
* :mod:`repro.dualtree.brute` — brute-force oracles.
"""

from repro.dualtree.algorithms import (
    KNearestNeighbors,
    NearestNeighbor,
    PointCorrelation,
    VPNearestNeighbors,
)
from repro.dualtree.batch import (
    BoundArrays,
    LeafBlocks,
    block_distances,
    bound_arrays,
    build_leaf_blocks,
    leaf_blocks,
    min_dists_to_tree,
    spatial_payload,
    spatial_soa_view,
)
from repro.dualtree.boxes import Ball, HRect, point_dist
from repro.dualtree.brute import (
    brute_knn,
    brute_nearest_neighbor,
    brute_point_correlation,
)
from repro.dualtree.kde import KdeRules, KernelDensity, brute_kde, gaussian_kernel
from repro.dualtree.kdtree import build_kdtree
from repro.dualtree.range_search import (
    RangeSearch,
    RangeSearchRules,
    brute_range_search,
)
from repro.dualtree.rules import (
    DualTreeRules,
    KNearestNeighborRules,
    NearestNeighborRules,
    PointCorrelationRules,
)
from repro.dualtree.spatial import SpatialNode, SpatialTree
from repro.dualtree.traverser import dual_tree_footprint, dual_tree_spec
from repro.dualtree.vptree import build_vptree

__all__ = [
    "Ball",
    "BoundArrays",
    "DualTreeRules",
    "HRect",
    "LeafBlocks",
    "block_distances",
    "bound_arrays",
    "build_leaf_blocks",
    "leaf_blocks",
    "min_dists_to_tree",
    "KNearestNeighborRules",
    "KNearestNeighbors",
    "KdeRules",
    "KernelDensity",
    "NearestNeighbor",
    "brute_kde",
    "gaussian_kernel",
    "NearestNeighborRules",
    "PointCorrelation",
    "PointCorrelationRules",
    "RangeSearch",
    "RangeSearchRules",
    "SpatialNode",
    "brute_range_search",
    "SpatialTree",
    "VPNearestNeighbors",
    "brute_knn",
    "brute_nearest_neighbor",
    "brute_point_correlation",
    "build_kdtree",
    "build_vptree",
    "dual_tree_footprint",
    "dual_tree_spec",
    "point_dist",
    "spatial_payload",
    "spatial_soa_view",
]

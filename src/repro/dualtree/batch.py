"""Padded leaf blocks: the dual-tree side of batched execution.

The batched executor (:mod:`repro.core.batched`) hands the rules whole
*blocks* of (query leaf, reference leaf) pairs at once.  To vectorize
across a block, every leaf's points are staged into one padded array
per tree — shape ``(num_leaves, capacity, dim)``, where ``capacity``
is the largest leaf's point count — together with the matching point
ids and a validity mask.  A block of pairs then becomes two row-index
gathers plus a single broadcast distance computation, instead of one
small NumPy expression per pair.

Padding never changes results: distances are computed elementwise (so
valid entries are bit-identical to the per-pair computation), and the
padded tail is either masked out (PC) or pinned to ``+inf`` so that
mins and argmins ignore it (NN/KNN).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dualtree.boxes import HRect
from repro.dualtree.spatial import SpatialNode, SpatialTree
from repro.spaces.soa import PayloadGetter, SoATree, to_soa


@dataclass
class LeafBlocks:
    """Padded per-leaf point storage for one spatial tree."""

    #: (num_leaves, capacity, dim) point coordinates, zero-padded
    points: np.ndarray
    #: (num_leaves, capacity) point ids, -1-padded
    ids: np.ndarray
    #: (num_leaves, capacity) True where a real point sits
    valid: np.ndarray
    #: (num_leaves,) real point count per leaf
    counts: np.ndarray
    #: pre-order ``node.number`` -> row in the arrays above
    row_of: dict[int, int]

    def rows(self, leaves: list[SpatialNode]) -> np.ndarray:
        """Row indices for a list of leaf nodes."""
        row_of = self.row_of
        return np.fromiter(
            (row_of[leaf.number] for leaf in leaves),
            dtype=np.intp,
            count=len(leaves),
        )


def build_leaf_blocks(tree: SpatialTree) -> LeafBlocks:
    """Stage a tree's leaves into padded arrays."""
    leaves = tree.leaves()
    capacity = max((leaf.count for leaf in leaves), default=1)
    dim = int(tree.points.shape[1])
    points = np.zeros((len(leaves), capacity, dim), dtype=tree.points.dtype)
    ids = np.full((len(leaves), capacity), -1, dtype=np.int64)
    valid = np.zeros((len(leaves), capacity), dtype=bool)
    counts = np.zeros(len(leaves), dtype=np.intp)
    row_of: dict[int, int] = {}
    for row, leaf in enumerate(leaves):
        owned = tree.indices[leaf.start : leaf.end]
        count = len(owned)
        points[row, :count] = tree.points[owned]
        ids[row, :count] = owned
        valid[row, :count] = True
        counts[row] = count
        row_of[leaf.number] = row
    return LeafBlocks(
        points=points, ids=ids, valid=valid, counts=counts, row_of=row_of
    )


def leaf_blocks(tree: SpatialTree) -> LeafBlocks:
    """Blocks for a tree, built once and cached on the tree object."""
    cached = getattr(tree, "_leaf_blocks", None)
    if cached is None:
        cached = build_leaf_blocks(tree)
        tree._leaf_blocks = cached  # type: ignore[attr-defined]
    return cached


def spatial_payload(tree: SpatialTree) -> dict[str, PayloadGetter]:
    """Payload getters for packing a spatial tree into SoA columns.

    Besides the point-slice bounds every spatial node carries
    (``start``/``end``/``count``), each node gets a ``leaf_row``: its
    row in the tree's padded :class:`LeafBlocks` for leaves, ``-1`` for
    internal nodes.  A SoA-native spatial kernel can thus turn a block
    of layout positions into leaf-block row gathers — the same staging
    the node-based ``work_batch`` kernels do through ``row_of`` lookups,
    minus the per-node attribute walk.
    """
    row_of = leaf_blocks(tree).row_of
    return {
        "start": lambda node: node.start,
        "end": lambda node: node.end,
        "count": lambda node: node.count,
        "is_leaf": lambda node: not node.children,
        "leaf_row": lambda node: row_of.get(node.number, -1),
    }


def spatial_soa_view(tree: SpatialTree, order: str = "preorder") -> SoATree:
    """A packed SoA view of a spatial tree with leaf-block columns.

    Built once per (tree, order) and cached on the tree object, like
    :func:`leaf_blocks`.  Note the executors' own ``soa_view`` cache is
    keyed on the *root node* and uses the inferred payload; this helper
    exists for kernels that want the richer :func:`spatial_payload`
    columns.
    """
    views = getattr(tree, "_soa_views", None)
    if views is None:
        views = {}
        tree._soa_views = views  # type: ignore[attr-defined]
    view = views.get(order)
    if view is None:
        view = to_soa(tree.root, order, payload=spatial_payload(tree))
        views[order] = view
    return view


def block_distances(
    query_blocks: LeafBlocks,
    reference_blocks: LeafBlocks,
    query_rows: np.ndarray,
    reference_rows: np.ndarray,
) -> np.ndarray:
    """(pairs, q_capacity, r_capacity) Euclidean distances for a block.

    Elementwise identical to
    :func:`repro.dualtree.rules._pairwise_distances` on the valid
    entries of every pair — the same subtract/square/sum/sqrt sequence
    runs per element, so batching introduces no floating drift.

    For small dimensionalities the squared terms accumulate axis by
    axis (avoiding a 4-D temporary); NumPy reduces short axes
    sequentially, so the left-to-right accumulation reproduces
    ``(diff * diff).sum(axis=-1)`` bit for bit.  Higher dimensions use
    the literal reduction to stay aligned with NumPy's pairwise
    summation blocking.
    """
    a = query_blocks.points[query_rows]
    b = reference_blocks.points[reference_rows]
    dim = a.shape[2]
    if dim >= 8:
        diff = a[:, :, None, :] - b[:, None, :, :]
        return np.sqrt((diff * diff).sum(axis=3))
    total = np.zeros((a.shape[0], a.shape[1], b.shape[1]))
    for axis in range(dim):
        diff = a[:, :, None, axis] - b[:, None, :, axis]
        total += diff * diff
    return np.sqrt(total)


@dataclass
class BoundArrays:
    """Per-node hyperrectangle bounds as arrays, pre-order-indexed."""

    #: (num_nodes, dim) lower corners, indexed by ``node.number``
    mins: np.ndarray
    #: (num_nodes, dim) upper corners, indexed by ``node.number``
    maxs: np.ndarray


#: Cache sentinel for trees whose bounds are not hyperrectangles.
_NO_BOUND_ARRAYS = "unsupported"


def bound_arrays(tree: SpatialTree) -> Optional[BoundArrays]:
    """Stage a tree's node bounds into arrays, cached on the tree.

    Returns ``None`` for trees whose bounds are not axis-aligned
    hyperrectangles (vantage-point trees carry metric balls) — callers
    fall back to scalar bound evaluation.
    """
    cached = getattr(tree, "_bound_arrays", None)
    if cached is _NO_BOUND_ARRAYS:
        return None
    if cached is not None:
        return cached
    nodes = list(tree.root.iter_preorder())
    if not all(isinstance(node.bound, HRect) for node in nodes):  # type: ignore[attr-defined]
        tree._bound_arrays = _NO_BOUND_ARRAYS  # type: ignore[attr-defined]
        return None
    dim = nodes[0].bound.dim  # type: ignore[attr-defined]
    mins = np.zeros((len(nodes), dim))
    maxs = np.zeros((len(nodes), dim))
    for node in nodes:
        mins[node.number] = node.bound.mins  # type: ignore[attr-defined]
        maxs[node.number] = node.bound.maxs  # type: ignore[attr-defined]
    cached = BoundArrays(mins=mins, maxs=maxs)
    tree._bound_arrays = cached  # type: ignore[attr-defined]
    return cached


def min_dists_to_tree(
    bound: HRect, arrays: BoundArrays
) -> np.ndarray:
    """Minimum distance from one hyperrectangle to every tree node.

    Vectorized transcription of :meth:`repro.dualtree.boxes.HRect.min_dist`
    — per axis the same gap expression, squared and accumulated in the
    same order, then one sqrt — so each entry is bit-identical to the
    scalar call.
    """
    mins, maxs = arrays.mins, arrays.maxs
    total = np.zeros(len(mins))
    for axis, (query_lo, query_hi) in enumerate(zip(bound.mins, bound.maxs)):
        lo_b = mins[:, axis]
        hi_b = maxs[:, axis]
        gap = np.where(lo_b > query_hi, lo_b - query_hi, query_lo - hi_b)
        total += np.where(gap > 0.0, gap * gap, 0.0)
    return np.sqrt(total)


def point_prune_row(
    point: tuple, arrays: BoundArrays, radius: float
) -> np.ndarray:
    """Per-point truncation row: "prune node i for this point?".

    The degenerate-box form of :func:`min_dists_to_tree` — the point as
    a zero-volume :class:`HRect` — which is exactly the expression a
    one-point query leaf evaluates in the serial traversal, so each
    entry is bit-identical to that leaf's scalar decision.  A row is a
    pure function of ``(point, reference tree, radius)``, independent
    of whatever batch tree the point was admitted under; that is what
    makes rows cacheable across differently-shaped admission ticks
    (``repro.serve.rules.SubtreeVerdictCache``), and the conjunction of
    a leaf's point rows a sound refinement of its bound-based prune.
    """
    return min_dists_to_tree(HRect(point, point), arrays) > radius


# -- conformance markers ----------------------------------------------
#
# The backend-conformance analyzer (repro.transform.lint.backend)
# cannot see through these helpers' caching writes onto tree objects.
# ``__conformance_staged__`` declares "pure modulo a one-time staged
# copy of tree data" (surfaced to users as a TW109 info finding);
# ``__conformance_pure__`` declares a plain read-only computation.
leaf_blocks.__conformance_staged__ = True  # type: ignore[attr-defined]
build_leaf_blocks.__conformance_staged__ = True  # type: ignore[attr-defined]
spatial_payload.__conformance_staged__ = True  # type: ignore[attr-defined]
spatial_soa_view.__conformance_staged__ = True  # type: ignore[attr-defined]
bound_arrays.__conformance_staged__ = True  # type: ignore[attr-defined]
block_distances.__conformance_pure__ = True  # type: ignore[attr-defined]
min_dists_to_tree.__conformance_pure__ = True  # type: ignore[attr-defined]
point_prune_row.__conformance_pure__ = True  # type: ignore[attr-defined]

"""Unit tests for recursion twisting (Figure 4a)."""

import pytest

from repro.core import (
    NestedRecursionSpec,
    OpCounter,
    WorkRecorder,
    run_original,
    run_twisted,
)
from repro.spaces import balanced_tree, list_tree, paper_inner_tree, paper_outer_tree


def paper_spec(**kwargs):
    return NestedRecursionSpec(paper_outer_tree(), paper_inner_tree(), **kwargs)


class TestFigure4Schedule:
    def test_exact_paper_schedule(self):
        # Hand-derived from Figure 4(a)'s pseudocode; the Section 3.2
        # reuse distances confirm this is the paper's Figure 4(b).
        recorder = WorkRecorder()
        run_twisted(paper_spec(), instrument=recorder)
        assert recorder.points[:10] == [
            ("A", 1), ("A", 2), ("A", 3), ("A", 4), ("A", 5), ("A", 6), ("A", 7),
            ("B", 1), ("C", 1), ("D", 1),
        ]
        # The 3x3 tile over {B,C,D} x {2,3,4}:
        assert recorder.points[10:19] == [
            ("B", 2), ("B", 3), ("B", 4),
            ("C", 2), ("C", 3), ("C", 4),
            ("D", 2), ("D", 3), ("D", 4),
        ]

    def test_same_iterations_as_original(self):
        spec = paper_spec()
        original, twisted = WorkRecorder(), WorkRecorder()
        run_original(spec, instrument=original)
        run_twisted(spec, instrument=twisted)
        assert sorted(original.points) == sorted(twisted.points)

    def test_per_outer_inner_order_preserved(self):
        # The intra-traversal invariant that makes twisting sound
        # whenever interchange is sound (Section 3.3).
        spec = paper_spec()
        original, twisted = WorkRecorder(), WorkRecorder()
        run_original(spec, instrument=original)
        run_twisted(spec, instrument=twisted)
        for outer_label in "ABCDEFG":
            assert [i for o, i in original.points if o == outer_label] == [
                i for o, i in twisted.points if o == outer_label
            ]


class TestListTreesDegenerate:
    def test_twisting_list_trees_is_safe(self):
        # List trees offer no size hierarchy; twisting must still
        # enumerate every iteration exactly once.
        spec = NestedRecursionSpec(list_tree(5), list_tree(4))
        original, twisted = WorkRecorder(), WorkRecorder()
        run_original(spec, instrument=original)
        run_twisted(spec, instrument=twisted)
        assert sorted(original.points) == sorted(twisted.points)


class TestCutoff:
    def test_huge_cutoff_reproduces_original_order(self):
        # cutoff >= inner tree size: never twist.
        spec = paper_spec()
        original, cut = WorkRecorder(), WorkRecorder()
        run_original(spec, instrument=original)
        run_twisted(spec, instrument=cut, cutoff=7)
        assert cut.points == original.points

    def test_zero_cutoff_is_parameterless(self):
        spec = paper_spec()
        parameterless, cut = WorkRecorder(), WorkRecorder()
        run_twisted(spec, instrument=parameterless)
        run_twisted(spec, instrument=cut, cutoff=0)
        assert cut.points == parameterless.points

    def test_intermediate_cutoff_still_complete(self):
        spec = NestedRecursionSpec(balanced_tree(31), balanced_tree(31))
        original, cut = WorkRecorder(), WorkRecorder()
        run_original(spec, instrument=original)
        run_twisted(spec, instrument=cut, cutoff=7)
        assert sorted(original.points) == sorted(cut.points)

    def test_cutoff_reduces_bookkeeping(self):
        spec = NestedRecursionSpec(balanced_tree(63), balanced_tree(63))
        free, cut = OpCounter(), OpCounter()
        run_twisted(spec, instrument=free)
        run_twisted(spec, instrument=cut, cutoff=15)
        assert cut.counts["call"] < free.counts["call"]


class TestIrregularTwisting:
    def truncation(self, o, i):
        return o.label == "B" and i.label == 2

    def test_executed_set_matches_original(self):
        spec = paper_spec(truncate_inner2=self.truncation)
        original, twisted = WorkRecorder(), WorkRecorder()
        run_original(spec, instrument=original)
        run_twisted(spec, instrument=twisted)
        assert set(original.points) == set(twisted.points)
        assert len(twisted.points) == 46

    def test_counter_mode_equivalent(self):
        spec = paper_spec(truncate_inner2=self.truncation)
        flags, counters = WorkRecorder(), WorkRecorder()
        run_twisted(spec, instrument=flags)
        run_twisted(spec, instrument=counters, use_counters=True)
        assert flags.points == counters.points

    def test_subtree_truncation_preserves_set(self):
        spec = paper_spec(truncate_inner2=lambda o, i: i.label == 2)
        with_opt, without = WorkRecorder(), WorkRecorder()
        run_twisted(spec, instrument=with_opt, subtree_truncation=True)
        run_twisted(spec, instrument=without, subtree_truncation=False)
        assert set(with_opt.points) == set(without.points)

    def test_twist_visits_fewer_than_interchange(self):
        # The Section 4.2 claim: twisting's regular phases can truncate
        # structurally, so it visits far fewer points than interchange.
        from repro.core import run_interchanged

        spec = NestedRecursionSpec(
            balanced_tree(63),
            balanced_tree(63),
            truncate_inner2=lambda o, i: (o.number + i.number) % 3 == 0,
        )
        twist, interchange, original = OpCounter(), OpCounter(), OpCounter()
        run_original(spec, instrument=original)
        run_twisted(spec, instrument=twist)
        run_interchanged(spec, instrument=interchange)
        assert original.counts["visit"] <= twist.counts["visit"]
        assert twist.counts["visit"] < interchange.counts["visit"]

    def test_truncation_state_cleaned_up(self):
        spec = paper_spec(truncate_inner2=self.truncation)
        run_twisted(spec)
        for node in spec.outer_root.iter_preorder():
            assert node.trunc is False

"""Figure 7: speedup of recursion twisting on all six benchmarks.

The paper reports speedups between 1.77x (VP) and 10.88x (PC) with a
geometric mean of 3.94x.  This driver runs every benchmark under the
original and twisted schedules on the simulated machine and reports
modeled speedups; Figure 8's counters come from the same runs
(:mod:`repro.bench.experiments.fig8`), as they did in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.machine import bench_hierarchy
from repro.bench.reporting import ExperimentReport, ascii_bar
from repro.bench.runner import run_case
from repro.bench.workloads import BenchmarkCase, all_cases
from repro.core.schedules import ORIGINAL, TWIST
from repro.memory.counters import PerfReport, geomean_speedup, speedup

#: raw data shape: benchmark name -> (baseline report, twisted report)
Fig7Data = dict[str, tuple[PerfReport, PerfReport]]


def run_fig7(
    scale: float = 1.0, cases: Optional[list[BenchmarkCase]] = None
) -> Fig7Data:
    """Run all six benchmarks under original and twisted schedules."""
    data: Fig7Data = {}
    for case in cases if cases is not None else all_cases(scale):
        baseline = run_case(case, ORIGINAL, bench_hierarchy)
        twisted = run_case(case, TWIST, bench_hierarchy)
        data[case.name] = (baseline, twisted)
    return data


def fig7_report(data: Fig7Data) -> ExperimentReport:
    """Render the Figure 7 speedup chart as a table."""
    report = ExperimentReport(
        title="Figure 7: speedup of recursion twisting over the baseline",
        columns=["benchmark", "speedup", "", "baseline cycles", "twisted cycles"],
    )
    values = {name: speedup(b, t) for name, (b, t) in data.items()}
    top = max(values.values()) if values else 1.0
    for name, (baseline, twisted) in data.items():
        report.add_row(
            name,
            f"{values[name]:.2f}x",
            ascii_bar(values[name], top, width=30),
            baseline.cycles,
            twisted.cycles,
        )
    report.add_row(
        "geomean",
        f"{geomean_speedup(list(data.values())):.2f}x",
        "",
        "",
        "",
    )
    report.add_note("paper: 1.77x (VP) to 10.88x (PC), geomean 3.94x")
    for name, (baseline, twisted) in data.items():
        if not _same_result(baseline.result, twisted.result):
            report.add_note(
                f"WARNING: {name} results differ between schedules!"
            )
    return report


def _same_result(a: object, b: object) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))
    return a == b

"""Unit tests for trace persistence."""

import os

import numpy as np
import pytest

from repro.core import AccessTraceRecorder, NestedRecursionSpec, run_original
from repro.errors import MemorySimError
from repro.memory import (
    ReuseDistanceAnalyzer,
    Trace,
    from_tuples,
    load_trace,
    save_trace,
)
from repro.spaces import balanced_tree


@pytest.fixture
def recorded():
    spec = NestedRecursionSpec(balanced_tree(15), balanced_tree(15))
    recorder = AccessTraceRecorder()
    run_original(spec, instrument=recorder)
    return recorder.trace


class TestRoundTrip:
    def test_tuples_round_trip(self, recorded):
        trace = from_tuples(recorded)
        assert trace.as_tuples() == recorded
        assert len(trace) == len(recorded)

    def test_file_round_trip(self, recorded, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_trace(path, recorded)
        loaded = load_trace(path)
        assert loaded.as_tuples() == recorded

    def test_save_accepts_trace_object(self, recorded, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_trace(path, from_tuples(recorded))
        assert load_trace(path).as_tuples() == recorded

    def test_interning(self, recorded):
        trace = from_tuples(recorded)
        assert sorted(trace.space_names) == ["inner", "outer"]
        assert trace.spaces.dtype == np.int64


class TestReplay:
    def test_replay_matches_live_analysis(self, recorded):
        live = ReuseDistanceAnalyzer()
        live.process(recorded)
        replayed = from_tuples(recorded).replay_reuse()
        assert replayed.histogram == live.histogram
        assert replayed.cold_accesses == live.cold_accesses


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(MemorySimError, match="cannot read"):
            load_trace(str(tmp_path / "ghost.npz"))

    def test_wrong_content(self, tmp_path):
        path = str(tmp_path / "other.npz")
        np.savez(path, unrelated=np.arange(3))
        with pytest.raises(MemorySimError, match="not a trace file"):
            load_trace(path)

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        save_trace(path, [])
        assert load_trace(path).as_tuples() == []

"""CLI tests for the ``lint`` subcommand and transform/lint integration."""

import json

import pytest

from repro.transform.__main__ import main

TEMPLATE = '''
from repro.transform import outer_recursion, inner_recursion

@outer_recursion(inner="inner")
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

@inner_recursion
def inner(o, i):
    if {guard}:
        return
    {work}
    inner(o, i.left)
    inner(o, i.right)
'''

SAFE = TEMPLATE.format(guard="i is None", work="o.data = o.data + i.data")
UNSAFE = TEMPLATE.format(guard="i is None", work="i.data = i.data + o.data")
ADAPTIVE = TEMPLATE.format(
    guard="i is None or i.data > o.best",
    work="o.best = min(o.best, i.data)",
)


def write(tmp_path, source, name="case.py"):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


class TestLintExitCodes:
    def test_safe_source_exits_zero(self, tmp_path, capsys):
        assert main(["lint", write(tmp_path, SAFE)]) == 0
        out = capsys.readouterr().out
        assert "verdict: interchange-safe" in out

    def test_unsafe_source_exits_four(self, tmp_path, capsys):
        assert main(["lint", write(tmp_path, UNSAFE)]) == 4
        out = capsys.readouterr().out
        assert "error[TW010]" in out
        assert "verdict: unsafe" in out

    def test_adaptive_source_exits_five(self, tmp_path, capsys):
        assert main(["lint", write(tmp_path, ADAPTIVE)]) == 5
        out = capsys.readouterr().out
        assert "warning[TW023]" in out
        assert "verdict: needs-dynamic-check" in out

    def test_unparsable_source_exits_three(self, tmp_path, capsys):
        assert main(["lint", write(tmp_path, "def broken(:\n")]) == 3
        assert "TW001" in capsys.readouterr().out

    def test_unannotated_source_exits_one(self, tmp_path, capsys):
        assert main(["lint", write(tmp_path, "def f(o, i):\n    pass\n")]) == 1
        assert "TW002" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "ghost.py")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_mismatched_name_flags_exit_two(self, tmp_path, capsys):
        assert main(["lint", write(tmp_path, SAFE), "--outer", "outer"]) == 2


class TestLintOptions:
    def test_json_payload(self, tmp_path, capsys):
        assert main(["lint", write(tmp_path, UNSAFE), "--json"]) == 4
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 2
        assert payload["kind"] == "schedule-safety"
        assert payload["verdict"] == "unsafe"
        assert payload["parallel_safe"] is False
        assert payload["counts"]["errors"] >= 1
        assert payload["counts"]["suppressed"] == 0
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "TW010" in codes
        assert payload["writes"][0]["path"] == "i.data"

    def test_json_counts_suppressions(self, tmp_path, capsys):
        source = TEMPLATE.format(
            guard="i is None",
            work="mystery(o, i)  # lint: ignore[TW013]",
        )
        assert main(["lint", write(tmp_path, source), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["suppressed"] == 1
        assert payload["suppressed"][0]["code"] == "TW013"

    def test_explicit_names(self, tmp_path, capsys):
        unannotated = SAFE.replace("@outer_recursion(inner=\"inner\")\n", "")
        unannotated = unannotated.replace("@inner_recursion\n", "")
        path = write(tmp_path, unannotated)
        assert main(["lint", path, "--outer", "outer", "--inner", "inner"]) == 0

    def test_assume_pure_flag(self, tmp_path):
        source = TEMPLATE.format(guard="i is None", work="o.data = dist(o, i)")
        path = write(tmp_path, source)
        assert main(["lint", path]) == 5
        assert main(["lint", path, "--assume-pure", "dist"]) == 0


class TestTransformGating:
    def test_transform_refuses_unsafe_source(self, tmp_path, capsys):
        assert main([write(tmp_path, UNSAFE)]) == 4
        captured = capsys.readouterr()
        assert "TW010" in captured.err
        assert captured.out == ""  # no code generated

    def test_allow_unproven_overrides_refusal(self, tmp_path, capsys):
        assert main([write(tmp_path, UNSAFE), "--allow-unproven"]) == 0
        captured = capsys.readouterr()
        assert "def outer_twisted(" in captured.out
        assert "TW010" in captured.err  # findings still reported

    def test_no_lint_skips_analysis(self, tmp_path, capsys):
        assert main([write(tmp_path, UNSAFE), "--no-lint"]) == 0
        captured = capsys.readouterr()
        assert "def outer_twisted(" in captured.out
        assert "TW010" not in captured.err

    def test_adaptive_source_transforms_with_warning(self, tmp_path, capsys):
        assert main([write(tmp_path, ADAPTIVE)]) == 0
        captured = capsys.readouterr()
        assert "def outer_twisted(" in captured.out
        assert "TW023" in captured.err

    def test_explicit_transform_subcommand(self, tmp_path, capsys):
        assert main(["transform", write(tmp_path, SAFE)]) == 0
        assert "def outer_swapped(" in capsys.readouterr().out

    def test_transform_json_includes_lint_report(self, tmp_path, capsys):
        assert main([write(tmp_path, SAFE), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["outer"] == "outer"
        assert payload["lint"]["verdict"] == "interchange-safe"
        assert "def outer_twisted(" in payload["source"]

    def test_transform_json_no_lint_is_null(self, tmp_path, capsys):
        assert main([write(tmp_path, SAFE), "--json", "--no-lint"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["lint"] is None


class TestModuleSmoke:
    def test_module_invocation_via_subprocess(self, tmp_path):
        """The documented entry point works end to end."""
        import subprocess
        import sys

        path = write(tmp_path, SAFE)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.transform", "lint", path],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "interchange-safe" in completed.stdout


class TestLintSpecCLI:
    def test_single_proven_benchmark_exits_zero(self, capsys):
        assert main(["lint-spec", "--benchmark", "TJ"]) == 0
        out = capsys.readouterr().out
        assert "verdict: soa-safe" in out

    def test_full_suite_exits_five_on_nn(self, capsys):
        """NN's order-sensitive update is the one designed hole, so
        the whole-suite run reports needs-dynamic-check (exit 5)."""
        assert main(["lint-spec", "--scale", "0.02"]) == 5
        out = capsys.readouterr().out
        assert "TW108" in out
        assert "verdict: needs-dynamic-check" in out
        assert "verdict: soa-safe" in out  # TJ/MM still proven

    def test_unknown_benchmark_exits_two(self, capsys):
        assert main(["lint-spec", "--benchmark", "XX"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_json_suite_payload(self, capsys):
        assert main(["lint-spec", "--scale", "0.02", "--json"]) == 5
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 2
        assert payload["kind"] == "spec-conformance-suite"
        specs = payload["specs"]
        assert len(specs) == 7
        for spec in specs:
            assert spec["kind"] == "spec-conformance"
            assert spec["schema_version"] == 2
            assert set(spec["backends"]) == {"recursive", "batched", "soa"}
            assert spec["counts"]["suppressed"] == 0
        verdicts = {spec["verdict"] for spec in specs}
        assert "needs-dynamic-check" in verdicts
        assert "soa-safe" in verdicts


class TestLintLowerCLI:
    def test_tj_exits_zero_fully_certified(self, capsys):
        assert main(["lint-lower", "--benchmark", "TJ"]) == 0
        out = capsys.readouterr().out
        assert "lower: lowerable" in out
        assert "independence: independent" in out

    def test_mm_exits_zero_and_states_its_precondition(self, capsys):
        assert main(["lint-lower", "--benchmark", "MM"]) == 0
        out = capsys.readouterr().out
        assert "lower: lowerable" in out
        assert "precondition:" in out
        assert "outer.data" in out

    def test_full_suite_exits_five_on_the_dualtree_gap(self, capsys):
        # PC/NN/KNN/VP/KDE have no SoA kernel yet (TW208), so the
        # suite verdict is needs-runtime-check — exit 5, not failure.
        assert main(["lint-lower", "--scale", "0.02"]) == 5
        out = capsys.readouterr().out
        assert "TW208" in out

    def test_unknown_benchmark_exits_two(self, capsys):
        assert main(["lint-lower", "--benchmark", "XX"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_json_suite_payload(self, capsys):
        assert main(["lint-lower", "--scale", "0.02", "--json"]) == 5
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 2
        assert payload["kind"] == "lowerability-suite"
        specs = payload["specs"]
        assert len(specs) == 7
        for spec in specs:
            assert spec["kind"] == "lowerability"
            assert spec["schema_version"] == 2
            assert spec["counts"]["suppressed"] == 0
        by_name = {spec["spec"].split("(")[0]: spec for spec in specs}
        assert by_name["TJ"]["lower"] == "lowerable"
        assert by_name["TJ"]["independence"] == "independent"
        assert by_name["MM"]["lower"] == "lowerable"
        assert by_name["MM"]["independence"] == "independent"
        assert by_name["PC"]["lower"] == "needs-runtime-check"


class TestAnalyzerErrorJSON:
    """A crashed analyzer must still emit valid JSON under --json."""

    @staticmethod
    def _install_broken_case(monkeypatch):
        import types

        import repro.bench.workloads as workloads

        # A deliberately broken spec factory: make_spec() hands the
        # analyzer something that is not a spec at all.
        broken = types.SimpleNamespace(name="BROKEN", make_spec=lambda: None)
        monkeypatch.setattr(
            workloads, "wallclock_cases", lambda scale=1.0: [broken]
        )

    def test_lint_spec_crash_emits_analyzer_error_json(
        self, monkeypatch, capsys
    ):
        self._install_broken_case(monkeypatch)
        assert main(["lint-spec", "--json"]) == 2
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["schema_version"] == 2
        assert payload["kind"] == "analyzer-error"
        assert payload["error"]["type"]
        assert payload["diagnostics"] == []
        assert payload["counts"] == {
            "errors": 0,
            "warnings": 0,
            "suppressed": 0,
        }
        assert "Traceback" in captured.err

    def test_lint_lower_crash_emits_analyzer_error_json(
        self, monkeypatch, capsys
    ):
        self._install_broken_case(monkeypatch)
        assert main(["lint-lower", "--json"]) == 2
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["schema_version"] == 2
        assert payload["kind"] == "analyzer-error"
        assert "Traceback" in captured.err

    def test_lint_crash_emits_analyzer_error_json(
        self, monkeypatch, capsys, tmp_path
    ):
        import repro.transform.__main__ as cli

        def boom(*args, **kwargs):
            raise RuntimeError("injected analyzer crash")

        monkeypatch.setattr(cli, "lint_source", boom)
        assert main(["lint", write(tmp_path, SAFE), "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "analyzer-error"
        assert payload["error"]["type"] == "RuntimeError"
        assert payload["error"]["message"] == "injected analyzer crash"

    def test_lint_crash_without_json_keeps_stdout_empty(
        self, monkeypatch, capsys, tmp_path
    ):
        import repro.transform.__main__ as cli

        def boom(*args, **kwargs):
            raise RuntimeError("injected analyzer crash")

        monkeypatch.setattr(cli, "lint_source", boom)
        assert main(["lint", write(tmp_path, SAFE)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "analyzer failed" in captured.err

"""Frontier-batched explicit-stack executors with vectorized leaf kernels.

The recursive executors (:mod:`repro.core.executors`,
:mod:`repro.core.interchange`, :mod:`repro.core.twisting`) execute one
Python ``work(o, i)`` call per iteration, so wall-clock time is
dominated by interpreter overhead rather than by the locality effects
the paper is about.  This module provides drop-in batched counterparts
— ``run_original_batched``, ``run_interchanged_batched``,
``run_twisted_batched`` — that traverse with explicit stacks (no
recursion limit) and *defer* work into blocks dispatched through the
spec's vectorized ``work_batch`` (one NumPy call per block), the same
traversal/base-case split production dual-tree frameworks use
(Curtin et al., PAPERS.md).

Exactness contract
------------------

* **Instrumentation is bit-identical.**  All instrument events (ops,
  accesses, work points) are emitted inline during the traversal, in
  exactly the order the recursive executors emit them; only the user's
  ``work`` calls are deferred.  The parity suite in
  ``tests/unit/core/test_batched.py`` and
  ``tests/property/test_batched_parity.py`` asserts event-for-event
  equality.
* **Work order is preserved.**  Deferred pairs are dispatched in the
  order they were reached; ``work_batch`` must be semantically
  equivalent to calling ``work`` on each pair in that order.
* **Stateful truncation stays correct.**  When
  ``spec.truncation_observes_work`` is set (dual-tree NN/KNN bounds,
  KDE's side-effecting ``Score``), the dispatcher flushes all pending
  work *before* any ``truncateInner2?`` evaluation whose outer node
  has deferred pairs, so no truncation decision can ever observe stale
  state.  The contract is per-outer-node: a truncation check for outer
  node ``o`` may observe the effects of work points whose outer node
  is ``o`` (the dual-tree situation — all rule state is per-query
  leaf); cross-outer effects would require flushing on every check and
  are not supported.

When the run is uninstrumented *and* the spec never truncates (TJ,
MM), the executors switch to a bulk mode where each inner traversal
collapses into two C-speed list extends over precomputed pre-order
sequences — this is where the headline wall-clock speedups come from.
"""

from __future__ import annotations

from typing import Optional

from repro.core.instruments import NULL_INSTRUMENT, Instrument
from repro.core.spec import INNER_TREE, OUTER_TREE, NestedRecursionSpec, _never
from repro.core.truncation import make_policy
from repro.spaces.node import IndexNode

#: Pending pairs are dispatched whenever at least this many accumulate.
DEFAULT_BATCH_SIZE = 8192


class BatchDispatcher:
    """Accumulates deferred (o, i) work pairs and dispatches blocks.

    Pairs are appended in schedule order and flushed — to the spec's
    ``work_batch`` when present, else to a scalar ``work`` loop — when
    the block reaches ``batch_size``, when a stateful truncation check
    requires a barrier, and once at the end of the run.
    """

    __slots__ = (
        "work",
        "work_batch",
        "batch_size",
        "enabled",
        "track_outers",
        "_outer_pending",
        "_os",
        "_is",
    )

    def __init__(
        self, spec: NestedRecursionSpec, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> None:
        self.work = spec.work
        self.work_batch = spec.work_batch
        self.batch_size = batch_size
        self.enabled = spec.work is not None or spec.work_batch is not None
        self.track_outers = self.enabled and spec.truncation_observes_work
        self._outer_pending: set[IndexNode] = set()
        self._os: list[IndexNode] = []
        self._is: list[IndexNode] = []

    def add(self, o: IndexNode, i: IndexNode) -> None:
        """Defer one work pair."""
        self._os.append(o)
        self._is.append(i)
        if self.track_outers:
            self._outer_pending.add(o)
        if len(self._os) >= self.batch_size:
            self.flush()

    def add_many(self, os: list, is_: list) -> None:
        """Defer a run of work pairs (two parallel lists)."""
        self._os.extend(os)
        self._is.extend(is_)
        if self.track_outers:
            self._outer_pending.update(os)
        if len(self._os) >= self.batch_size:
            self.flush()

    def barrier(self, o: IndexNode) -> None:
        """Flush if outer node ``o`` has deferred, unexecuted work.

        Called before every stateful ``truncateInner2?`` evaluation so
        the check observes exactly the state the recursive executor
        would have produced by this point.
        """
        if o in self._outer_pending:
            self.flush()

    def flush(self) -> None:
        """Dispatch all pending pairs, preserving their order.

        The pending lists are cleared *in place* (not rebound), so the
        executors' fast paths may hold direct references to them.
        Consequently ``work_batch`` implementations must not retain the
        sequences they are passed beyond the call.
        """
        if not self._os:
            return
        os, is_ = self._os, self._is
        if self.track_outers:
            self._outer_pending.clear()
        if self.work_batch is not None:
            self.work_batch(os, is_)
        elif self.work is not None:
            work = self.work
            for o, i in zip(os, is_):
                work(o, i)
        del os[:]
        del is_[:]


def _bulk_eligible(spec: NestedRecursionSpec, ins: Instrument) -> bool:
    """May the run skip per-point bookkeeping entirely?

    True when nothing can observe the per-point pacing: no instrument
    is attached, no truncation predicate can fire (the spec's
    predicates are the shared never-truncate defaults), and there is
    work to dispatch.
    """
    return (
        ins is NULL_INSTRUMENT
        and spec.truncate_inner2 is None
        and spec.truncate_inner1 is _never
        and spec.truncate_outer is _never
        and (spec.work is not None or spec.work_batch is not None)
    )


def _block_truncation(
    spec: NestedRecursionSpec, instrumented: bool
) -> Optional[object]:
    """The block form of ``truncateInner2?``, when it may be used.

    Block evaluation pre-computes every decision for an outer node in
    one call, which is only legal when nothing can observe the
    difference: the run is uninstrumented (per-decision ``trunc_check``
    ops are skipped) and the truncation is stateless
    (``truncation_observes_work`` unset — a stateful predicate must be
    evaluated at its schedule position).  ``truncate_inner1`` must also
    be the never-truncating default so the fast traversal loop may omit
    it.
    """
    if (
        instrumented
        or spec.truncate_inner2_batch is None
        or spec.truncation_observes_work
        or spec.truncate_inner1 is not _never
    ):
        return None
    return spec.truncate_inner2_batch


def engaged_kernels(
    spec: NestedRecursionSpec, instrument: Optional[Instrument] = None
) -> dict[str, bool]:
    """Which vectorized fast paths a batched run would actually engage.

    The sanitize backend (:mod:`repro.core.sanitize`) uses this to
    report *what* was exercised: an instrumented lockstep phase never
    engages ``bulk`` or ``block_truncation``, so a separate
    uninstrumented phase is needed to cover them.
    """
    ins = NULL_INSTRUMENT if instrument is None else instrument
    return {
        "work_batch": spec.work_batch is not None,
        "bulk": _bulk_eligible(spec, ins),
        "block_truncation": _block_truncation(spec, ins is not NULL_INSTRUMENT)
        is not None,
    }


def _as_prune_list(decisions: object) -> Optional[list]:
    """Normalize a block-truncation result to a ``number``-indexed list.

    ``True``/``False``/``None`` pass through (uniform decision or
    unavailable); arrays become plain lists for cheap per-node lookup.
    """
    if decisions is None or decisions is True or decisions is False:
        return decisions
    if hasattr(decisions, "tolist"):
        return decisions.tolist()
    return list(decisions)


def _preorder_index(root: IndexNode) -> tuple[list[IndexNode], dict[IndexNode, int]]:
    """Pre-order node list plus node -> position lookup.

    A node's subtree occupies the contiguous slice
    ``[position, position + node.size)`` of the list, which is what
    lets the bulk mode turn whole subtree traversals into slices.
    """
    nodes = list(root.iter_preorder())
    positions = {node: index for index, node in enumerate(nodes)}
    return nodes, positions


def run_original_batched(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> None:
    """Batched counterpart of :func:`repro.core.executors.run_original`."""
    ins = instrument or NULL_INSTRUMENT
    instrumented = ins is not NULL_INSTRUMENT
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    truncate_inner2 = spec.truncate_inner2
    ins_op = ins.op
    ins_access = ins.access
    ins_work = ins.work
    dispatcher = BatchDispatcher(spec, batch_size)
    add = dispatcher.add
    needs_barrier = (
        dispatcher.track_outers and truncate_inner2 is not None
    )
    barrier = dispatcher.barrier
    bulk = _bulk_eligible(spec, ins)
    inner_root = spec.inner_root
    inner_pre = list(inner_root.iter_preorder()) if bulk else None
    add_many = dispatcher.add_many
    block_t2 = _block_truncation(spec, instrumented)
    pending_os, pending_is = dispatcher._os, dispatcher._is
    flush = dispatcher.flush

    spec.reset_truncation_state()
    outer_stack = [spec.outer_root]
    while outer_stack:
        o = outer_stack.pop()
        if instrumented:
            ins_op("call")
            ins_op("trunc_check")
        if truncate_outer(o):
            continue
        if bulk:
            add_many([o] * len(inner_pre), inner_pre)
        elif (
            block_t2 is not None
            and (prune := _as_prune_list(block_t2(o))) is not None
        ):
            # Pre-evaluated truncation: the traversal consults a plain
            # list instead of calling the predicate per pair, and
            # appends pairs directly into the dispatcher's pending
            # lists.  Work order and the executed pair set are exactly
            # those of the generic loop below.
            if prune is not True:
                inner_stack = [inner_root]
                append_o = pending_os.append
                append_i = pending_is.append
                if prune is False:
                    while inner_stack:
                        i = inner_stack.pop()
                        append_o(o)
                        append_i(i)
                        if i.children:
                            inner_stack.extend(reversed(i.children))
                else:
                    while inner_stack:
                        i = inner_stack.pop()
                        if prune[i.number]:
                            continue
                        append_o(o)
                        append_i(i)
                        if i.children:
                            inner_stack.extend(reversed(i.children))
                if len(pending_os) >= batch_size:
                    flush()
        else:
            inner_stack = [inner_root]
            while inner_stack:
                i = inner_stack.pop()
                if instrumented:
                    ins_op("call")
                    ins_op("trunc_check")
                if truncate_inner1(i):
                    continue
                if instrumented:
                    ins_op("visit")
                if truncate_inner2 is not None:
                    if needs_barrier:
                        barrier(o)
                    if instrumented:
                        ins_op("trunc_check")
                    if truncate_inner2(o, i):
                        continue
                if instrumented:
                    ins_access(INNER_TREE, i)
                    ins_access(OUTER_TREE, o)
                    ins_work(o, i)
                add(o, i)
                if i.children:
                    inner_stack.extend(reversed(i.children))
        if o.children:
            outer_stack.extend(reversed(o.children))
    dispatcher.flush()


#: Work-stack tags for the interchanged/twisted engines.
_CLOSE_PHASE = 0  # release one truncation phase's flags
_VISIT_SWAPPED = 1  # swapped-order visit of an inner node
_VISIT_REGULAR = 2  # regular-order visit of an outer node (twist only)
_DISPATCH_REGULAR = 3  # size-compare an outer child in regular mode
_DISPATCH_SWAPPED = 4  # size-compare an inner child in swapped mode


def run_interchanged_batched(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
    use_counters: bool = False,
    subtree_truncation: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> None:
    """Batched counterpart of :func:`repro.core.interchange.run_interchanged`."""
    ins = instrument or NULL_INSTRUMENT
    instrumented = ins is not NULL_INSTRUMENT
    policy = make_policy(spec, use_counters)
    irregular = spec.is_irregular
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    ins_op = ins.op
    ins_access = ins.access
    ins_work = ins.work
    dispatcher = BatchDispatcher(spec, batch_size)
    add = dispatcher.add
    needs_barrier = dispatcher.track_outers and irregular
    barrier = dispatcher.barrier
    check_and_mark = policy.check_and_mark
    bulk = _bulk_eligible(spec, ins)
    outer_root = spec.outer_root
    outer_pre = list(outer_root.iter_preorder()) if bulk else None
    add_many = dispatcher.add_many

    spec.reset_truncation_state()
    # Entries: (tag, inner node or None, phase frame or None).
    stack: list[tuple] = [(_VISIT_SWAPPED, spec.inner_root, None)]
    while stack:
        tag, i, frame = stack.pop()
        if tag == _CLOSE_PHASE:
            policy.close_phase(frame, ins)
            continue
        if instrumented:
            ins_op("call")
            ins_op("trunc_check")
        if truncate_inner1(i):
            continue
        frame = policy.open_phase()
        if bulk:
            add_many(outer_pre, [i] * len(outer_pre))
            all_truncated = False
        else:
            # Flat swapped-order traversal of the outer tree for the
            # fixed inner node ``i`` — the recursive
            # recurse_inner_swapped, unrolled.  ``all_truncated`` is a
            # conjunction over every live outer node, so accumulating
            # it across the flat loop is order-independent.
            all_truncated = True
            outer_stack = [outer_root]
            while outer_stack:
                o = outer_stack.pop()
                if instrumented:
                    ins_op("call")
                    ins_op("trunc_check")
                if truncate_outer(o):
                    continue
                if instrumented:
                    ins_op("visit")
                if irregular:
                    if needs_barrier:
                        barrier(o)
                    skipped = check_and_mark(o, i, frame, ins)
                else:
                    skipped = False
                if not skipped:
                    if instrumented:
                        ins_access(INNER_TREE, i)
                        ins_access(OUTER_TREE, o)
                        ins_work(o, i)
                    add(o, i)
                    all_truncated = False
                if o.children:
                    outer_stack.extend(reversed(o.children))
        stack.append((_CLOSE_PHASE, None, frame))
        if not (subtree_truncation and all_truncated):
            for child in reversed(i.children):
                stack.append((_VISIT_SWAPPED, child, None))
    dispatcher.flush()


def run_twisted_batched(
    spec: NestedRecursionSpec,
    instrument: Optional[Instrument] = None,
    cutoff: Optional[int] = None,
    use_counters: bool = False,
    subtree_truncation: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> None:
    """Batched counterpart of :func:`repro.core.twisting.run_twisted`.

    Implements the full Figure 4(a) state machine — regular and swapped
    phases, size-compare/twist dispatch, the Section 7.1 cutoff, the
    Section 4 flag/counter machinery and Section 4.2 subtree truncation
    — on one tagged work stack.
    """
    ins = instrument or NULL_INSTRUMENT
    instrumented = ins is not NULL_INSTRUMENT
    policy = make_policy(spec, use_counters)
    irregular = spec.is_irregular
    truncate_outer = spec.truncate_outer
    truncate_inner1 = spec.truncate_inner1
    truncate_inner2 = spec.truncate_inner2
    ins_op = ins.op
    ins_access = ins.access
    ins_work = ins.work
    dispatcher = BatchDispatcher(spec, batch_size)
    add = dispatcher.add
    needs_barrier = dispatcher.track_outers and irregular
    barrier = dispatcher.barrier
    check_and_mark = policy.check_and_mark
    subtree_truncated = policy.subtree_truncated
    bulk = _bulk_eligible(spec, ins)
    if bulk:
        outer_pre, outer_pos = _preorder_index(spec.outer_root)
        inner_pre, inner_pos = _preorder_index(spec.inner_root)
    add_many = dispatcher.add_many
    block_t2 = _block_truncation(spec, instrumented)
    # An outer node's regular phases recur across many tiles, so block
    # decisions are computed once per outer node and memoized.
    prune_cache: dict[IndexNode, object] = {}
    pending_os, pending_is = dispatcher._os, dispatcher._is

    spec.reset_truncation_state()
    # Entries: (tag, outer node, inner node, phase frame).
    stack: list[tuple] = [(_VISIT_REGULAR, spec.outer_root, spec.inner_root, None)]
    while stack:
        tag, o, i, frame = stack.pop()
        if tag == _CLOSE_PHASE:
            policy.close_phase(frame, ins)
            continue
        if tag == _DISPATCH_REGULAR:
            # Figure 4(a) lines 9-13: hand child ``o`` to whichever
            # order the size comparison (and the Section 7.1 cutoff)
            # selects.
            if instrumented:
                ins_op("size_compare")
            if o.size <= i.size and (cutoff is None or i.size > cutoff):
                if instrumented:
                    ins_op("twist")
                tag = _VISIT_SWAPPED
            else:
                tag = _VISIT_REGULAR
        elif tag == _DISPATCH_SWAPPED:
            # Figure 4(a) lines 23-27: hand child ``i`` back to the
            # regular order when it fits.
            if instrumented:
                ins_op("size_compare")
            if i.size <= o.size:
                if instrumented:
                    ins_op("twist")
                tag = _VISIT_REGULAR
            else:
                tag = _VISIT_SWAPPED
        if tag == _VISIT_REGULAR:
            if instrumented:
                ins_op("call")
                ins_op("trunc_check")
            if truncate_outer(o):
                continue
            if irregular and subtree_truncated(o, i, ins):
                # A flag set by an enclosing swapped phase covers this
                # whole inner subtree for ``o``; skip the traversal but
                # still dispatch o's children below.
                pass
            elif bulk:
                position = inner_pos[i]
                span = inner_pre[position : position + i.size]
                add_many([o] * len(span), span)
            elif block_t2 is not None and (
                prune := (
                    prune_cache[o]
                    if o in prune_cache
                    else prune_cache.setdefault(
                        o, _as_prune_list(block_t2(o))
                    )
                )
            ) is not None:
                # Same fast traversal as the original executor, over
                # the tile's inner subtree.
                if prune is not True:
                    inner_stack = [i]
                    append_o = pending_os.append
                    append_i = pending_is.append
                    if prune is False:
                        while inner_stack:
                            i2 = inner_stack.pop()
                            append_o(o)
                            append_i(i2)
                            if i2.children:
                                inner_stack.extend(reversed(i2.children))
                    else:
                        while inner_stack:
                            i2 = inner_stack.pop()
                            if prune[i2.number]:
                                continue
                            append_o(o)
                            append_i(i2)
                            if i2.children:
                                inner_stack.extend(reversed(i2.children))
                    if len(pending_os) >= batch_size:
                        dispatcher.flush()
            else:
                # Flat regular-order inner traversal (the original
                # template's recurseInner, structural truncateInner2?
                # cut-off included).
                inner_stack = [i]
                while inner_stack:
                    i2 = inner_stack.pop()
                    if instrumented:
                        ins_op("call")
                        ins_op("trunc_check")
                    if truncate_inner1(i2):
                        continue
                    if instrumented:
                        ins_op("visit")
                    if irregular:
                        if needs_barrier:
                            barrier(o)
                        if instrumented:
                            ins_op("trunc_check")
                        if truncate_inner2(o, i2):
                            continue
                    if instrumented:
                        ins_access(INNER_TREE, i2)
                        ins_access(OUTER_TREE, o)
                        ins_work(o, i2)
                    add(o, i2)
                    if i2.children:
                        inner_stack.extend(reversed(i2.children))
            for child in reversed(o.children):
                stack.append((_DISPATCH_REGULAR, child, i, None))
        else:  # _VISIT_SWAPPED
            if instrumented:
                ins_op("call")
                ins_op("trunc_check")
            if truncate_inner1(i):
                continue
            frame = policy.open_phase()
            if bulk:
                position = outer_pos[o]
                span = outer_pre[position : position + o.size]
                add_many(span, [i] * len(span))
                all_truncated = False
            else:
                all_truncated = True
                outer_stack = [o]
                while outer_stack:
                    o2 = outer_stack.pop()
                    if instrumented:
                        ins_op("call")
                        ins_op("trunc_check")
                    if truncate_outer(o2):
                        continue
                    if instrumented:
                        ins_op("visit")
                    if irregular:
                        if needs_barrier:
                            barrier(o2)
                        skipped = check_and_mark(o2, i, frame, ins)
                    else:
                        skipped = False
                    if not skipped:
                        if instrumented:
                            ins_access(INNER_TREE, i)
                            ins_access(OUTER_TREE, o2)
                            ins_work(o2, i)
                        add(o2, i)
                        all_truncated = False
                    if o2.children:
                        outer_stack.extend(reversed(o2.children))
            stack.append((_CLOSE_PHASE, None, None, frame))
            if not (subtree_truncation and all_truncated):
                for child in reversed(i.children):
                    stack.append((_DISPATCH_SWAPPED, o, child, None))
    dispatcher.flush()

"""Unit tests for perf reports and derived metrics."""

import pytest

from repro.memory import (
    PerfReport,
    geomean_speedup,
    instruction_overhead,
    speedup,
    work_overhead,
)
from repro.memory.cache import CacheStats


def make_report(cycles=100.0, instructions=50.0, work_points=10, l3_missrate=0.5):
    accesses = 100
    misses = int(accesses * l3_missrate)
    stats = CacheStats(accesses=accesses, hits=accesses - misses, misses=misses)
    return PerfReport(
        benchmark="X",
        schedule="original",
        work_points=work_points,
        op_counts={"call": 5},
        accesses=accesses,
        levels={"L2": CacheStats(accesses=10, hits=5, misses=5), "L3": stats},
        memory_accesses=misses,
        instructions=instructions,
        cycles=cycles,
    )


class TestMetrics:
    def test_speedup(self):
        assert speedup(make_report(cycles=200), make_report(cycles=100)) == 2.0

    def test_speedup_infinite_guard(self):
        assert speedup(make_report(), make_report(cycles=0)) == float("inf")

    def test_instruction_overhead(self):
        base = make_report(instructions=100)
        transformed = make_report(instructions=172)
        assert instruction_overhead(base, transformed) == pytest.approx(0.72)

    def test_instruction_overhead_zero_base(self):
        assert instruction_overhead(make_report(instructions=0), make_report()) == 0.0

    def test_work_overhead(self):
        base = make_report(work_points=100)
        transformed = make_report(work_points=104)
        assert work_overhead(base, transformed) == pytest.approx(0.04)

    def test_geomean(self):
        pairs = [
            (make_report(cycles=400), make_report(cycles=100)),  # 4x
            (make_report(cycles=100), make_report(cycles=100)),  # 1x
        ]
        assert geomean_speedup(pairs) == pytest.approx(2.0)

    def test_geomean_empty(self):
        assert geomean_speedup([]) == 1.0


class TestReportAccessors:
    def test_miss_rate_lookup(self):
        report = make_report(l3_missrate=0.25)
        assert report.miss_rate("L3") == pytest.approx(0.25)

    def test_cpi(self):
        report = make_report(cycles=100, instructions=50)
        assert report.cpi == 2.0
        assert make_report(instructions=0).cpi == 0.0

    def test_summary_mentions_everything(self):
        text = make_report().summary()
        assert "X" in text and "original" in text and "L3" in text

"""A cycle-level cost model over simulated instruction and miss counts.

The paper reports wall-clock speedups on real hardware.  Our substitute
(DESIGN.md Section 2) reconstructs time from the two quantities the
transformation actually changes, both of which we measure exactly:

* the *instruction stream* — every truncation check, recursive call,
  size comparison, flag/counter manipulation, and ``work`` invocation
  is counted by the executors (:mod:`repro.core.instruments`);
* the *memory behaviour* — per-level hit counts from the simulated
  hierarchy (:mod:`repro.memory.hierarchy`).

``cycles = instructions * base_cpi + sum(level_hits * level_latency)``

Latencies default to Xeon-era round numbers (L1 4, L2 12, L3 40,
memory 200 cycles).  ``base_cpi`` is the cost of a non-memory
instruction; per-benchmark *work weights* (how many instructions one
``work`` invocation is worth) come from the paper's CPI discussion —
e.g. VP is compute-bound (baseline CPI 0.93) so its work weight is
large, which is precisely why its speedup is small despite a huge
miss-rate reduction (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import MemorySimError


@dataclass(frozen=True)
class CostModel:
    """Latency parameters of the simulated machine.

    ``hit_latencies`` must have one entry per cache level, L1 first;
    ``memory_latency`` is charged to accesses that miss every level.
    """

    hit_latencies: Sequence[int] = (4, 12, 40)
    memory_latency: int = 200
    base_cpi: float = 1.0

    def access_cycles(
        self, level_hits: Sequence[int], memory_accesses: int
    ) -> float:
        """Cycles spent in the memory system.

        ``level_hits[k]`` is the number of accesses satisfied by cache
        level ``k``.
        """
        if len(level_hits) != len(self.hit_latencies):
            raise MemorySimError(
                f"cost model has {len(self.hit_latencies)} levels but was "
                f"given {len(level_hits)} hit counts"
            )
        cycles = float(memory_accesses * self.memory_latency)
        for hits, latency in zip(level_hits, self.hit_latencies):
            cycles += hits * latency
        return cycles

    def cycles(
        self,
        instructions: float,
        level_hits: Sequence[int],
        memory_accesses: int,
    ) -> float:
        """Total modeled cycles for one schedule execution."""
        return instructions * self.base_cpi + self.access_cycles(
            level_hits, memory_accesses
        )


DEFAULT_COST_MODEL = CostModel()


@dataclass(frozen=True)
class WorkCost:
    """How expensive one ``work`` invocation is, per benchmark.

    ``instructions`` is the instruction weight of a single work point
    (beyond the memory accesses it performs).  The per-benchmark values
    used by the experiments live in :mod:`repro.bench.workloads`; the
    calibration rationale is the paper's Section 6.2: "the baseline CPI
    for PC is 6.7 — the benchmark is highly memory bound — while the
    baseline CPI for VP is only 0.93".
    """

    instructions: float = 1.0

    def total(self, work_points: int) -> float:
        """Instruction cost of ``work_points`` work invocations."""
        return self.instructions * work_points


#: Instruction weights for the bookkeeping operations the executors
#: count.  One "op" is roughly one ALU-ish instruction; truncation
#: checks and size comparisons are a couple of loads plus a branch.
DEFAULT_OP_WEIGHTS: Mapping[str, float] = {
    "visit": 0.0,  # a marker, not an instruction (Section 4.2 metric)
    "twist": 0.0,  # a marker: mode switch (its compare is counted already)
    "call": 2.0,  # call/return pair
    "trunc_check": 2.0,  # load + branch
    "flag_check": 2.0,
    "flag_set": 2.0,  # store + set insert
    "flag_unset": 2.0,  # per-element of the unTrunc loop (Section 4.3)
    "size_compare": 2.0,  # two loads + compare (the twist decision)
    "counter_check": 2.0,
    "counter_set": 1.0,
    "access": 1.0,  # address computation of one data touch
}


def weighted_instructions(
    op_counts: Mapping[str, int],
    work_points: int,
    work_cost: WorkCost,
    op_weights: Mapping[str, float] = DEFAULT_OP_WEIGHTS,
) -> float:
    """Fold raw op counts into a single instruction total.

    Unknown op kinds get weight 1.0 so custom instruments can add their
    own categories without touching this table.
    """
    total = work_cost.total(work_points)
    for kind, count in op_counts.items():
        total += count * op_weights.get(kind, 1.0)
    return total

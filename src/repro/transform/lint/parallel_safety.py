"""Cross-task race detection for the §7.3 task-parallel executor.

:func:`repro.core.parallel.spawn_tasks` splits the outer recursion
into one task per outer subtree; every task then crosses its subtree
with the *whole shared inner tree*.  A write is task-private exactly
when it is keyed by the outer index — the same criterion as §3.3 — so
any write rooted in the inner tree or in module-global state is
reachable from two spawned tasks at once and races under parallel
execution.

Findings here (TW030) affect only the ``parallel_safe`` dimension of
the report: a sequentially-unsafe shared write already carries its
TW010/TW011 error, and TW030 adds the distinct "this also races under
run_task_parallel" signal the executor integration needs.
"""

from __future__ import annotations

from repro.transform.lint.diagnostics import DiagnosticSink
from repro.transform.lint.footprints import Region, WorkFootprint
from repro.transform.recognizer import RecursionTemplate


def check_parallel_safety(
    template: RecursionTemplate,
    work: WorkFootprint,
    sink: DiagnosticSink,
) -> bool:
    """Intersect write footprints across spawnable outer subtrees.

    Returns True when no cross-task race was found.  Writes whose
    target could not be resolved (TW012 already emitted) leave the
    question open and make the result False as well — an unprovable
    task decomposition is not a safe one.
    """
    safe = True
    for write in work.writes:
        if "outer" in write.path.keyed_by:
            continue  # private to one outer subtree, hence to one task
        if write.path.region is Region.LOCAL:
            continue
        if write.path.region is Region.UNKNOWN:
            safe = False
            continue
        safe = False
        shared_in = (
            "the shared inner tree"
            if write.path.region is Region.INNER
            or "inner" in write.path.keyed_by
            else "module-global state"
        )
        sink.emit(
            "TW030",
            f"write {write.path.display!r} lands in {shared_in}, which "
            f"every task spawned by repro.core.parallel.spawn_tasks "
            f"reaches concurrently: tasks race on it under "
            f"run_task_parallel (§7.3)",
            _span(write),
            hint="key the write by the outer index, or keep this "
            "benchmark sequential",
        )
    return safe


def _span(access) -> object:
    """Adapt an Access back into a node-like span for diagnostics."""

    class _Span:
        """Minimal lineno/col_offset carrier."""

        lineno = access.line
        col_offset = access.col

    return _Span()

"""Unit tests for §7.3 cross-task race detection (TW030)."""

from repro.transform import recognize
from repro.transform.lint import lint_source
from repro.transform.lint.diagnostics import DiagnosticSink
from repro.transform.lint.footprints import analyze_work
from repro.transform.lint.parallel_safety import check_parallel_safety


def analyzed(work: str):
    indented = "\n".join("    " + line for line in work.strip().splitlines())
    source = f'''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

def inner(o, i):
    if i is None:
        return
{indented}
    inner(o, i.left)
    inner(o, i.right)
'''
    template = recognize(source, "outer", "inner")
    sink = DiagnosticSink()
    footprint = analyze_work(template, sink)
    return template, footprint


class TestCheckParallelSafety:
    def test_outer_keyed_write_is_task_private(self):
        template, fp = analyzed("o.data = o.data + i.data")
        sink = DiagnosticSink()
        assert check_parallel_safety(template, fp, sink)
        assert sink.diagnostics == []

    def test_inner_write_races_via_shared_inner_tree(self):
        template, fp = analyzed("i.data = i.data + 1")
        sink = DiagnosticSink()
        assert not check_parallel_safety(template, fp, sink)
        (diag,) = sink.diagnostics
        assert diag.code == "TW030"
        assert "shared inner tree" in diag.message

    def test_global_write_races_via_module_state(self):
        template, fp = analyzed("global total\ntotal = total + 1")
        sink = DiagnosticSink()
        assert not check_parallel_safety(template, fp, sink)
        (diag,) = sink.diagnostics
        assert diag.code == "TW030"
        assert "module-global state" in diag.message

    def test_outer_keyed_table_write_is_task_private(self):
        template, fp = analyzed("table[o.number] = i.data")
        sink = DiagnosticSink()
        assert check_parallel_safety(template, fp, sink)

    def test_unresolved_write_is_unproven_not_raced(self):
        # ``t`` aliases an unknown call result: no TW030 message, but
        # the decomposition is not provably safe either.
        template, fp = analyzed("t = pick(o)\nt.data = 1")
        sink = DiagnosticSink()
        assert not check_parallel_safety(template, fp, sink)
        assert all(d.code != "TW030" for d in sink.diagnostics)


class TestReportIntegration:
    SOURCE = '''
from repro.transform import outer_recursion, inner_recursion

@outer_recursion(inner="inner")
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

@inner_recursion
def inner(o, i):
    if i is None:
        return
    {work}
    inner(o, i.left)
    inner(o, i.right)
'''

    def test_parallel_only_finding_does_not_demote_verdict(self):
        # An inner-keyed write is both TW010 (sequential) and TW030
        # (parallel); the sequential verdict comes from TW010 alone.
        report = lint_source(self.SOURCE.format(work="i.data = o.data"))
        assert report.verdict.value == "unsafe"
        assert not report.parallel_safe
        assert {"TW010", "TW030"} <= report.codes()

    def test_safe_benchmark_is_parallel_safe(self):
        report = lint_source(self.SOURCE.format(work="o.data = i.data"))
        assert report.verdict.value == "interchange-safe"
        assert report.parallel_safe

"""Dual-tree kernel density estimation: approximate rules.

KDE is the flagship *approximate* algorithm of Curtin et al.'s
tree-independent framework: for every query point, estimate
``sum_r K(|q - r|)`` over all reference points, where ``K`` is a
Gaussian kernel.  The dual-tree trick: if the kernel value is nearly
constant over a (query node, reference node) pair — because the
min/max distance bounds pin it into a band narrower than the error
tolerance — the whole pair is *resolved in bulk* with the band's
midpoint and pruned.

This exercises a rule shape the exact algorithms don't: a ``Score``
with a productive side effect.  It still fits the paper's template and
soundness story cleanly, because the decision is a *pure* function of
node geometry (no mutable bounds), so every schedule makes identical
pruning decisions and produces bit-identical estimates — which the
tests assert, along with the analytic error bound against the exact
sum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import NestedRecursionSpec
from repro.dualtree.kdtree import build_kdtree
from repro.dualtree.rules import DualTreeRules, _pairwise_distances
from repro.dualtree.spatial import SpatialNode, SpatialTree
from repro.dualtree.traverser import dual_tree_spec


def gaussian_kernel(distance: float, bandwidth: float) -> float:
    """Unnormalized Gaussian kernel ``exp(-d^2 / (2 h^2))``."""
    scaled = distance / bandwidth
    return math.exp(-0.5 * scaled * scaled)


class KdeRules(DualTreeRules):
    """Approximate Gaussian-KDE rules with absolute tolerance ``epsilon``.

    ``Score`` prunes a pair when the kernel band over its distance
    bounds is narrower than ``2 * epsilon``; the bulk contribution
    (band midpoint x reference count) is credited to every query in
    the query leaf at prune time.  Each pruned reference point thus
    contributes with error at most ``epsilon``, giving the per-query
    analytic bound ``|estimate - exact| <= epsilon * num_references``.
    """

    def __init__(
        self,
        query_tree: SpatialTree,
        reference_tree: SpatialTree,
        bandwidth: float,
        epsilon: float,
    ) -> None:
        if bandwidth <= 0.0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if epsilon < 0.0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.query_tree = query_tree
        self.reference_tree = reference_tree
        self.bandwidth = bandwidth
        self.epsilon = epsilon
        self.density = np.zeros(query_tree.num_points)
        #: reference points resolved in bulk (telemetry)
        self.pruned_contributions = 0

    #: ``Score`` itself writes the density array (the bulk credit), so
    #: deferred base cases must flush before any score of the same
    #: query leaf — otherwise the accumulation order, and hence the
    #: floating-point result, would drift from the recursive executor.
    observes_results = True

    def score(self, q: SpatialNode, r: SpatialNode) -> bool:
        # Kernel is monotone decreasing in distance: the band over the
        # pair is [K(max_dist), K(min_dist)].
        upper = gaussian_kernel(q.bound.min_dist(r.bound), self.bandwidth)
        lower = gaussian_kernel(q.bound.max_dist(r.bound), self.bandwidth)
        if upper - lower <= 2.0 * self.epsilon:
            midpoint = 0.5 * (upper + lower)
            count = r.count
            q_ids = self.query_tree.indices[q.start : q.end]
            self.density[q_ids] += midpoint * count
            self.pruned_contributions += count
            return True
        return False

    def base_case(self, q: SpatialNode, r: SpatialNode) -> None:
        q_ids = self.query_tree.indices[q.start : q.end]
        r_ids = self.reference_tree.indices[r.start : r.end]
        distances = _pairwise_distances(
            self.query_tree.points[q_ids], self.reference_tree.points[r_ids]
        )
        self.density[q_ids] += np.exp(
            -0.5 * (distances / self.bandwidth) ** 2
        ).sum(axis=1)

    def base_case_batch(
        self, qs: list[SpatialNode], rs: list[SpatialNode]
    ) -> None:
        """Block form: one distance computation, per-pair accumulation.

        The per-pair kernel sums are sliced out of the block tensor in
        pair order, so every query's density accumulates in exactly the
        sequence the scalar base case produces — bit-identical results,
        with the distance computation batched.
        """
        from repro.dualtree.batch import block_distances, leaf_blocks

        query_blocks = leaf_blocks(self.query_tree)
        reference_blocks = leaf_blocks(self.reference_tree)
        q_rows = query_blocks.rows(qs)
        r_rows = reference_blocks.rows(rs)
        distances = block_distances(query_blocks, reference_blocks, q_rows, r_rows)
        kernel_values = np.exp(-0.5 * (distances / self.bandwidth) ** 2)
        q_ids_block = query_blocks.ids[q_rows]
        q_counts = query_blocks.counts[q_rows]
        r_counts = reference_blocks.counts[r_rows]
        for pair in range(len(qs)):
            q_count = q_counts[pair]
            self.density[q_ids_block[pair, :q_count]] += kernel_values[
                pair, :q_count, : r_counts[pair]
            ].sum(axis=1)


#: Expected TW2xx verdicts for the KDE spec (see
#: ``repro.dualtree.algorithms.LOWER_VERDICTS`` for the rationale —
#: same SoA-kernel gap, same data-dependent per-query density writes).
LOWER_VERDICT = {
    "lower": "needs-runtime-check",
    "independence": "needs-runtime-check",
}

#: Expected TW30x locality verdicts at the benchmark's default size
#: (scale 1.0) under the paper's Xeon cache model.  KDE's reference
#: tree is small enough that its working set already fits L1 (layout
#: changes are neutral), and its truncation observes work state, so
#: interchange/twist profitability stays ``unknown`` (TW303).
LOCALITY_VERDICT = {
    "interchange": "unknown",
    "twist": "unknown",
    "layout:veb": "neutral",
    "layout:bfs": "neutral",
}


@dataclass
class KernelDensity:
    """Runnable approximate dual-tree Gaussian KDE."""

    queries: np.ndarray
    references: np.ndarray
    bandwidth: float = 0.1
    epsilon: float = 1e-3
    leaf_size: int = 8
    query_tree: SpatialTree = field(init=False)
    reference_tree: SpatialTree = field(init=False)
    rules: KdeRules = field(init=False)

    def __post_init__(self) -> None:
        self.queries = np.asarray(self.queries, dtype=float)
        self.references = np.asarray(self.references, dtype=float)
        self.query_tree = build_kdtree(self.queries, self.leaf_size)
        self.reference_tree = build_kdtree(self.references, self.leaf_size)
        self.rules = self._fresh_rules()

    def _fresh_rules(self) -> KdeRules:
        return KdeRules(
            self.query_tree, self.reference_tree, self.bandwidth, self.epsilon
        )

    def make_spec(self) -> NestedRecursionSpec:
        """Fresh spec with zeroed density accumulators."""
        self.rules = self._fresh_rules()
        return dual_tree_spec(
            self.query_tree, self.reference_tree, self.rules, name="KDE"
        )

    @property
    def result(self) -> np.ndarray:
        """Per-query density estimates from the most recent run."""
        return self.rules.density

    def error_bound(self) -> float:
        """Analytic per-query absolute error bound."""
        return self.epsilon * self.reference_tree.num_points


def brute_kde(
    queries: np.ndarray, references: np.ndarray, bandwidth: float
) -> np.ndarray:
    """Exact per-query kernel sums (the oracle)."""
    diff = queries[:, None, :] - references[None, :, :]
    distances = np.sqrt((diff * diff).sum(axis=2))
    return np.exp(-0.5 * (distances / bandwidth) ** 2).sum(axis=1)

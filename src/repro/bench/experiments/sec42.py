"""Section 4.2 in-text iteration counts: the work-overhead table.

"When running dual-tree point correlation on a 100,000 point input,
the original code performs 1.25 billion iterations.  Recursion
interchange is forced to perform 5.61 billion iterations, because it
cannot truncate any recursions.  Recursion [twisting], in contrast,
performs 1.31 billion iterations, a work overhead of only 4%.  Adding
subtree truncation leads to 1.27 billion iterations, a work overhead
of only 1.8%."

We report the same four configurations on a scaled PC input, counting
*visited* iteration-space points (the ``visit`` op), and additionally
the Section 4.3 counter variant as an ablation.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.reporting import ExperimentReport
from repro.bench.workloads import make_pc
from repro.core.instruments import OpCounter
from repro.core.executors import run_original
from repro.core.interchange import run_interchanged
from repro.core.twisting import run_twisted


def run_sec42(
    num_points: int = 4096, radius: float = 0.35, leaf_size: int = 8
) -> tuple[ExperimentReport, dict[str, int]]:
    """Count visited iterations for each schedule configuration."""
    case = make_pc(num_points=num_points, radius=radius, leaf_size=leaf_size)

    def visits(run: Callable, **kwargs) -> tuple[int, object]:
        spec = case.make_spec()
        ops = OpCounter()
        run(spec, instrument=ops, **kwargs)
        return ops.counts["visit"], case.result()

    counts: dict[str, int] = {}
    results: dict[str, object] = {}
    counts["original"], results["original"] = visits(run_original)
    counts["interchange"], results["interchange"] = visits(run_interchanged)
    counts["interchange+subtree"], results["interchange+subtree"] = visits(
        run_interchanged, subtree_truncation=True
    )
    counts["twist (no subtree trunc)"], results["twist (no subtree trunc)"] = visits(
        run_twisted, subtree_truncation=False
    )
    counts["twist + subtree trunc"], results["twist + subtree trunc"] = visits(
        run_twisted, subtree_truncation=True
    )
    counts["twist + counters"], results["twist + counters"] = visits(
        run_twisted, use_counters=True
    )

    base = counts["original"]
    report = ExperimentReport(
        title=f"Section 4.2: PC iteration counts ({num_points} points)",
        columns=["configuration", "visited iterations", "vs original"],
    )
    for name, count in counts.items():
        report.add_row(name, count, f"{count / base:.3f}x")
    report.add_note(
        "paper (100K points): original 1.25G; interchange 5.61G (4.49x); "
        "twist 1.31G (1.04x); twist+subtree-truncation 1.27G (1.018x)"
    )
    if len({repr(result) for result in results.values()}) != 1:
        report.add_note("WARNING: results differ across configurations!")
    return report, counts

"""Experiment drivers: one module per paper figure/table.

Every driver is a pure function from a size ``scale`` to an
:class:`~repro.bench.reporting.ExperimentReport` (plus raw data), so
the same code serves the quick integration tests (small scale) and the
real benchmark harness (scale 1.0).  The mapping to the paper:

==============  ====================================================
module          reproduces
==============  ====================================================
``fig1_fig4``   Figures 1(c) and 4(b): the 7x7 example schedules,
                plus the Section 3.2 worked reuse distances
``fig5``        Figure 5: reuse-distance CDF of TJ at 1024 nodes
``fig7``        Figure 7: speedup of twisting on all six benchmarks
``fig8``        Figure 8: instruction overhead and L2/L3 miss rates
``fig9``        Figure 9: PC speedup and miss rates vs input size
``fig10``       Figure 10: the Section 7.1 cutoff study on PC
``sec42``       Section 4.2 in-text iteration counts (work overhead)
``sec61``       Section 6.1 benchmark inventory table
==============  ====================================================
"""

from repro.bench.experiments.ablations import (
    run_layout_ablation,
    run_truncation_ablation,
)
from repro.bench.experiments.fig1_fig4 import run_fig1_fig4
from repro.bench.experiments.fig5 import run_fig5
from repro.bench.experiments.fig7 import run_fig7, fig7_report
from repro.bench.experiments.fig8 import fig8_reports
from repro.bench.experiments.fig9 import run_fig9
from repro.bench.experiments.fig10 import run_fig10
from repro.bench.experiments.sec42 import run_sec42
from repro.bench.experiments.sec61 import run_sec61
from repro.bench.experiments.sec72 import run_sec72
from repro.bench.experiments.sec73 import run_sec73

__all__ = [
    "fig7_report",
    "fig8_reports",
    "run_fig1_fig4",
    "run_fig5",
    "run_fig7",
    "run_fig9",
    "run_fig10",
    "run_layout_ablation",
    "run_sec42",
    "run_sec61",
    "run_sec72",
    "run_sec73",
    "run_truncation_ablation",
]

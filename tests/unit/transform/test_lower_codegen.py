"""Unit tests for the ``work_batch_soa`` code generator.

:func:`~repro.transform.lower_codegen.generate_fused_kernel` turns one
certified SoA kernel into a standalone fused function whose parameters
are the position arrays, the packed columns it gathers from, its
captured environment values, and its state-object fields.  These tests
pin the translation itself (staging-call collapse, column/env/state
parameter extraction, one-level state-method inlining), the per-call
re-binding contract, and the precise refusals for constructs outside
the lowerable subset.
"""

import numpy as np
import pytest

from repro.spaces import balanced_tree, soa_view
from repro.transform.lower_codegen import (
    FusedKernel,
    LoweringUnsupported,
    generate_fused_kernel,
)


def _views(n=7, m=5):
    outer = soa_view(balanced_tree(n, data=lambda k: k + 1))
    inner = soa_view(balanced_tree(m, data=lambda k: k + 1))
    # The full cross product, original emission order.
    o_pos = np.repeat(np.arange(n, dtype=np.intp), m)
    i_pos = np.tile(np.arange(m, dtype=np.intp), n)
    return outer, inner, o_pos, i_pos


class _Acc:
    def __init__(self):
        self.total = 0
        self.pairs = 0

    def add(self, outer_values, inner_values):
        self.total += int(outer_values @ inner_values)
        self.pairs += len(outer_values)


def _tj_like_kernel(acc):
    def work_batch_soa(o_view, i_view, o_positions, i_positions):
        rows = np.fromiter(o_positions, dtype=np.intp, count=len(o_positions))
        cols = np.fromiter(i_positions, dtype=np.intp, count=len(i_positions))
        acc.add(o_view.column("data")[rows], i_view.column("data")[cols])

    return work_batch_soa


class TestTranslation:
    def test_staging_calls_collapse_to_the_position_params(self):
        kernel = generate_fused_kernel(_tj_like_kernel(_Acc()))
        assert "fromiter" not in kernel.source
        assert "rows = _o_positions" in kernel.source
        assert "cols = _i_positions" in kernel.source

    def test_columns_env_and_state_become_parameters(self):
        kernel = generate_fused_kernel(_tj_like_kernel(_Acc()))
        assert kernel.o_columns == ("data",)
        assert kernel.i_columns == ("data",)
        assert kernel.state_fields == (("acc", "total"), ("acc", "pairs"))
        assert kernel.env_names == ()

    def test_state_methods_are_inlined_and_fields_returned(self):
        source = generate_fused_kernel(_tj_like_kernel(_Acc())).source
        # The .add() body is inlined: the fused function updates the
        # field parameters and returns them for write-back.
        assert "_state_acc_total" in source
        assert "return (_state_acc_total, _state_acc_pairs)" in source

    def test_env_arrays_travel_as_parameters(self):
        a = np.arange(12.0).reshape(3, 4)
        c = np.zeros(3)

        def work_batch_soa(o_view, i_view, o_positions, i_positions):
            rows = np.asarray(o_positions, dtype=np.intp)
            c[rows] = a[rows, :].sum(axis=1)

        kernel = generate_fused_kernel(work_batch_soa)
        assert set(kernel.env_names) == {"a", "c"}
        assert "np.asarray" not in kernel.source  # staging collapsed


class TestExecution:
    def test_fused_call_matches_the_original_kernel(self):
        outer, inner, o_pos, i_pos = _views()
        direct, fused_acc = _Acc(), _Acc()
        _tj_like_kernel(direct)(outer, inner, o_pos, i_pos)
        fused_kernel = _tj_like_kernel(fused_acc)
        artifact = generate_fused_kernel(fused_kernel)
        artifact.call(fused_kernel, outer, inner, o_pos, i_pos)
        assert (fused_acc.total, fused_acc.pairs) == (direct.total, direct.pairs)
        assert direct.pairs == len(o_pos)

    def test_artifact_rebinds_per_call(self):
        """One artifact serves *fresh* closures: state and columns are
        resolved from the kernel passed to ``call``, not the one the
        artifact was generated from."""
        outer, inner, o_pos, i_pos = _views()
        artifact = generate_fused_kernel(_tj_like_kernel(_Acc()))
        fresh = _Acc()
        fresh_kernel = _tj_like_kernel(fresh)
        artifact.call(fresh_kernel, outer, inner, o_pos, i_pos)
        artifact.call(fresh_kernel, outer, inner, o_pos, i_pos)
        assert fresh.pairs == 2 * len(o_pos)

    def test_missing_captured_name_is_reported(self):
        outer, inner, o_pos, i_pos = _views()
        artifact = generate_fused_kernel(_tj_like_kernel(_Acc()))
        stranger = lambda o_view, i_view, o_positions, i_positions: None
        with pytest.raises(LoweringUnsupported, match="missing"):
            artifact.call(stranger, outer, inner, o_pos, i_pos)


class TestRefusals:
    def _reject(self, fn, match):
        with pytest.raises(LoweringUnsupported, match=match):
            generate_fused_kernel(fn)

    def test_builtin_kernels_have_no_source(self):
        self._reject(max, "cannot read the source")

    def test_wrong_arity(self):
        def work_batch(os, is_):
            pass

        self._reject(work_batch, "exactly")

    def test_control_flow_is_outside_the_subset(self):
        def work_batch_soa(o_view, i_view, o_positions, i_positions):
            for p in o_positions:
                pass

        self._reject(work_batch_soa, "outside the lowerable subset")

    def test_chained_assignment(self):
        def work_batch_soa(o_view, i_view, o_positions, i_positions):
            a = b = np.asarray(o_positions, dtype=np.intp)

        self._reject(work_batch_soa, "chained")

    def test_unknown_captured_object_type(self):
        opaque = object()

        def work_batch_soa(o_view, i_view, o_positions, i_positions):
            rows = np.asarray(o_positions, dtype=np.intp)
            opaque.mystery(rows)

        self._reject(work_batch_soa, "opaque")

    def test_empty_body(self):
        def work_batch_soa(o_view, i_view, o_positions, i_positions):
            pass

        self._reject(work_batch_soa, "empty")


class TestRealKernels:
    """The three certified benchmark kernels all lower."""

    def test_treejoin(self):
        from repro.kernels import TreeJoin

        spec = TreeJoin(9, 9).make_spec()
        kernel = generate_fused_kernel(spec.work_batch_soa)
        assert isinstance(kernel, FusedKernel)
        assert kernel.state_fields == (
            ("accumulator", "total"),
            ("accumulator", "pairs"),
        )

    def test_matmul(self):
        from repro.kernels import MatrixMultiply

        spec = MatrixMultiply(6, 6, p=3).make_spec()
        kernel = generate_fused_kernel(spec.work_batch_soa)
        assert set(kernel.env_names) == {"a", "b", "c"}
        assert "np.einsum" in kernel.source

    def test_gram(self):
        from repro.kernels import GramTable

        spec = GramTable(6, 6).make_spec()
        kernel = generate_fused_kernel(spec.work_batch_soa)
        assert kernel.o_columns == ("data",)
        assert set(kernel.env_names) == {"q", "r", "table"}

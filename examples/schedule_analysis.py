#!/usr/bin/env python
"""Quantifying schedules: tiles, balance, and reuse dominance.

The paper argues twisting's quality visually (Figure 4(b)'s tiles) and
by CDF (Figure 5).  The `repro.analysis` tools turn both arguments into
numbers; this example runs them on a mid-size Tree Join.

Run:  python examples/schedule_analysis.py
"""

from repro.analysis import (
    balance_profile,
    compare_profiles,
    dominance,
    window_balance,
    working_set_fraction,
)
from repro.core import NestedRecursionSpec, WorkRecorder
from repro.core.schedules import INTERCHANGE, ORIGINAL, TWIST
from repro.spaces import balanced_tree

NODES = 255


def spec_factory() -> NestedRecursionSpec:
    return NestedRecursionSpec(balanced_tree(NODES), balanced_tree(NODES))


def show_tile_structure() -> None:
    print(f"--- window balance (squareness), TJ {NODES}x{NODES} ---")
    print("window   original   twisted    (1.0 = square tiles)")
    recorded = {}
    for name, schedule in (("original", ORIGINAL), ("twisted", TWIST)):
        recorder = WorkRecorder()
        schedule.run(spec_factory(), instrument=recorder)
        recorded[name] = recorder.points
    for window in (16, 64, 256, 1024):
        original = window_balance(recorded["original"], window)
        twisted = window_balance(recorded["twisted"], window)
        print(f"{window:>6d}   {original:8.3f}   {twisted:8.3f}")
    print("twisting's windows stay square at every scale: nested tiles.\n")


def show_reuse_dominance() -> None:
    print(f"--- reuse-distance CDF comparison ---")
    profiles = compare_profiles(spec_factory, [ORIGINAL, INTERCHANGE, TWIST])
    report = dominance(profiles["twist"], profiles["original"], 2 * NODES)
    print("r        original   twisted")
    for distance, twisted_frac, original_frac in zip(
        report.distances, report.first, report.second
    ):
        print(f"{distance:>6d}   {original_frac:8.3f}  {twisted_frac:8.3f}")
    print(f"twisted CDF >= original at {report.dominance_fraction:.0%} of sizes")
    print("(the few losses are at tiny r: the paper's 'not uniformly')\n")

    print("--- predicted hit rates (stack-distance theorem) ---")
    for lines in (32, 128, 512):
        print(
            f"cache of {lines:>4d} lines: original "
            f"{working_set_fraction(profiles['original'], lines):6.1%}, "
            f"twisted {working_set_fraction(profiles['twist'], lines):6.1%}"
        )


if __name__ == "__main__":
    show_tile_structure()
    show_reuse_dominance()

"""Cross-validation: static lint verdicts vs. dynamic soundness (§3.3).

The static analyzer (:mod:`repro.transform.lint`) and the dynamic
checker (:mod:`repro.core.soundness`) decide the same criterion —
"every write is keyed by the outer index" — from opposite ends: the
AST versus a concrete recorded run.  These properties pin the two
together over arbitrary trees:

* a **statically safe** verdict (interchange-safe / twist-safe) implies
  the recorded run satisfies §3.3 (``is_outer_parallel``) and that the
  generated interchanged *and* twisted schedules preserve every
  dependence of the original (``compare_recordings(...).is_sound``);
* a **statically refuted** verdict (TW010/TW011) is witnessed
  dynamically: on any input with at least two outer nodes the recorded
  run has ``outer_parallel_violations``.

Methodology: each case pairs work *source* (what the linter sees) with
the equivalent dynamic *footprint function* (what the recorder sees).
The executed module is a shadow whose work is ``probe(o, i)`` feeding
the recorder — valid because every case's guards are pure functions of
the immutable labels, so the shadow executes the exact schedule the
real work would.
"""

from dataclasses import dataclass
from typing import Callable

from hypothesis import given, settings, strategies as st

from repro.core.soundness import (
    FootprintRecorder,
    compare_recordings,
    is_outer_parallel,
    outer_parallel_violations,
)
from repro.spaces import random_tree
from repro.transform import transform_source
from repro.transform.lint import lint_source

SOURCE = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

def inner(o, i):
    if {guard}:
        return
    {work}
    inner(o, i.left)
    inner(o, i.right)
'''


def far(o, i):
    """Pure irregular-truncation predicate over immutable labels."""
    return (o.label * 7 + i.label) % 3 == 0


@dataclass(frozen=True)
class Case:
    """One work/guard shape with its ground-truth dynamic footprint."""

    name: str
    work: str
    guard: str
    footprint: Callable
    #: the verdict the linter must reach on this source
    static_safe: bool


def fp_outer_data(o, i):
    return [
        (("odata", o.label), True),
        (("odata", o.label), False),
        (("idata", i.label), False),
    ]


def fp_inner_data(o, i):
    return [
        (("idata", i.label), True),
        (("idata", i.label), False),
        (("odata", o.label), False),
    ]


def fp_outer_table(o, i):
    return [
        (("table", o.label), True),
        (("odata", o.label), False),
        (("idata", i.label), False),
    ]


def fp_global_total(o, i):
    return [
        (("total",), True),
        (("total",), False),
        (("odata", o.label), False),
    ]


SAFE_CASES = [
    Case(
        "outer-attribute",
        "o.data = o.data + i.data",
        "i is None",
        fp_outer_data,
        True,
    ),
    Case(
        "outer-keyed-table",
        "table[o.label] = o.data * i.data",
        "i is None",
        fp_outer_table,
        True,
    ),
    Case(
        "irregular-pure-guard",
        "o.data = o.data + i.data",
        "i is None or far(o, i)",
        fp_outer_data,
        True,
    ),
]

REFUTED_CASES = [
    Case(
        "inner-attribute",
        "i.data = i.data + o.data",
        "i is None",
        fp_inner_data,
        False,
    ),
    Case(
        "global-accumulator",
        "global total\n    total = total + o.data",
        "i is None",
        fp_global_total,
        False,
    ),
]

#: transform results cached per case: codegen is deterministic and the
#: hypothesis loop would otherwise re-run it hundreds of times.
_TRANSFORMED: dict[str, object] = {}


def schedules_of(case: Case, outer_tree, inner_tree):
    """Record all three generated schedules through the shadow probe."""
    if case.name not in _TRANSFORMED:
        shadow = SOURCE.format(guard=case.guard, work="probe(o, i)")
        _TRANSFORMED[case.name] = transform_source(
            shadow, "outer", "inner", lint=False
        )
    result = _TRANSFORMED[case.name]
    recorders = {}
    for entry in ("outer", "outer_swapped", "outer_twisted"):
        recorder = FootprintRecorder(case.footprint)
        namespace = result.compile({"probe": recorder.work, "far": far})
        getattr(namespace, entry)(outer_tree, inner_tree)
        recorders[entry] = recorder
    return recorders


def lint_case(case: Case):
    source = SOURCE.format(guard=case.guard, work=case.work)
    return lint_source(source, "outer", "inner", assume_pure={"far"})


tree_sizes = st.integers(min_value=1, max_value=12)
seeds = st.integers(min_value=0, max_value=1_000)


class TestStaticSafeImpliesDynamicallySound:
    @settings(max_examples=40, deadline=None)
    @given(
        case=st.sampled_from(SAFE_CASES),
        outer_n=tree_sizes,
        inner_n=tree_sizes,
        outer_seed=seeds,
        inner_seed=seeds,
    )
    def test_safe_verdict_backed_by_recorded_run(
        self, case, outer_n, inner_n, outer_seed, inner_seed
    ):
        report = lint_case(case)
        assert report.verdict.is_statically_safe, (case.name, report.render())

        recorders = schedules_of(
            case,
            random_tree(outer_n, seed=outer_seed),
            random_tree(inner_n, seed=inner_seed),
        )
        original = recorders["outer"]
        # The §3.3 criterion the linter proved holds on the actual run...
        assert is_outer_parallel(original), case.name
        # ...and the generated schedules preserve every dependence.
        for entry in ("outer_swapped", "outer_twisted"):
            verdict = compare_recordings(original, recorders[entry])
            assert verdict.is_sound, (case.name, entry, verdict.violations)

    def test_irregular_case_is_twist_safe_not_interchange_safe(self):
        report = lint_case(SAFE_CASES[2])
        assert report.verdict.value == "twist-safe"
        assert report.irregular is True


class TestStaticRefutationWitnessedDynamically:
    @settings(max_examples=40, deadline=None)
    @given(
        case=st.sampled_from(REFUTED_CASES),
        outer_n=st.integers(min_value=2, max_value=12),
        inner_n=tree_sizes,
        outer_seed=seeds,
        inner_seed=seeds,
    )
    def test_unsafe_verdict_witnessed_by_recorded_run(
        self, case, outer_n, inner_n, outer_seed, inner_seed
    ):
        report = lint_case(case)
        assert report.verdict.value == "unsafe", case.name
        assert report.codes() & {"TW010", "TW011"}

        recorders = schedules_of(
            case,
            random_tree(outer_n, seed=outer_seed),
            random_tree(inner_n, seed=inner_seed),
        )
        # With >= 2 outer nodes every refuted case's shared location is
        # written under two different outer indices: the exact dynamic
        # counterpart of TW010/TW011.
        violations = outer_parallel_violations(recorders["outer"])
        assert violations, case.name
        assert not is_outer_parallel(recorders["outer"])

"""Mutation harness for the TW2xx passes.

Each test seeds one defect into a clean, fully-certified SoA kernel
and asserts the analyzer *flips its verdict* — the static passes are
only trustworthy if every modeled defect class actually moves the
needle.  The clean baseline is re-proven in every test so a flip can
never be an artifact of the harness itself.
"""

import numpy as np
import pytest

from repro.core.spec import NestedRecursionSpec
from repro.spaces.trees import balanced_tree
from repro.transform.lint import lower
from repro.transform.lint.lower import (
    IndependenceVerdict,
    LowerVerdict,
    lint_lower,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    lower.clear_cache()
    yield
    lower.clear_cache()


def noop_work(o, i):
    """Scalar fallback the spec validator requires; effect-free."""
    return None


def spec_with(work_batch_soa) -> NestedRecursionSpec:
    return NestedRecursionSpec(
        outer_root=balanced_tree(15, data=lambda k: k),
        inner_root=balanced_tree(15, data=lambda k: k),
        work=noop_work,
        work_batch_soa=work_batch_soa,
        name="mutant",
    )


def clean_kernel(out: np.ndarray):
    def kernel(o_view, i_view, o_positions, i_positions):
        rows = np.fromiter(o_positions, dtype=np.intp, count=len(o_positions))
        cols = np.fromiter(i_positions, dtype=np.intp, count=len(i_positions))
        out[rows, cols] = o_view.column("data")[rows] * i_view.column("data")[cols]

    return kernel


def certify_baseline():
    report = lint_lower(spec_with(clean_kernel(np.zeros((16, 16)))))
    assert report.lower is LowerVerdict.LOWERABLE
    assert report.independence is IndependenceVerdict.INDEPENDENT
    lower.clear_cache()


def test_the_baseline_kernel_is_fully_certified():
    certify_baseline()


def test_inserted_list_allocation_flips_lowerability():
    certify_baseline()
    out = np.zeros((16, 16))

    def kernel(o_view, i_view, o_positions, i_positions):
        rows = np.fromiter(o_positions, dtype=np.intp, count=len(o_positions))
        cols = np.fromiter(i_positions, dtype=np.intp, count=len(i_positions))
        staged = [float(p) for p in o_positions]  # seeded defect
        out[rows, cols] = np.asarray(staged) * i_view.column("data")[cols]

    report = lint_lower(spec_with(kernel))
    assert report.lower is LowerVerdict.NEEDS_RUNTIME_CHECK
    assert "TW203" in report.codes()


def test_dict_lookup_in_the_hot_loop_flips_to_not_lowerable():
    certify_baseline()
    out = np.zeros((16, 16))
    lookup = {"scale": 2.0}

    def kernel(o_view, i_view, o_positions, i_positions):
        rows = np.fromiter(o_positions, dtype=np.intp, count=len(o_positions))
        cols = np.fromiter(i_positions, dtype=np.intp, count=len(i_positions))
        scale = lookup["scale"]  # seeded defect
        out[rows, cols] = scale * o_view.column("data")[rows]

    report = lint_lower(spec_with(kernel))
    assert report.lower is LowerVerdict.NOT_LOWERABLE
    assert "TW201" in report.codes()


def test_non_affine_index_flips_both_verdicts():
    certify_baseline()
    out = np.zeros((256, 16))

    def kernel(o_view, i_view, o_positions, i_positions):
        rows = np.fromiter(o_positions, dtype=np.intp, count=len(o_positions))
        cols = np.fromiter(i_positions, dtype=np.intp, count=len(i_positions))
        out[rows * rows, cols] = i_view.column("data")[cols]  # seeded defect

    report = lint_lower(spec_with(kernel))
    assert report.lower is LowerVerdict.NEEDS_RUNTIME_CHECK
    assert "TW204" in report.codes()
    assert report.independence is IndependenceVerdict.NEEDS_RUNTIME_CHECK
    assert "TW211" in report.codes()


def test_swapped_non_commutative_reduction_flips_both_verdicts():
    certify_baseline()

    class Acc:
        total = 0.0

    acc = Acc()

    def kernel(o_view, i_view, o_positions, i_positions):
        rows = np.fromiter(o_positions, dtype=np.intp, count=len(o_positions))
        # seeded defect: order-sensitive update, not a += reduction
        acc.total = float(o_view.column("data")[rows].sum()) - acc.total

    report = lint_lower(spec_with(kernel))
    assert report.lower is LowerVerdict.NEEDS_RUNTIME_CHECK
    assert "TW205" in report.codes()
    assert report.independence is IndependenceVerdict.DEPENDENT
    assert "TW210" in report.codes()


def test_cross_task_write_overlap_flips_independence():
    certify_baseline()
    out = np.zeros(16)

    def kernel(o_view, i_view, o_positions, i_positions):
        cols = np.fromiter(i_positions, dtype=np.intp, count=len(i_positions))
        # seeded defect: keyed only by the *inner* index — every outer
        # task writes the same slots
        out[cols] = i_view.column("data")[cols]

    report = lint_lower(spec_with(kernel))
    assert report.independence is IndependenceVerdict.DEPENDENT
    assert "TW210" in report.codes()
    # The typed subset is untouched: the kernel still lowers.
    assert report.lower is LowerVerdict.LOWERABLE

"""Purity checks for guards, child expressions, and size state.

The generated schedules re-evaluate the truncation guards and child
expressions in different orders and different *numbers of times* than
the original recursion (the swapped outer recursion evaluates
``truncateInner1?`` once per inner node, Figure 6b re-tests
``truncateInner2?`` under the flag protocol, the twist decision reads
``size`` at every recursive call).  Schedule equivalence therefore
requires these expressions to be pure functions of the iteration point:

* a *side-effecting* guard or child expression (TW020/TW022) breaks
  equivalence outright — the KDE approximate-Score case, where a
  twisting decision that mutated the score silently changed results,
  is the cautionary tale;
* a guard that *reads state the work writes* (TW023) is pure but
  **adaptive**: its value depends on how much work has already
  executed, so different schedules truncate different subtrees.  That
  is exactly the NN/KNN/VP pruning pattern — not wrong, but not
  statically provable, hence *needs-dynamic-check*.
"""

from __future__ import annotations

from typing import Iterable

from repro.transform.analysis import guard_aliases
from repro.transform.lint.diagnostics import DiagnosticSink
from repro.transform.lint.footprints import (
    WorkFootprint,
    analyze_expression,
)
from repro.transform.recognizer import RecursionTemplate


def check_guard_purity(
    template: RecursionTemplate,
    sink: DiagnosticSink,
    assume_pure: Iterable[str] = (),
) -> WorkFootprint:
    """Check both truncation guards; return the *inner* guard's reads.

    Emits TW020 for writes/impure calls inside a guard and TW021 for
    calls whose purity is unknown.  Walrus aliases of the index
    parameters are legal in guards (the analyzer resolves them); a
    walrus that *rebinds* an index parameter is flagged as TW020 by the
    footprint machinery.
    """
    # Resolving guard aliases up front keeps the reads attributable to
    # the right index parameter (shared vocabulary with analyze_truncation).
    guard_aliases(template.inner_guard, (template.o_param, template.i_param))
    outer_reads = analyze_expression(
        template, template.outer_guard, sink, assume_pure, context="guard"
    )
    inner_reads = analyze_expression(
        template, template.inner_guard, sink, assume_pure, context="guard"
    )
    merged = WorkFootprint(
        writes=outer_reads.writes + inner_reads.writes,
        reads=outer_reads.reads + inner_reads.reads,
    )
    return merged


def check_child_purity(
    template: RecursionTemplate,
    sink: DiagnosticSink,
    assume_pure: Iterable[str] = (),
) -> None:
    """Check every child expression of both recursions (TW022/TW021).

    Child expressions are the template's "increment operations"; the
    twisted code evaluates them in a different interleaving than the
    original, so a child expression that pops, caches, or logs changes
    the traversal itself.
    """
    for child in template.outer_child_exprs + template.inner_child_exprs:
        analyze_expression(template, child, sink, assume_pure, context="child")


def check_adaptive_truncation(
    template: RecursionTemplate,
    guard_reads: WorkFootprint,
    work: WorkFootprint,
    sink: DiagnosticSink,
) -> bool:
    """Flag guards that read locations the work writes (TW023).

    Returns True when an adaptive dependence was found.  The check
    intersects the guard's read paths with the work's write paths
    using the conservative may-alias test of
    :meth:`~repro.transform.lint.footprints.AccessPath.overlaps`.
    """
    adaptive = False
    for read in guard_reads.reads:
        for write in work.writes:
            if read.path.overlaps(write.path):
                adaptive = True
                sink.emit(
                    "TW023",
                    f"truncation guard reads {read.path.display!r}, "
                    f"which the work writes ({write.path.display!r} at "
                    f"line {write.line}): pruning adapts to execution "
                    f"order, so schedule equivalence depends on the "
                    f"input and must be checked dynamically "
                    f"(repro.core.soundness.check_transformation)",
                    _span(read),
                )
                break
    return adaptive


def _span(access) -> object:
    """Adapt an Access back into a node-like span for diagnostics."""

    class _Span:
        """Minimal lineno/col_offset carrier."""

        lineno = access.line
        col_offset = access.col

    return _Span()

"""Multi-level cache hierarchies: the simulated evaluation machine.

The paper's evaluation platform is a Xeon with 32 KB L1 / 256 KB L2 /
20 MB shared L3 (Section 6.1).  This module composes
:class:`~repro.memory.cache.SetAssociativeCache` levels into a
hierarchy: an access probes L1; on miss it proceeds to L2, then L3,
then memory.  Each level keeps its own local hit/miss statistics, which
is exactly what the paper's performance-counter figures report.

Because recursion twisting is *parameterless* — it tiles for every
cache level at once (Section 3.2) — reproducing its signature requires
a hierarchy, not a single cache: the claim "miss rates are improved
dramatically in *both* levels of cache" (Figure 8b) is only observable
with at least L2 and L3 modeled.

:func:`scaled_hierarchy` is the default machine, the paper's Xeon with
every level shrunk by the same factor as our scaled-down workloads (see
DESIGN.md Section 2 for the substitution argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import MemorySimError
from repro.memory.cache import Address, CacheStats, SetAssociativeCache


@dataclass
class LevelSpec:
    """Configuration of one cache level."""

    name: str
    capacity_lines: int
    ways: int = 8

    def build(self) -> SetAssociativeCache:
        """Instantiate the cache for this level."""
        if self.capacity_lines % self.ways != 0:
            raise MemorySimError(
                f"{self.name}: capacity_lines ({self.capacity_lines}) must "
                f"be a multiple of ways ({self.ways})"
            )
        return SetAssociativeCache(
            num_sets=self.capacity_lines // self.ways,
            ways=self.ways,
            name=self.name,
        )


class CacheHierarchy:
    """An ordered sequence of caches backed by memory.

    :meth:`access` returns the index of the level that hit (0 for the
    first level) or ``len(levels)`` when the access went all the way to
    memory.  Misses allocate the line into every level probed on the
    way down (a simple inclusive fill policy).
    """

    def __init__(self, levels: Sequence[SetAssociativeCache]) -> None:
        if not levels:
            raise MemorySimError("a hierarchy needs at least one cache level")
        self.levels = list(levels)
        #: number of accesses that reached memory (missed everywhere)
        self.memory_accesses = 0

    @property
    def memory_level(self) -> int:
        """The level index returned for accesses that reach memory."""
        return len(self.levels)

    def access(self, line: Address) -> int:
        """Access one line; return the hit level index (see class doc)."""
        for index, level in enumerate(self.levels):
            if level.access(line):
                return index
        self.memory_accesses += 1
        return self.memory_level

    def access_all(self, lines: Iterable[Address]) -> None:
        """Access a batch of lines, discarding the per-line results."""
        for line in lines:
            self.access(line)

    def stats(self) -> list[CacheStats]:
        """Per-level statistics, L1 first."""
        return [level.stats for level in self.levels]

    def stats_by_name(self) -> dict[str, CacheStats]:
        """Per-level statistics keyed by level name (``"L1"``...)."""
        return {level.name: level.stats for level in self.levels}

    def flush(self) -> None:
        """Empty every level (keeps statistics)."""
        for level in self.levels:
            level.flush()

    def reset_stats(self) -> None:
        """Zero every level's statistics and the memory counter."""
        for level in self.levels:
            level.reset_stats()
        self.memory_accesses = 0


def xeon_like_hierarchy(line_bytes: int = 64) -> CacheHierarchy:
    """The paper's evaluation machine at full size.

    32 KB L1 (8-way), 256 KB L2 (8-way), 20 MB L3 (20-way), 64-byte
    lines — i.e. 512 / 4096 / 327680 lines.  Usable, but the scaled
    machine below is what the benchmarks run on (Python traces at
    full-Xeon working-set sizes would take days; see DESIGN.md).
    """
    return CacheHierarchy(
        [
            LevelSpec("L1", 32 * 1024 // line_bytes, ways=8).build(),
            LevelSpec("L2", 256 * 1024 // line_bytes, ways=8).build(),
            LevelSpec("L3", 20 * 1024 * 1024 // line_bytes, ways=20).build(),
        ]
    )


def scaled_hierarchy() -> CacheHierarchy:
    """The default simulated machine for all experiments.

    The Xeon's L1 : L2 : L3 line-capacity ratio is 1 : 8 : 640; we keep
    the same ordering of scales at benchmark-friendly sizes:
    L1 = 32 lines, L2 = 256 lines, L3 = 4096 lines, all 8-way.  With
    one ~64-byte tree node per line, an 8K-node tree exceeds the
    simulated L3 the way the paper's 800K-node trees exceed 20 MB.
    """
    return CacheHierarchy(
        [
            LevelSpec("L1", 32, ways=8).build(),
            LevelSpec("L2", 256, ways=8).build(),
            LevelSpec("L3", 4096, ways=8).build(),
        ]
    )


def tiny_hierarchy() -> CacheHierarchy:
    """A miniature machine (L1=4, L2=16, L3=64 lines) for unit tests."""
    return CacheHierarchy(
        [
            LevelSpec("L1", 4, ways=2).build(),
            LevelSpec("L2", 16, ways=4).build(),
            LevelSpec("L3", 64, ways=8).build(),
        ]
    )

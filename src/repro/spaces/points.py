"""Synthetic point-set generators for the dual-tree benchmarks.

The paper evaluates the dual-tree benchmarks (PC, NN, KNN, VP) on
point datasets of 400K-1M points.  The datasets themselves are not
published, so we generate synthetic point clouds with the properties
that matter for the algorithms' behaviour:

* *clustered* distributions, which give dual-tree pruning something to
  prune (uniform data at the right density works too, but clusters make
  the irregular truncation genuinely irregular);
* *uniform* distributions, the usual worst-ish case for pruning;
* deterministic seeding, so every experiment is reproducible.

Points are ``numpy`` arrays of shape ``(n, d)``; all dual-tree code
consumes that representation.
"""

from __future__ import annotations

import numpy as np


def uniform_points(n: int, dim: int = 2, seed: int = 0, scale: float = 1.0) -> np.ndarray:
    """``n`` points uniform in the ``[0, scale)^dim`` box."""
    if n < 1:
        raise ValueError("uniform_points requires n >= 1")
    rng = np.random.default_rng(seed)
    return rng.random((n, dim)) * scale


def clustered_points(
    n: int,
    dim: int = 2,
    clusters: int = 16,
    spread: float = 0.02,
    seed: int = 0,
) -> np.ndarray:
    """``n`` points drawn from Gaussian blobs around random centers.

    Cluster centers are uniform in the unit box; each point is a center
    plus isotropic Gaussian noise with standard deviation ``spread``.
    This is the default workload for the dual-tree experiments: it has
    high local density (lots of base-case work) and large empty regions
    (lots of pruning), the regime where dual-tree algorithms shine.
    """
    if n < 1:
        raise ValueError("clustered_points requires n >= 1")
    if clusters < 1:
        raise ValueError("clustered_points requires clusters >= 1")
    rng = np.random.default_rng(seed)
    centers = rng.random((clusters, dim))
    assignment = rng.integers(0, clusters, size=n)
    noise = rng.normal(0.0, spread, size=(n, dim))
    return centers[assignment] + noise


def grid_points(side: int, dim: int = 2, jitter: float = 0.0, seed: int = 0) -> np.ndarray:
    """A regular ``side^dim`` grid in the unit box, optionally jittered.

    Grids make distance computations and k-NN answers easy to reason
    about in tests (every interior point has axis neighbours at exactly
    the grid pitch).
    """
    if side < 1:
        raise ValueError("grid_points requires side >= 1")
    axes = [np.linspace(0.0, 1.0, side, endpoint=False) for _ in range(dim)]
    mesh = np.meshgrid(*axes, indexing="ij")
    pts = np.stack([m.ravel() for m in mesh], axis=1)
    if jitter > 0.0:
        rng = np.random.default_rng(seed)
        pts = pts + rng.normal(0.0, jitter, size=pts.shape)
    return pts


def annulus_points(n: int, inner: float = 0.3, outer: float = 0.5, seed: int = 0) -> np.ndarray:
    """``n`` 2-D points uniform on an annulus centred in the unit box.

    An adversarial shape for kd-trees (no axis-aligned structure) used
    by robustness tests; point-correlation counts on an annulus have a
    sharp density transition at radius ``inner``.
    """
    if n < 1:
        raise ValueError("annulus_points requires n >= 1")
    rng = np.random.default_rng(seed)
    theta = rng.random(n) * 2.0 * np.pi
    # Area-uniform radius in [inner, outer].
    r = np.sqrt(rng.random(n) * (outer**2 - inner**2) + inner**2)
    return np.stack([0.5 + r * np.cos(theta), 0.5 + r * np.sin(theta)], axis=1)

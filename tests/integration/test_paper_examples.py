"""Integration tests: every concrete number the paper prints.

These are the reproduction's regression anchors — the paper's worked
examples have exact expected values, and the library must hit them all.
"""

import pytest

from repro.bench.experiments import run_fig1_fig4
from repro.bench.experiments.fig1_fig4 import (
    PAPER_ORIGINAL_NODE5,
    PAPER_TWISTED_NODE5,
)
from repro.core import (
    AccessTraceRecorder,
    NestedRecursionSpec,
    WorkRecorder,
    combine,
    run_original,
    run_twisted,
)
from repro.memory import distances_of_key
from repro.spaces import IterationSpace, paper_inner_tree, paper_outer_tree


class TestSection11:
    def test_join_called_49_times(self):
        # "If this code is called on the two trees in Figure 1(b), the
        # result is that join will be called 49 times."
        spec = NestedRecursionSpec(paper_outer_tree(), paper_inner_tree())
        recorder = WorkRecorder()
        run_original(spec, instrument=recorder)
        assert len(recorder.points) == 49


class TestSection32WorkedExample:
    @pytest.fixture
    def traces(self):
        outer, inner = paper_outer_tree(), paper_inner_tree()
        spec = NestedRecursionSpec(outer, inner)
        node5 = next(n for n in inner.iter_preorder() if n.label == 5)
        original = AccessTraceRecorder()
        run_original(spec, instrument=original)
        twisted = AccessTraceRecorder()
        run_twisted(spec, instrument=twisted)
        return original.trace, twisted.trace, node5

    def test_original_reuse_distances_of_node5(self, traces):
        # "the reuse distances for node 5 ... are, in order of
        # execution, [inf, 8, 8, 8, 8, 8, 8]"
        original, _twisted, node5 = traces
        assert distances_of_key(original, ("inner", node5.number)) == [
            None, 8, 8, 8, 8, 8, 8,
        ]

    def test_twisted_reuse_distances_of_node5(self, traces):
        # "In the twisted schedule, the reuse distances are
        # [inf, 10, 3, 3, 10, 3, 3]"
        _original, twisted, node5 = traces
        assert distances_of_key(twisted, ("inner", node5.number)) == [
            None, 10, 3, 3, 10, 3, 3,
        ]

    def test_experiment_driver_agrees(self):
        report, data = run_fig1_fig4()
        assert data["original_node5"] == PAPER_ORIGINAL_NODE5
        assert data["twisted_node5"] == PAPER_TWISTED_NODE5
        assert "Figure" in report.render()


class TestSection4Example:
    def figure6_truncation(self, o, i):
        # "if (i == null || (o.label == B && i.label == 2)) return;"
        return o.label == "B" and i.label == 2

    def test_exactly_three_iterations_skipped(self):
        spec = NestedRecursionSpec(
            paper_outer_tree(),
            paper_inner_tree(),
            truncate_inner2=self.figure6_truncation,
        )
        recorder = WorkRecorder()
        run_original(spec, instrument=recorder)
        space = IterationSpace.from_trees(
            spec.outer_root, spec.inner_root, executed=recorder.points
        )
        assert space.skipped() == {("B", 2), ("B", 3), ("B", 4)}

    def test_irregular_pattern_is_outer_dependent(self):
        # "this pattern of skipped iterations is not the same for every
        # outer-recursion index; the iterations are only skipped for
        # index B."
        spec = NestedRecursionSpec(
            paper_outer_tree(),
            paper_inner_tree(),
            truncate_inner2=self.figure6_truncation,
        )
        recorder = WorkRecorder()
        run_original(spec, instrument=recorder)
        executed = set(recorder.points)
        for outer_label in "ACDEFG":
            for inner_label in range(1, 8):
                assert (outer_label, inner_label) in executed


class TestFigure4bTiles:
    def test_3x3_tiles_visible(self):
        # "indeed, 3x3 tiles are visible in the schedule of Fig. 4(b)"
        spec = NestedRecursionSpec(paper_outer_tree(), paper_inner_tree())
        recorder = WorkRecorder()
        run_twisted(spec, instrument=recorder)
        tiles = [
            {(o, i) for o in "BCD" for i in (2, 3, 4)},
            {(o, i) for o in "BCD" for i in (5, 6, 7)},
            {(o, i) for o in "EFG" for i in (2, 3, 4)},
            {(o, i) for o in "EFG" for i in (5, 6, 7)},
        ]
        for tile in tiles:
            positions = [k for k, p in enumerate(recorder.points) if p in tile]
            assert max(positions) - min(positions) == 8  # contiguous 9 points

"""Structured diagnostics for the schedule-safety analyzer.

Every finding the linter can produce is registered here under a stable
``TW0xx`` code (catalogued for humans in ``docs/DIAGNOSTICS.md``), with
a severity and an indication of which verdict dimension it affects:

``schedule``
    the sequential §3.3 schedule-equivalence argument (interchange /
    twisting soundness);
``parallel``
    only the §7.3 task-parallel execution (a finding here does not
    demote the sequential verdict);
``input``
    the input could not be brought to the Figure 2 template at all;
``backend``
    the ``TW1xx`` family: backend *conformance* of a spec's vectorized
    kernels (``work_batch`` / ``work_batch_soa`` /
    ``truncate_inner2_batch``) with their scalar counterparts.  These
    findings never touch the §3.3 schedule verdict — they decide
    whether the batched/SoA executors may stand in for the recursive
    one (see :mod:`repro.transform.lint.backend`);
``lower``
    the ``TW20x`` family: *lowerability* of a spec's kernels to the
    typed kernel IR (:mod:`repro.transform.lint.kernel_ir`) — the
    eligibility gate for the fused/compiled backend (see
    :mod:`repro.transform.lint.lower`);
``independence``
    the ``TW21x`` family: *static outer-task independence* proven from
    the IR's affine footprints — the static counterpart of the dynamic
    TW030 witness probe, consumed by
    :func:`repro.core.parallel_exec.check_outer_independence`;
``locality``
    the ``TW30x`` family: static *profitability* of the locality
    transformations — footprint/reuse inference against a
    :class:`~repro.memory.cachemodel.CacheModel`, predicting whether
    interchange / twisting / layout changes pay off (see
    :mod:`repro.transform.lint.locality`).  Unlike every other family,
    these codes never gate legality: they are a cost prior cited by
    :func:`repro.core.backend_select.choose_backend` as evidence.

Severities follow the usual compiler convention: ``error`` findings
refute the safety proof (verdict *unsafe*), ``warning`` findings leave
a hole in it (verdict *needs-dynamic-check*), ``info`` findings record
assumptions the proof leans on without weakening it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Severity(enum.Enum):
    """How strongly a finding bears on the safety verdict."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class CodeInfo:
    """Catalog entry for one stable diagnostic code."""

    #: the stable code, e.g. ``"TW010"``
    code: str
    #: one-line human title (also the docs heading)
    title: str
    #: default severity of findings with this code
    severity: Severity
    #: which verdict dimension the code affects (see module docstring)
    affects: str


#: Raw registration order, duplicates and all.  ``CATALOG`` is derived
#: from this; keeping the list visible lets the registry test assert
#: that no code was silently re-registered (a dict comprehension alone
#: would dedupe the collision away).
_REGISTRY: list[CodeInfo] = [
    # --- input / template (TW00x) --------------------------------
        CodeInfo(
            "TW001",
            "input source does not parse",
            Severity.ERROR,
            "input",
        ),
        CodeInfo(
            "TW002",
            "annotated pair violates the Figure 2 template",
            Severity.ERROR,
            "input",
        ),
        CodeInfo(
            "TW003",
            "truncation disjunct depends only on the outer index",
            Severity.ERROR,
            "input",
        ),
        # --- work footprint (TW01x) ----------------------------------
        CodeInfo(
            "TW010",
            "write keyed by the inner index (outer recursion not parallel)",
            Severity.ERROR,
            "schedule",
        ),
        CodeInfo(
            "TW011",
            "write to shared state keyed by neither index",
            Severity.ERROR,
            "schedule",
        ),
        CodeInfo(
            "TW012",
            "write through an unresolvable target (footprint incomplete)",
            Severity.WARNING,
            "schedule",
        ),
        CodeInfo(
            "TW013",
            "call to unknown helper (footprint incomplete)",
            Severity.WARNING,
            "schedule",
        ),
        CodeInfo(
            "TW015",
            "multi-hop write assumes per-node ownership of the path",
            Severity.INFO,
            "schedule",
        ),
        # --- purity (TW02x) ------------------------------------------
        CodeInfo(
            "TW020",
            "side-effecting truncation guard",
            Severity.ERROR,
            "schedule",
        ),
        CodeInfo(
            "TW021",
            "call to unknown helper in guard or child expression "
            "(purity unknown)",
            Severity.WARNING,
            "schedule",
        ),
        CodeInfo(
            "TW022",
            "side-effecting child expression",
            Severity.ERROR,
            "schedule",
        ),
        CodeInfo(
            "TW023",
            "adaptive truncation: guard reads state the work writes",
            Severity.WARNING,
            "schedule",
        ),
        CodeInfo(
            "TW024",
            "work mutates traversal structure (size/children/index "
            "binding)",
            Severity.ERROR,
            "schedule",
        ),
        # --- task parallelism (TW03x) --------------------------------
        CodeInfo(
            "TW030",
            "cross-task shared-state race under the task-parallel "
            "executor",
            Severity.WARNING,
            "parallel",
        ),
        # --- backend conformance (TW10x) -----------------------------
        CodeInfo(
            "TW100",
            "kernel source unavailable (conformance not analyzable)",
            Severity.WARNING,
            "backend",
        ),
        CodeInfo(
            "TW101",
            "batch kernel write set differs from the scalar kernel",
            Severity.ERROR,
            "backend",
        ),
        CodeInfo(
            "TW102",
            "batch kernel reads node fields the scalar kernel never "
            "touches",
            Severity.WARNING,
            "backend",
        ),
        CodeInfo(
            "TW103",
            "batch kernel captures mutable state across dispatches",
            Severity.ERROR,
            "backend",
        ),
        CodeInfo(
            "TW104",
            "batch kernel mutates or retains its input block "
            "(aliasing hazard)",
            Severity.ERROR,
            "backend",
        ),
        CodeInfo(
            "TW105",
            "block truncation guard reads state its scalar "
            "counterpart ignores",
            Severity.WARNING,
            "backend",
        ),
        CodeInfo(
            "TW106",
            "block truncation guard on a spec whose truncation "
            "observes work",
            Severity.ERROR,
            "backend",
        ),
        CodeInfo(
            "TW107",
            "kernel relies on per-outer barrier flushes for "
            "correctness",
            Severity.INFO,
            "backend",
        ),
        CodeInfo(
            "TW108",
            "order-sensitive state update vectorized without in-order "
            "replay",
            Severity.WARNING,
            "backend",
        ),
        CodeInfo(
            "TW109",
            "batch kernel reads staged auxiliary data the scalar "
            "kernel derives per node",
            Severity.INFO,
            "backend",
        ),
        CodeInfo(
            "TW110",
            "call to unknown helper inside a batch kernel "
            "(conformance incomplete)",
            Severity.WARNING,
            "backend",
        ),
        # --- lowerability (TW20x) ------------------------------------
        CodeInfo(
            "TW200",
            "kernel source unavailable (lowerability not analyzable)",
            Severity.WARNING,
            "lower",
        ),
        CodeInfo(
            "TW201",
            "Python-object use in the lowered hot loop",
            Severity.ERROR,
            "lower",
        ),
        CodeInfo(
            "TW202",
            "untyped access (value does not resolve to a typed column, "
            "array, or scalar)",
            Severity.WARNING,
            "lower",
        ),
        CodeInfo(
            "TW203",
            "allocation inside the kernel hot loop",
            Severity.WARNING,
            "lower",
        ),
        CodeInfo(
            "TW204",
            "non-affine index expression in rank space",
            Severity.WARNING,
            "lower",
        ),
        CodeInfo(
            "TW205",
            "unrecognized (non-commutative) reduction pattern",
            Severity.WARNING,
            "lower",
        ),
        CodeInfo(
            "TW206",
            "dynamic shape: extent depends on runtime data values",
            Severity.WARNING,
            "lower",
        ),
        CodeInfo(
            "TW207",
            "call to a helper with no lowerable summary",
            Severity.WARNING,
            "lower",
        ),
        CodeInfo(
            "TW208",
            "spec provides no SoA-native kernel to lower",
            Severity.WARNING,
            "lower",
        ),
        CodeInfo(
            "TW209",
            "kernel lowers to typed column gathers under recorded "
            "assumptions",
            Severity.INFO,
            "lower",
        ),
        # --- static independence (TW21x) -----------------------------
        CodeInfo(
            "TW210",
            "cross-task write overlap: write not keyed by the outer "
            "index",
            Severity.ERROR,
            "independence",
        ),
        CodeInfo(
            "TW211",
            "write target or index unresolved (independence "
            "unprovable statically)",
            Severity.WARNING,
            "independence",
        ),
        CodeInfo(
            "TW212",
            "disjointness relies on a verified injective index column",
            Severity.INFO,
            "independence",
        ),
        CodeInfo(
            "TW213",
            "commutative reduction assumed privatized per task",
            Severity.INFO,
            "independence",
        ),
        CodeInfo(
            "TW214",
            "kernel effects incomplete (unknown helper): write set "
            "unproven",
            Severity.WARNING,
            "independence",
        ),
        # --- locality profitability (TW30x) --------------------------
        CodeInfo(
            "TW300",
            "inner footprint not derivable from the kernel IR",
            Severity.WARNING,
            "locality",
        ),
        CodeInfo(
            "TW301",
            "inner footprint fits L1: blocking transformations are "
            "neutral",
            Severity.INFO,
            "locality",
        ),
        CodeInfo(
            "TW302",
            "inner footprint exceeds L1 but fits a deeper cache level",
            Severity.INFO,
            "locality",
        ),
        CodeInfo(
            "TW303",
            "outer-point reuse not statically derivable from the "
            "truncation",
            Severity.WARNING,
            "locality",
        ),
        CodeInfo(
            "TW304",
            "truncation-limited reuse: sampled density discounts the "
            "effective footprint",
            Severity.INFO,
            "locality",
        ),
        CodeInfo(
            "TW305",
            "profitability judged against an assumed cache model",
            Severity.INFO,
            "locality",
        ),
        CodeInfo(
            "TW306",
            "effective footprint exceeds the last-level cache: "
            "point blocking predicted regressive",
            Severity.WARNING,
            "locality",
        ),
]

#: The full catalog of stable diagnostic codes.
CATALOG: dict[str, CodeInfo] = {info.code: info for info in _REGISTRY}

#: Every registered code, in registration order — including any
#: accidental duplicate, so ``len(ALL_CODES) == len(set(ALL_CODES))``
#: is a meaningful uniqueness check.
ALL_CODES: tuple[str, ...] = tuple(info.code for info in _REGISTRY)

#: The closed set of verdict dimensions a code may affect.
AFFECTS_DOMAINS: tuple[str, ...] = (
    "input",
    "schedule",
    "parallel",
    "backend",
    "lower",
    "independence",
    "locality",
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding, pinned to a source span.

    ``line``/``col`` are 1-based line and 0-based column of the AST
    node that triggered the finding (0/0 when no span applies, e.g. a
    parse failure without location).
    """

    code: str
    severity: Severity
    message: str
    line: int = 0
    col: int = 0
    #: optional remediation hint rendered below the message
    hint: Optional[str] = None

    def format(self, filename: str = "<source>") -> str:
        """Render the classic ``file:line:col: severity[code]`` line."""
        text = (
            f"{filename}:{self.line}:{self.col}: "
            f"{self.severity}[{self.code}]: {self.message}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        """JSON-ready dict (stable keys; used by ``--json``)."""
        payload = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "line": self.line,
            "col": self.col,
        }
        if self.hint:
            payload["hint"] = self.hint
        return payload


def make_diagnostic(
    code: str,
    message: str,
    node: object = None,
    hint: Optional[str] = None,
) -> Diagnostic:
    """Build a diagnostic, pulling severity from the catalog.

    ``node`` may be any object with ``lineno``/``col_offset`` (an AST
    node) or ``None`` for findings without a source span.  Unknown
    codes are a programming error, not an input error.
    """
    if code not in CATALOG:
        raise KeyError(f"diagnostic code {code!r} is not in the catalog")
    return Diagnostic(
        code=code,
        severity=CATALOG[code].severity,
        message=message,
        line=getattr(node, "lineno", 0) or 0,
        col=getattr(node, "col_offset", 0) or 0,
        hint=hint,
    )


@dataclass
class DiagnosticSink:
    """Collector the analysis passes emit into.

    Deduplicates exact repeats (same code, span, and message) so one
    unknown helper called in a loop does not flood the report, and
    honours per-line ``# lint: ignore[TW0xx]`` suppressions.
    """

    #: line -> set of codes suppressed on that line
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: findings dropped by a suppression pragma (kept for reporting)
    suppressed: list[Diagnostic] = field(default_factory=list)

    def emit(
        self,
        code: str,
        message: str,
        node: object = None,
        hint: Optional[str] = None,
    ) -> None:
        """Record one finding (deduplicated, suppression-aware)."""
        diagnostic = make_diagnostic(code, message, node, hint)
        if diagnostic.code in self.suppressions.get(diagnostic.line, set()):
            self.suppressed.append(diagnostic)
            return
        if diagnostic not in self.diagnostics:
            self.diagnostics.append(diagnostic)

    def extend(self, other: "DiagnosticSink") -> None:
        """Fold another sink's findings into this one."""
        for diagnostic in other.diagnostics:
            if diagnostic not in self.diagnostics:
                self.diagnostics.append(diagnostic)
        self.suppressed.extend(other.suppressed)

    @property
    def errors(self) -> list[Diagnostic]:
        """Findings that refute the safety proof."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Findings that leave a hole in the safety proof."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

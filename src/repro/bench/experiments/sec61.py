"""Section 6.1 benchmark inventory: the methodology table.

The paper's Section 6.1 lists, per benchmark: the input size, the
baseline running time, and the dependence/truncation classification
("TJ and MM have no dependences between iterations, and do not have
irregular truncation.  PC, NN, KNN and VP ... all have dependences
carried over the inner recursion (though the outer recursion is still
'parallel' ...), and feature irregular truncation.").

We reproduce the table with scaled inputs and modeled baseline cycles,
and *derive* the classification programmatically: irregularity from
the spec (``truncate_inner2`` present) and outer-parallelism from a
dynamic dependence recording on a reduced-size instance.
"""

from __future__ import annotations

from repro.bench.machine import bench_hierarchy
from repro.bench.reporting import ExperimentReport
from repro.bench.runner import run_case
from repro.bench.workloads import (
    BenchmarkCase,
    make_knn,
    make_mm,
    make_nn,
    make_pc,
    make_tj,
    make_vp,
)
from repro.core.executors import run_original
from repro.core.schedules import ORIGINAL
from repro.core.soundness import FootprintRecorder, is_outer_parallel
from repro.dualtree.traverser import dual_tree_footprint
from repro.kernels.matmul import matmul_footprint
from repro.kernels.treejoin import tree_join_footprint

#: paper-reported baseline times (seconds) for reference columns
PAPER_BASELINES = {
    "TJ": ("800K nodes", 20_189),
    "MM": ("40000x40000", 98_232),
    "PC": ("600K points", 25_026),
    "NN": ("1M points", 44_868),
    "KNN": ("600K points, k=5", 29_758),
    "VP": ("400K points, k=10", 122_900),
}


def _small_cases() -> list[tuple[BenchmarkCase, object]]:
    """Reduced instances with footprint functions for the parallel check."""
    tj = make_tj(127)
    mm = make_mm(32)
    pc = make_pc(256)
    nn = make_nn(256)
    knn = make_knn(256)
    vp = make_vp(256)
    return [
        (tj, tree_join_footprint),
        (mm, matmul_footprint),
        (pc, None),
        (nn, None),
        (knn, None),
        (vp, None),
    ]


def run_sec61(scale: float = 1.0) -> tuple[ExperimentReport, dict]:
    """Build the inventory table (classification + scaled baselines)."""
    from repro.bench.workloads import all_cases

    report = ExperimentReport(
        title="Section 6.1: benchmark inventory (scaled)",
        columns=[
            "benchmark",
            "paper input (baseline s)",
            "scaled input",
            "baseline cycles",
            "irregular trunc",
            "outer parallel",
        ],
    )
    data: dict[str, dict] = {}

    # Classification on reduced instances (cheap, exact).
    classification: dict[str, tuple[bool, bool]] = {}
    for case, footprint in _small_cases():
        spec = case.make_spec()
        irregular = spec.is_irregular
        if footprint is None:
            # dual-tree: footprint needs the live rules object
            from repro.core.spec import NestedRecursionSpec

            rules_footprint = _dualtree_footprint_for(case)
            recorder = FootprintRecorder(rules_footprint)
        else:
            recorder = FootprintRecorder(footprint)
        run_original(spec, instrument=recorder)
        classification[case.name] = (irregular, is_outer_parallel(recorder))

    for case in all_cases(scale):
        baseline = run_case(case, ORIGINAL, bench_hierarchy)
        irregular, parallel = classification[case.name]
        paper_input, paper_seconds = PAPER_BASELINES[case.name]
        report.add_row(
            case.name,
            f"{paper_input} ({paper_seconds:,d}s)",
            case.description,
            baseline.cycles,
            "yes" if irregular else "no",
            "yes" if parallel else "no",
        )
        data[case.name] = {
            "baseline": baseline,
            "irregular": irregular,
            "outer_parallel": parallel,
        }
    report.add_note(
        "paper classification: TJ/MM regular + dependence-free; "
        "PC/NN/KNN/VP irregular with inner-carried dependences and "
        "parallel outer recursions"
    )
    return report, data


def _dualtree_footprint_for(case: BenchmarkCase):
    """A footprint closure reading the case's live rules object.

    Dual-tree footprints depend on leaf point ownership only, which is
    static, so :func:`repro.dualtree.traverser.dual_tree_footprint`
    works for any of the four algorithms.
    """

    def footprint(o, i):
        return dual_tree_footprint(None)(o, i)

    return footprint

"""Tests for the TW2xx lowerability and independence passes."""

import json

import numpy as np
import pytest

from repro.bench.workloads import wallclock_cases
from repro.core.spec import NestedRecursionSpec
from repro.dualtree import algorithms, kde
from repro.kernels import matmul, treejoin
from repro.spaces.trees import balanced_tree
from repro.transform.lint import lower
from repro.transform.lint.lower import (
    IndependenceVerdict,
    LowerVerdict,
    lint_lower,
    static_independence,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    lower.clear_cache()
    yield
    lower.clear_cache()


#: benchmark name -> the verdict fixture checked into its module
EXPECTED = {
    "TJ": treejoin.LOWER_VERDICT,
    "MM": matmul.LOWER_VERDICT,
    "PC": algorithms.LOWER_VERDICTS["PC"],
    "NN": algorithms.LOWER_VERDICTS["NN"],
    "KNN": algorithms.LOWER_VERDICTS["KNN"],
    "VP": algorithms.LOWER_VERDICTS["VP"],
    "KDE": kde.LOWER_VERDICT,
}


def small_cases():
    return wallclock_cases(scale=0.05)


class TestBenchmarkVerdictFixtures:
    def test_every_benchmark_matches_its_checked_in_fixture(self):
        cases = small_cases()
        assert {case.name for case in cases} == set(EXPECTED)
        for case in cases:
            report = lint_lower(case.make_spec())
            assert str(report.lower) == EXPECTED[case.name]["lower"], (
                case.name,
                report.lower_reason,
            )
            assert (
                str(report.independence) == EXPECTED[case.name]["independence"]
            ), (case.name, report.independence_reason)

    def test_tj_is_fully_certified(self):
        case = next(c for c in small_cases() if c.name == "TJ")
        report = lint_lower(case.make_spec())
        assert report.lower is LowerVerdict.LOWERABLE
        assert report.independence is IndependenceVerdict.INDEPENDENT
        assert "TW209" in report.codes()
        assert "TW213" in report.codes()  # privatized reduction
        assert not report.errors and not report.warnings

    def test_mm_proof_rests_on_an_injective_column(self):
        case = next(c for c in small_cases() if c.name == "MM")
        report = lint_lower(case.make_spec())
        assert report.lower is LowerVerdict.LOWERABLE
        assert report.independence is IndependenceVerdict.INDEPENDENT
        assert "TW212" in report.codes()
        assert any("outer.data injective" in p for p in report.preconditions)

    def test_dualtree_benchmarks_stop_at_tw208(self):
        for case in small_cases():
            if case.name in ("TJ", "MM"):
                continue
            report = lint_lower(case.make_spec())
            assert "TW208" in report.codes(), case.name
            assert report.lower is LowerVerdict.NEEDS_RUNTIME_CHECK


class TestReportShape:
    def test_json_payload_is_schema_v2(self):
        case = next(c for c in small_cases() if c.name == "TJ")
        payload = lint_lower(case.make_spec()).to_json()
        assert payload["schema_version"] == 2
        assert payload["kind"] == "lowerability"
        assert payload["lower"] == "lowerable"
        assert payload["independence"] == "independent"
        assert payload["counts"] == {"errors": 0, "warnings": 0, "suppressed": 0}
        assert "work_batch_soa" in payload["kernels"]
        # dumps() round-trips.
        assert json.loads(lint_lower(case.make_spec()).dumps()) == payload

    def test_render_states_both_verdicts_and_preconditions(self):
        case = next(c for c in small_cases() if c.name == "MM")
        text = lint_lower(case.make_spec()).render()
        assert "lower: lowerable" in text
        assert "independence: independent" in text
        assert "precondition:" in text

    def test_static_independence_exposes_the_verdict_pair(self):
        case = next(c for c in small_cases() if c.name == "TJ")
        verdict, reason = static_independence(case.make_spec())
        assert verdict == "independent"
        assert reason


class TestCache:
    def test_same_spec_reuses_the_report(self):
        case = next(c for c in small_cases() if c.name == "TJ")
        spec = case.make_spec()
        assert lint_lower(spec) is lint_lower(spec)

    def test_clear_cache_recomputes(self):
        case = next(c for c in small_cases() if c.name == "TJ")
        spec = case.make_spec()
        first = lint_lower(spec)
        lower.clear_cache()
        second = lint_lower(spec)
        assert first is not second
        assert str(first.independence) == str(second.independence)

    def test_fresh_trees_invalidate_the_data_precondition(self):
        # Same kernel code, different live tree: the injectivity
        # precondition must be re-verified, not reused.
        mm = matmul.MatrixMultiply(n=12, m=12, p=4)
        first = lint_lower(mm.make_spec())
        other = matmul.MatrixMultiply(n=12, m=12, p=4)
        second = lint_lower(other.make_spec())
        assert first is not second

    def test_use_cache_false_bypasses(self):
        case = next(c for c in small_cases() if c.name == "TJ")
        spec = case.make_spec()
        assert lint_lower(spec, use_cache=False) is not lint_lower(
            spec, use_cache=False
        )


class TestInjectivityPrecondition:
    @staticmethod
    def _spec(outer_data, name):
        out = np.zeros(64)

        def work(o, i):
            out[o.data] = float(i.data)

        return NestedRecursionSpec(
            outer_root=balanced_tree(7, data=outer_data),
            inner_root=balanced_tree(7, data=lambda k: k),
            work=work,
            name=name,
        )

    def test_injective_column_certifies_the_write(self):
        report = lint_lower(self._spec(lambda k: k, "inj"))
        assert report.independence is IndependenceVerdict.INDEPENDENT
        assert "TW212" in report.codes()

    def test_repeating_column_refutes_independence(self):
        report = lint_lower(self._spec(lambda k: 0, "dup"))
        assert report.independence is IndependenceVerdict.DEPENDENT
        assert "TW210" in report.codes()
        assert "repeats value" in report.independence_reason or any(
            "repeats value" in d.message for d in report.diagnostics
        )


class TestQuarantinedRegressions:
    """Counterexamples found while tuning the pass, pinned forever.

    Each of these once produced a *wrong* verdict; the pass must stay
    conservative (never ``dependent`` for a spec the dynamic witness
    accepts) without these specific false alarms coming back.
    """

    def test_nn_fresh_allocation_writes_are_not_cross_task_overlaps(self):
        # NN's rules allocate scratch arrays (np.ones/np.zeros) and
        # write into them; a fresh buffer is task-local by birth and
        # once mis-fired TW210 ("dependent").
        case = next(c for c in small_cases() if c.name == "NN")
        report = lint_lower(case.make_spec())
        assert report.independence is not IndependenceVerdict.DEPENDENT

    def test_knn_scalar_indexed_state_is_unknown_not_const(self):
        # KNN/VP index per-query arrays by a scalar *variable*
        # (self.kth_dist[query]); classifying that as a constant
        # location once mis-fired TW210.  It must stay unresolved
        # (needs-runtime-check), never a false refutation.
        for name in ("KNN", "VP"):
            case = next(c for c in small_cases() if c.name == name)
            report = lint_lower(case.make_spec())
            assert (
                report.independence is IndependenceVerdict.NEEDS_RUNTIME_CHECK
            ), name

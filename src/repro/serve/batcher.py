"""The asyncio admission batcher (the service's front end).

Concurrent callers ``await submit(query)``; the batcher groups
pending queries by :func:`~repro.serve.protocol.group_key` and admits
a group as one service tick.  Execution is serialized **per group**
(at most one tick of a kind in flight), which makes the admission
policy self-tuning:

* while a group's tick is executing, newly admitted queries of that
  kind simply accumulate — the accumulation window is the tick's own
  execution time, so under load the next batch grows to (arrival rate
  x execution time) with no knob to tune;
* the moment a tick completes, the pending backlog is flushed as the
  next tick (in ``max_batch``-capped chunks) — the hold deadline is an
  *upper* bound on waiting, so admitting early is always allowed;
* an idle group (nothing in flight) flushes when either bound trips:
  ``max_batch`` *distinct* queries pending (immediately), or the
  group's current hold elapsed since its oldest pending query — a
  lone query on a quiet service never waits on traffic that may not
  come.

Without the per-group serialization the system has a degenerate
equilibrium under saturation: ticks execute for much longer than the
hold, completions arrive staggered, and each completion's resubmission
burst gets timer-flushed alone — tick sizes decay geometrically to ~1
and throughput collapses to per-query serial.  Flush-on-completion is
what removes that equilibrium; the load generator's tick-size
histogram is the regression witness.

**Intra-tick frontier dedup.**  Queries are frozen dataclasses keyed
by their exact float coordinates (plus ``k``/``radius``), so equal
queries are *identical* work: the oracle is a deterministic function
of the query value.  The batcher therefore canonicalizes a group's
backlog as an ordered map ``query -> [futures]``; a tick executes each
distinct query **once** — one row in the batched outer tree, one
``point_prune_row`` assembly, one k-NN candidate merge — and the
single result object is fanned out to every requester's future.  The
fan-out is bit-identical by construction (every caller receives the
same demuxed value, not a recomputation), and under a hot-set skew it
removes the duplicated majority of each tick's frontier work.  The
``max_batch`` cap applies to *distinct* queries: that is what bounds
execution cost, so a hot tick now admits far more users per run.

**Adaptive hold.**  The static ``max_hold_s`` knob survives only as a
*ceiling*.  Per group, the batcher tracks an EWMA of query
inter-arrival time and sets the idle-flush hold to
``hold_arrivals x ewma`` — long enough to accumulate a worthwhile
batch, never longer than the configured cap, never shorter than
:data:`MIN_HOLD_S`.  A hysteresis band (the hold only moves when the
target drifts more than :data:`HOLD_HYSTERESIS` away) keeps the
controller from chattering around the equilibrium; while a tick is in
flight the completion flush still dominates, so the self-tuned
full-tick steady state of the per-group serialization is untouched —
the controller only sharpens the *idle* latency bound when traffic is
dense and relaxes it back toward the ceiling when traffic is sparse.
``adaptive_hold=False`` restores the fixed-knob behavior exactly.

A flush hands the chunk to ``run_batch`` (the service's
``execute_batch``) on an executor thread, then demuxes the returned
per-query results back onto the callers' futures.  NumPy holds the
interpreter only briefly inside the kernels, so the event loop keeps
admitting while a tick executes; different kinds still execute
concurrently.

The policy is deliberately the paper's Section 2 interchange worn as
an admission discipline: the "outer recursion" over user queries is
*materialized* per tick (a batch query tree) instead of executed one
query at a time, which is exactly the interchange the benchmarks
apply to nested traversals — see PAPER_MAP.md.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Callable, Optional, Sequence

from repro.errors import SpecError
from repro.serve.protocol import Query, Result, group_key

#: Adaptive-hold floor, seconds.  Below ~0.1 ms the event loop's own
#: timer granularity dominates and a shorter hold buys nothing.
MIN_HOLD_S = 1e-4

#: Arrivals the adaptive controller aims to accumulate per idle tick.
DEFAULT_HOLD_ARRIVALS = 8.0

#: EWMA smoothing factor for the inter-arrival estimate.
ARRIVAL_EWMA_ALPHA = 0.2

#: Relative dead band: the applied hold only moves when the target
#: drifts more than this fraction away from it (hysteresis).
HOLD_HYSTERESIS = 0.25


class _PendingGroup:
    """One compatible kind: its deduplicated backlog and in-flight state."""

    __slots__ = (
        "entries",
        "timer",
        "running",
        "last_arrival",
        "ewma_dt",
        "hold_s",
        "serial",
    )

    def __init__(self, hold_s: float) -> None:
        #: entry key -> (query, futures of every caller riding it).
        #: With dedup the key is the (hashable, frozen) query itself;
        #: without it each submission gets a unique integer key.
        self.entries: "OrderedDict[object, tuple[Query, list[asyncio.Future]]]" = (
            OrderedDict()
        )
        self.timer: Optional[asyncio.TimerHandle] = None
        self.running = 0
        #: adaptive-hold controller state
        self.last_arrival: Optional[float] = None
        self.ewma_dt: Optional[float] = None
        self.hold_s = hold_s
        #: unique-key counter for dedup-disabled admission
        self.serial = 0

    def pending_queries(self) -> int:
        """Admitted user queries waiting (duplicates included)."""
        return sum(len(futures) for _, futures in self.entries.values())


class AdmissionBatcher:
    """Group concurrent queries into deduplicated service ticks.

    ``run_batch`` is a synchronous callable (queries -> results, in
    order); it runs on ``executor`` (``None`` = the loop's default
    thread pool) and only ever sees each tick's *distinct* queries.
    Create the batcher *inside* the event loop that will use it.
    """

    def __init__(
        self,
        run_batch: Callable[[Sequence[Query]], list[Result]],
        max_batch: int = 256,
        max_hold_s: float = 0.002,
        executor=None,
        dedup: bool = True,
        adaptive_hold: bool = True,
        hold_arrivals: float = DEFAULT_HOLD_ARRIVALS,
    ) -> None:
        if max_batch < 1:
            raise SpecError(f"max_batch must be >= 1, got {max_batch}")
        if max_hold_s < 0:
            raise SpecError(f"max_hold_s must be >= 0, got {max_hold_s}")
        if hold_arrivals <= 0:
            raise SpecError(
                f"hold_arrivals must be > 0, got {hold_arrivals}"
            )
        self.run_batch = run_batch
        self.max_batch = max_batch
        self.max_hold_s = max_hold_s
        self.executor = executor
        self.dedup = dedup
        self.adaptive_hold = adaptive_hold
        self.hold_arrivals = hold_arrivals
        self._pending: dict[tuple, _PendingGroup] = {}
        self._inflight: set[asyncio.Task] = set()
        #: flush-size history counters
        self.ticks = 0
        self.queries = 0
        self.executed = 0
        self.dedup_folded = 0
        self.full_flushes = 0
        self.timer_flushes = 0
        self.completion_flushes = 0
        self.max_tick_size = 0
        self.max_distinct_tick = 0

    async def submit(self, query: Query) -> Result:
        """Admit one query; resolves with its demuxed result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        key = group_key(query)
        group = self._pending.get(key)
        if group is None:
            group = _PendingGroup(self.max_hold_s)
            self._pending[key] = group
        self._observe_arrival(group)
        if self.dedup:
            entry = group.entries.get(query)
            if entry is not None:
                # Intra-tick frontier sharing: an exact-coordinate
                # duplicate rides the already-admitted entry — zero
                # extra tree rows, zero extra kernel work, one more
                # future in the fan-out.
                self.dedup_folded += 1
                entry[1].append(future)
                return await future
            group.entries[query] = (query, [future])
        else:
            group.serial += 1
            group.entries[group.serial] = (query, [future])
        if group.running == 0 and len(group.entries) >= self.max_batch:
            self.full_flushes += 1
            self._flush(key)
        elif group.timer is None:
            # Armed even while a tick is in flight: if the tick
            # outlives the hold, completion admits the backlog anyway
            # (earlier than the timer would); if the caller configured
            # a hold *longer* than the execution, the timer still
            # bounds the wait of a backlog the completion left behind.
            group.timer = loop.call_later(
                group.hold_s, self._timer_flush, key
            )
        return await future

    def _observe_arrival(self, group: _PendingGroup) -> None:
        """Feed the adaptive-hold controller one arrival timestamp."""
        if not self.adaptive_hold:
            return
        now = time.monotonic()
        last = group.last_arrival
        group.last_arrival = now
        if last is None:
            return
        dt = max(0.0, now - last)
        if group.ewma_dt is None:
            group.ewma_dt = dt
        else:
            group.ewma_dt += ARRIVAL_EWMA_ALPHA * (dt - group.ewma_dt)
        target = min(
            self.max_hold_s,
            max(MIN_HOLD_S, self.hold_arrivals * group.ewma_dt),
        )
        # Hysteresis: only re-tune when the target escapes the dead
        # band, so equilibrium noise does not chatter the knob.
        current = group.hold_s
        if abs(target - current) > HOLD_HYSTERESIS * current:
            group.hold_s = target

    def _timer_flush(self, key: tuple) -> None:
        group = self._pending.get(key)
        if group is None:
            return
        group.timer = None
        if not group.entries or group.running > 0:
            # Busy backend: the hold deadline defers to the completion
            # flush, which cannot be further away than one tick.
            return
        self.timer_flushes += 1
        self._flush(key)

    def _flush(self, key: tuple) -> None:
        """Launch one ``max_batch``-capped chunk of the group's backlog.

        The cap counts *distinct* queries — the unit of execution cost;
        each distinct entry carries every duplicate caller's future.
        """
        group = self._pending.get(key)
        if group is None or not group.entries:
            return
        chunk_queries: list[Query] = []
        chunk_futures: list[list[asyncio.Future]] = []
        while group.entries and len(chunk_queries) < self.max_batch:
            _, (query, futures) = group.entries.popitem(last=False)
            chunk_queries.append(query)
            chunk_futures.append(futures)
        if group.timer is not None and not group.entries:
            group.timer.cancel()
            group.timer = None
        admitted = sum(len(futures) for futures in chunk_futures)
        self.ticks += 1
        self.queries += admitted
        self.executed += len(chunk_queries)
        self.max_tick_size = max(self.max_tick_size, admitted)
        self.max_distinct_tick = max(
            self.max_distinct_tick, len(chunk_queries)
        )
        group.running += 1
        task = asyncio.get_running_loop().create_task(
            self._execute(key, chunk_queries, chunk_futures)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _execute(
        self,
        key: tuple,
        queries: list[Query],
        futures: list[list[asyncio.Future]],
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            try:
                results = await loop.run_in_executor(
                    self.executor, self.run_batch, queries
                )
                if len(results) != len(queries):
                    raise SpecError(
                        f"run_batch returned {len(results)} results for "
                        f"{len(queries)} queries"
                    )
            except BaseException as exc:
                for waiters in futures:
                    for future in waiters:
                        if not future.done():
                            future.set_exception(exc)
                return
            for waiters, result in zip(futures, results):
                # Bit-identical fan-out: every duplicate caller gets the
                # same result object the distinct query produced.
                for future in waiters:
                    if not future.done():
                        future.set_result(result)
        finally:
            self._on_complete(key)

    def _on_complete(self, key: tuple) -> None:
        group = self._pending.get(key)
        if group is None:
            return
        group.running -= 1
        if group.running == 0 and group.entries:
            # The backlog accumulated for the whole tick; admit it now
            # (the hold is a maximum, not a minimum).
            self.completion_flushes += 1
            self._flush(key)

    async def drain(self) -> None:
        """Flush everything pending and wait for in-flight ticks."""
        while True:
            for key in list(self._pending):
                group = self._pending[key]
                if group.running == 0 and group.entries:
                    self._flush(key)
            if not self._inflight:
                if any(g.entries for g in self._pending.values()):
                    continue
                return
            await asyncio.gather(
                *list(self._inflight), return_exceptions=True
            )

    def _hold_key(self, key: tuple) -> str:
        """A JSON-friendly label for one admission group."""
        return ":".join(str(part) for part in key)

    def batcher_stats(self) -> dict:
        """Admission counters (ticks, sizes, flush causes, dedup, hold)."""
        mean = self.queries / self.ticks if self.ticks else 0.0
        mean_distinct = self.executed / self.ticks if self.ticks else 0.0
        dedup_rate = (
            self.dedup_folded / self.queries if self.queries else 0.0
        )
        return {
            "ticks": self.ticks,
            "queries": self.queries,
            "executed": self.executed,
            "dedup_folded": self.dedup_folded,
            "dedup_hit_rate": round(dedup_rate, 4),
            "mean_tick_size": round(mean, 2),
            "mean_distinct_tick": round(mean_distinct, 2),
            "max_tick_size": self.max_tick_size,
            "max_distinct_tick": self.max_distinct_tick,
            "full_flushes": self.full_flushes,
            "timer_flushes": self.timer_flushes,
            "completion_flushes": self.completion_flushes,
            "adaptive_hold": {
                self._hold_key(key): {
                    "hold_ms": round(group.hold_s * 1000.0, 4),
                    "ewma_interarrival_ms": (
                        None
                        if group.ewma_dt is None
                        else round(group.ewma_dt * 1000.0, 4)
                    ),
                }
                for key, group in sorted(self._pending.items())
            },
            "dedup": self.dedup,
            "adaptive": self.adaptive_hold,
        }

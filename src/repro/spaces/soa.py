"""Structure-of-arrays tree layouts (the layout-level complement).

The paper's transformations reorder the *schedule*; this module
reorders the *storage*.  :func:`to_soa` packs a finalized
:class:`~repro.spaces.node.IndexNode` tree into contiguous NumPy
columns — ``first_child``/``next_sibling`` child links, ``size``,
``number``, the Section 4 ``trunc``/``trunc_counter`` scratch state,
and domain payload columns — under a selectable *linearization*:

* ``preorder`` — depth-first order, the layout a bump allocator gives a
  recursively built tree; subtrees are contiguous runs, so truncating a
  subtree is one index jump;
* ``bfs`` — level order, the layout of an array-backed heap; siblings
  are adjacent, good for frontier-at-a-time traversals;
* ``veb`` — a van-Emde-Boas-style blocked order: the tree is split at
  half height, the top block laid out first, then each bottom subtree
  recursively.  Nodes within ``h`` levels of each other land within
  ``O(2^h)`` positions regardless of tree size, giving cache-oblivious
  *depth* locality — the layout analog of twisting's parameterless
  claim (Section 3.2): blocked for every cache level at once because no
  block size was ever chosen.

The inverse, :func:`to_linked`, rebuilds linked nodes and is verified
to round-trip children order, sizes, pre-order numbers, and payloads
(``tests/properties/test_soa_properties.py``).

Alongside the storage columns (indexed by layout *position*), a
:class:`SoATree` carries traversal accelerators indexed by pre-order
*rank*: the index-based executors in :mod:`repro.core.soa_exec` walk
ranks — where a subtree is always the contiguous run
``[rank, rank + span[rank])`` — and translate to positions only when
gathering payload columns.  ``soa_view`` caches one packed view per
(root, order) so repeated runs over the same tree pay the packing cost
once.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.errors import SpecError
from repro.spaces.node import IndexNode, TreeNode, tree_depth

#: Linearization orders accepted by :func:`to_soa` and ``soa_view``.
LINEARIZATIONS = ("preorder", "bfs", "veb")

#: Payload getter: maps a node to one column value.
PayloadGetter = Callable[[IndexNode], Any]


@dataclass
class SoATree:
    """A tree packed into contiguous arrays under one linearization.

    Storage columns are indexed by layout *position* (0..n-1 in the
    chosen order); ``rank_pos``/``pos_rank`` translate between
    positions and pre-order ranks.  ``nodes`` keeps the original linked
    node per position so predicates, instruments, and scalar ``work``
    observe the exact objects the recursive executors would.
    """

    #: linearization name this view was packed under
    order: str
    #: original linked node per position
    nodes: list[IndexNode]
    #: parent position per position (-1 at the root)
    parent: np.ndarray
    #: first-child position per position (-1 at leaves)
    first_child: np.ndarray
    #: next-sibling position per position (-1 at last siblings)
    next_sibling: np.ndarray
    #: stored ``node.size`` per position
    size: np.ndarray
    #: stored ``node.number`` per position
    number: np.ndarray
    #: snapshot of ``node.trunc`` per position (scratch column)
    trunc: np.ndarray
    #: snapshot of ``node.trunc_counter`` per position (scratch column)
    trunc_counter: np.ndarray
    #: payload columns, e.g. ``label``/``data`` for ``TreeNode`` trees
    payload: dict[str, np.ndarray]
    #: pre-order rank -> position
    rank_pos: np.ndarray
    #: position -> pre-order rank
    pos_rank: np.ndarray
    #: structural subtree node count per pre-order rank
    span: np.ndarray
    #: position of the root (pre-order rank 0)
    root: int

    # Lazily materialized plain-list accelerators for the hot executor
    # loops (list indexing beats ndarray scalar indexing in CPython).
    _rank_cache: dict = field(default_factory=dict, repr=False)

    @property
    def num_nodes(self) -> int:
        """Number of packed nodes."""
        return len(self.nodes)

    def _ranked(self, key: str, build: Callable[[], list]) -> list:
        cached = self._rank_cache.get(key)
        if cached is None:
            cached = build()
            self._rank_cache[key] = cached
        return cached

    @property
    def rank_nodes(self) -> list[IndexNode]:
        """Original nodes in pre-order (rank-indexed)."""
        nodes = self.nodes
        return self._ranked(
            "nodes", lambda: [nodes[pos] for pos in self.rank_pos.tolist()]
        )

    @property
    def rank_span(self) -> list[int]:
        """Structural subtree sizes, rank-indexed, as a plain list."""
        return self._ranked("span", self.span.tolist)

    @property
    def rank_size(self) -> list[int]:
        """Stored ``node.size`` values, rank-indexed."""
        return self._ranked(
            "size", lambda: self.size[self.rank_pos].tolist()
        )

    @property
    def rank_number(self) -> list[int]:
        """Stored ``node.number`` values, rank-indexed."""
        return self._ranked(
            "number", lambda: self.number[self.rank_pos].tolist()
        )

    @property
    def rank_pos_list(self) -> list[int]:
        """Rank -> position, as a plain list (payload gather hot path)."""
        return self._ranked("pos", self.rank_pos.tolist)

    @property
    def rank_children_rev(self) -> list[list[int]]:
        """Children ranks per rank, pre-reversed for stack pushes.

        The executors push children onto explicit stacks in reversed
        order (so pops visit them in declared order); storing the lists
        already reversed makes that one C-speed ``extend`` per node.
        """

        def build() -> list[list[int]]:
            span = self.rank_span
            out: list[list[int]] = []
            for rank in range(len(span)):
                end = rank + span[rank]
                child = rank + 1
                kids: list[int] = []
                while child < end:
                    kids.append(child)
                    child += span[child]
                kids.reverse()
                out.append(kids)
            return out

        return self._ranked("children_rev", build)

    def children_ranks(self, rank: int) -> list[int]:
        """Pre-order ranks of the children of the node at ``rank``."""
        span = self.rank_span
        end = rank + span[rank]
        child = rank + 1
        out = []
        while child < end:
            out.append(child)
            child += span[child]
        return out

    def column(self, name: str) -> np.ndarray:
        """A payload column by name, with a helpful error."""
        try:
            return self.payload[name]
        except KeyError:
            raise SpecError(
                f"SoA tree has no payload column {name!r}; available: "
                f"{sorted(self.payload)}"
            ) from None


def linearize(root: IndexNode, order: str = "preorder") -> list[IndexNode]:
    """The tree's nodes in the given linearization order.

    This is the single source of truth for layout orders — both
    :func:`to_soa` and the address mapping in
    :mod:`repro.memory.layout` consume it, so the simulated cache sees
    exactly the storage order the SoA executors use.
    """
    if order == "preorder":
        return list(root.iter_preorder())
    if order == "bfs":
        out: list[IndexNode] = []
        frontier: Sequence[IndexNode] = [root]
        while frontier:
            out.extend(frontier)
            frontier = [
                child for node in frontier for child in node.children
            ]
        return out
    if order == "veb":
        return _veb_order(root)
    raise SpecError(
        f"unknown linearization {order!r}; known: {list(LINEARIZATIONS)}"
    )


def _veb_order(root: IndexNode) -> list[IndexNode]:
    """Van-Emde-Boas-style blocked order for an arbitrary tree.

    ``_emit(node, budget)`` lays out the sub-forest of nodes within
    ``budget`` levels of ``node`` by recursively splitting the budget
    in half: top block first, then each frontier subtree.  The budget
    at least halves per nesting level, so the recursion depth is
    ``O(log height)`` even for degenerate list trees.
    """
    out: list[IndexNode] = []

    def _emit(
        node: IndexNode, budget: int, frontier: list[IndexNode]
    ) -> None:
        if budget <= 1:
            out.append(node)
            frontier.extend(node.children)
            return
        top = budget // 2
        mid: list[IndexNode] = []
        _emit(node, top, mid)
        bottom = budget - top
        for block_root in mid:
            _emit(block_root, bottom, frontier)

    leftovers: list[IndexNode] = []
    _emit(root, max(1, tree_depth(root)), leftovers)
    assert not leftovers, "veb budget must cover the whole height"
    return out


def _auto_payload(root: IndexNode) -> dict[str, PayloadGetter]:
    """Default payload columns, inferred from the node type.

    ``TreeNode`` trees pack ``label`` and ``data``; spatial nodes pack
    their point-slice bounds (see
    :func:`repro.dualtree.batch.spatial_payload`); bare index nodes
    pack nothing.
    """
    if isinstance(root, TreeNode):
        return {
            "label": lambda node: node.label,  # type: ignore[attr-defined]
            "data": lambda node: node.data,  # type: ignore[attr-defined]
        }
    if hasattr(root, "start") and hasattr(root, "end"):
        return {
            "start": lambda node: node.start,  # type: ignore[attr-defined]
            "end": lambda node: node.end,  # type: ignore[attr-defined]
            "is_leaf": lambda node: not node.children,
        }
    return {}


def _pack_column(values: list) -> np.ndarray:
    """A column array for collected payload values.

    Numeric payloads become typed arrays (this is what lets SoA-native
    kernels replace per-node attribute walks with one gather); anything
    NumPy cannot type cleanly falls back to object dtype.
    """
    try:
        column = np.asarray(values)
    except (ValueError, TypeError):
        return _object_column(values)
    if column.shape != (len(values),):
        # Ragged/sequence payloads must stay one object per node.
        return _object_column(values)
    return column


def _object_column(values: list) -> np.ndarray:
    column = np.empty(len(values), dtype=object)
    column[:] = values
    return column


def to_soa(
    root: IndexNode,
    order: str = "preorder",
    payload: Optional[dict[str, PayloadGetter]] = None,
) -> SoATree:
    """Pack a finalized linked tree into SoA storage.

    ``payload`` maps column names to per-node getters; by default the
    columns are inferred from the node type (:func:`_auto_payload`).
    The round trip ``to_linked(to_soa(root))`` preserves children
    order, sizes, pre-order numbers, and payloads.
    """
    pre_nodes = list(root.iter_preorder())
    n = len(pre_nodes)
    ordered = linearize(root, order)
    if len(ordered) != n:
        raise SpecError(
            f"linearization {order!r} produced {len(ordered)} nodes for a "
            f"{n}-node tree — the tree must not be mutated while packing"
        )
    pos_of = {id(node): pos for pos, node in enumerate(ordered)}
    rank_of = {id(node): rank for rank, node in enumerate(pre_nodes)}

    span = np.ones(n, dtype=np.int64)
    span_list = span.tolist()
    for rank in range(n - 1, -1, -1):
        total = 1
        for child in pre_nodes[rank].children:
            total += span_list[rank_of[id(child)]]
        span_list[rank] = total
    span = np.asarray(span_list, dtype=np.int64)

    parent = np.full(n, -1, dtype=np.int64)
    first_child = np.full(n, -1, dtype=np.int64)
    next_sibling = np.full(n, -1, dtype=np.int64)
    size = np.empty(n, dtype=np.int64)
    number = np.empty(n, dtype=np.int64)
    trunc = np.zeros(n, dtype=bool)
    trunc_counter = np.empty(n, dtype=np.int64)
    rank_pos = np.empty(n, dtype=np.int64)
    for pos, node in enumerate(ordered):
        size[pos] = node.size
        number[pos] = node.number
        trunc[pos] = node.trunc
        trunc_counter[pos] = node.trunc_counter
        rank_pos[rank_of[id(node)]] = pos
        children = node.children
        if children:
            first_child[pos] = pos_of[id(children[0])]
            for left, right in zip(children, children[1:]):
                next_sibling[pos_of[id(left)]] = pos_of[id(right)]
        for child in children:
            parent[pos_of[id(child)]] = pos
    pos_rank = np.empty(n, dtype=np.int64)
    pos_rank[rank_pos] = np.arange(n, dtype=np.int64)

    getters = _auto_payload(root) if payload is None else payload
    columns = {
        name: _pack_column([getter(node) for node in ordered])
        for name, getter in getters.items()
    }

    return SoATree(
        order=order,
        nodes=list(ordered),
        parent=parent,
        first_child=first_child,
        next_sibling=next_sibling,
        size=size,
        number=number,
        trunc=trunc,
        trunc_counter=trunc_counter,
        payload=columns,
        rank_pos=rank_pos,
        pos_rank=pos_rank,
        span=span,
        root=int(rank_pos[0]),
    )


def _scalar(value: Any) -> Any:
    """NumPy scalar -> Python scalar, so round-trips are type-faithful."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def to_linked(soa: SoATree) -> IndexNode:
    """Rebuild a linked tree from SoA storage.

    Produces :class:`~repro.spaces.node.TreeNode` objects when the
    view carries ``label``/``data`` columns (the round-trip case for
    labeled trees), bare :class:`~repro.spaces.node.IndexNode` objects
    otherwise.  ``size``/``number``/truncation scratch state are
    restored from the columns, *not* recomputed, so a round trip is an
    identity on everything the executors read.
    """
    n = soa.num_nodes
    labeled = "label" in soa.payload
    if labeled:
        labels = soa.payload["label"]
        data = soa.payload.get("data")
        rebuilt: list[IndexNode] = [
            TreeNode(
                _scalar(labels[pos]),
                _scalar(data[pos]) if data is not None else None,
            )
            for pos in range(n)
        ]
    else:
        rebuilt = [IndexNode() for _ in range(n)]
    first_child = soa.first_child.tolist()
    next_sibling = soa.next_sibling.tolist()
    for pos in range(n):
        node = rebuilt[pos]
        node.size = int(soa.size[pos])
        node.number = int(soa.number[pos])
        node.trunc = bool(soa.trunc[pos])
        node.trunc_counter = int(soa.trunc_counter[pos])
        children = []
        child = first_child[pos]
        while child != -1:
            children.append(rebuilt[child])
            child = next_sibling[child]
        node.children = tuple(children)
    return rebuilt[soa.root]


#: Per-root cache of packed views, keyed weakly so dropping a tree
#: frees its views.  Maps root -> {order: SoATree}.
_VIEW_CACHE: "weakref.WeakKeyDictionary[IndexNode, dict[str, SoATree]]" = (
    weakref.WeakKeyDictionary()
)


def soa_view(
    root: IndexNode, order: str = "preorder", refresh: bool = False
) -> SoATree:
    """A cached SoA view of ``root`` under ``order``.

    Views describe a *finalized* tree; if the tree's structure changes
    afterwards, pass ``refresh=True`` to repack.  The cache is weak per
    root, so it never outlives the tree.
    """
    if order not in LINEARIZATIONS:
        raise SpecError(
            f"unknown linearization {order!r}; known: {list(LINEARIZATIONS)}"
        )
    try:
        per_root = _VIEW_CACHE.setdefault(root, {})
    except TypeError:  # un-weakrefable custom node: build uncached
        return to_soa(root, order)
    if refresh or order not in per_root:
        per_root[order] = to_soa(root, order)
    return per_root[order]

"""Automatic cutoff estimation (the Section 7.1 open problem).

"The challenge, of course, is determining what this cutoff parameter
should be: cut off too early and the inner traversals will not fit in
cache, precluding any locality benefit; cut off too late and much of
the benefit of providing a cut-off parameter is lost. ... Investigating
how to set the cutoff parameter correctly in recursion twisting is an
interesting avenue of future work."

This module implements the natural cache-aware estimator.  The cutoff
bounds the *inner tree size* below which the schedule stays in the
plain recursive order; for that to be locality-neutral, the working set
of the remaining block must fit in the targeted cache.  Once the inner
tree is down to ``c`` nodes, twisting would next balance the outer side
to ``~c`` as well, so the block's working set is about
``2 * c * lines_per_node`` lines.  Solving for the target capacity with
a safety factor (associativity conflicts, auxiliary state):

``cutoff = capacity_lines / (2 * lines_per_node * safety)``

The estimator is validated by ``benchmarks/test_fig10_cutoff.py``'s
companion assertion: on the Figure 10 sweep it lands within the
plateau of good cutoffs (>= 90% of the best swept speedup).
"""

from __future__ import annotations

from typing import Optional

from repro.core.schedules import Schedule, twist_with_cutoff
from repro.errors import ScheduleError
from repro.memory.hierarchy import CacheHierarchy


def estimate_cutoff(
    capacity_lines: int,
    lines_per_node: float = 1.0,
    safety: float = 2.0,
) -> int:
    """Cache-aware cutoff for a single target cache capacity.

    Parameters
    ----------
    capacity_lines:
        Line capacity of the cache level the cutoff should fit
        (normally the last level: the levels above still benefit from
        the twisting that happens *above* the cutoff).
    lines_per_node:
        Average cache lines touched per iteration-space node (1 for
        plain tree nodes; higher when leaves carry point data — pass
        ``address_map.total_lines / num_nodes`` for measured workloads).
    safety:
        Headroom divisor for associativity conflicts and bookkeeping
        state.
    """
    if capacity_lines < 1:
        raise ScheduleError(f"capacity_lines must be >= 1, got {capacity_lines}")
    if lines_per_node <= 0 or safety <= 0:
        raise ScheduleError("lines_per_node and safety must be positive")
    return max(1, int(capacity_lines / (2.0 * lines_per_node * safety)))


def cutoff_for_machine(
    hierarchy: CacheHierarchy,
    lines_per_node: float = 1.0,
    safety: float = 2.0,
    level: Optional[int] = None,
) -> int:
    """Estimate the cutoff for a simulated machine's last (or given) level."""
    index = len(hierarchy.levels) - 1 if level is None else level
    try:
        capacity = hierarchy.levels[index].capacity_lines
    except IndexError:
        raise ScheduleError(
            f"hierarchy has {len(hierarchy.levels)} levels; no level {index}"
        ) from None
    return estimate_cutoff(capacity, lines_per_node, safety)


def auto_cutoff_schedule(
    hierarchy: CacheHierarchy,
    lines_per_node: float = 1.0,
    safety: float = 2.0,
) -> Schedule:
    """A ready-to-run twisted schedule with the estimated cutoff."""
    return twist_with_cutoff(
        cutoff_for_machine(hierarchy, lines_per_node, safety)
    )

"""Unit tests for code generation."""

import ast

import pytest

from repro.transform import (
    analyze_truncation,
    generate_interchanged,
    generate_module,
    generate_twisted,
    recognize,
)

REGULAR = '''
def outer(o, i):
    if o is None:
        return
    inner(o, i)
    outer(o.left, i)
    outer(o.right, i)

def inner(o, i):
    if i is None:
        return
    work(o, i)
    inner(o, i.left)
    inner(o, i.right)
'''

IRREGULAR = REGULAR.replace("if i is None:", "if i is None or prune(o, i):")


def parts(source):
    template = recognize(source, "outer", "inner")
    return template, analyze_truncation(template)


class TestInterchangedCodegen:
    def test_regular_output_parses_and_swaps_guards(self):
        code = generate_interchanged(*parts(REGULAR))
        ast.parse(code)
        # The swapped outer bounds on the inner guard and vice versa.
        assert "def outer_swapped(o, i):" in code
        assert "def inner_swapped(o, i):" in code
        assert "if i is None:" in code.split("def outer_swapped")[1].split("def ")[0]

    def test_regular_has_no_flag_code(self):
        code = generate_interchanged(*parts(REGULAR))
        assert "trunc" not in code
        assert "_untrunc" not in code

    def test_irregular_emits_flag_machinery(self):
        code = generate_interchanged(*parts(IRREGULAR))
        ast.parse(code)
        assert "_untrunc = []" in code
        assert "o.trunc = True" in code
        assert "_node.trunc = False" in code

    def test_irregular_flag_checked_before_predicate(self):
        code = generate_interchanged(*parts(IRREGULAR))
        inner_swapped = code.split("def inner_swapped")[1]
        assert inner_swapped.index("getattr(o, 'trunc'") < inner_swapped.index(
            "prune(o, i)"
        )


class TestTwistedCodegen:
    def test_emits_the_quartet(self):
        code = generate_twisted(*parts(REGULAR))
        ast.parse(code)
        for name in (
            "outer_twisted",
            "inner_twisted",
            "outer_twisted_swapped",
            "inner_twisted_swapped",
        ):
            assert f"def {name}(" in code

    def test_size_comparisons_present(self):
        code = generate_twisted(*parts(REGULAR))
        assert "_twist_size(_child0) <= _twist_size(i)" in code
        assert "_twist_size(_child0) <= _twist_size(o)" in code

    def test_cutoff_constant(self):
        assert "_TWIST_CUTOFF = None" in generate_twisted(*parts(REGULAR))
        assert "_TWIST_CUTOFF = 64" in generate_twisted(*parts(REGULAR), cutoff=64)

    def test_irregular_regular_order_keeps_structural_guard(self):
        code = generate_twisted(*parts(IRREGULAR))
        inner_twisted = code.split("def inner_twisted(")[1].split("def ")[0]
        # The regular-order inner keeps the ORIGINAL combined guard.
        assert "i is None or prune(o, i)" in inner_twisted


class TestGenerateModule:
    def test_includes_everything(self):
        template, analysis = parts(REGULAR)
        code = generate_module(template, analysis)
        ast.parse(code)
        assert "def _twist_size(" in code
        assert "def outer(" in code  # original round-tripped
        assert "def outer_swapped(" in code
        assert "def outer_twisted(" in code

    def test_can_exclude_original(self):
        template, analysis = parts(REGULAR)
        code = generate_module(template, analysis, include_original=False)
        assert "def outer(o, i):" not in code
        assert "def outer_twisted(" in code

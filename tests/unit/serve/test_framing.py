"""Wire-compat: the binary framing and its JSON sibling stay pinned.

The byte-level cases are compatibility contracts — a framing change
that shifts any of the pinned encodings breaks deployed clients, so
these tests spell the bytes out rather than round-tripping only.
"""

import json
import struct

import pytest

from repro.errors import SpecError
from repro.serve import framing as fr
from repro.serve.protocol import (
    CountQuery,
    CountResult,
    KNNQuery,
    KNNResult,
    NNQuery,
    NNResult,
    decode_query,
    decode_result,
    encode_query,
    encode_result,
)

QUERIES = [
    NNQuery((0.25, -1.5)),
    KNNQuery((0.1, 0.2, 0.3), 7),
    CountQuery((2.0,), 0.75),
]

RESULTS = [
    NNResult(42, 0.015625),
    KNNResult((3, 1, 2), (0.25, 0.5, 1.0)),
    CountResult(1234567),
]


class TestBinaryRoundTrip:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: type(q).__name__)
    def test_query_round_trip_is_exact(self, query):
        assert fr.unpack_query(fr.pack_query(query)) == query

    @pytest.mark.parametrize(
        "result", RESULTS, ids=lambda r: type(r).__name__
    )
    def test_result_round_trip_is_exact(self, result):
        assert fr.unpack_result(fr.pack_result(result)) == result

    def test_awkward_floats_survive_bit_exactly(self):
        # Values with no short decimal form: the struct round trip must
        # reproduce the exact same float64 bit patterns.
        point = (1 / 3, 2**-52, 1e300, -0.0)
        query = CountQuery(point, radius=0.1 + 0.2)
        decoded = fr.unpack_query(fr.pack_query(query))
        assert [struct.pack("<d", v) for v in decoded.point] == [
            struct.pack("<d", v) for v in point
        ]
        assert struct.pack("<d", decoded.radius) == struct.pack(
            "<d", query.radius
        )


class TestPinnedBytes:
    def test_nn_query_frame_bytes(self):
        frame = fr.encode_frame(
            fr.T_QUERY, 7, fr.pack_query(NNQuery((1.0,)))
        )
        expected = (
            struct.pack("<I", 1 + 4 + 1 + 2 + 8)  # length word
            + struct.pack("<BI", 0x01, 7)  # T_QUERY, id
            + struct.pack("<B", 0x01)  # nn tag
            + struct.pack("<H", 1)  # dimensions
            + struct.pack("<d", 1.0)
        )
        assert frame == expected

    def test_count_result_frame_bytes(self):
        frame = fr.encode_frame(
            fr.T_RESULT, 9, fr.pack_result(CountResult(5))
        )
        expected = (
            struct.pack("<I", 1 + 4 + 1 + 8)
            + struct.pack("<BI", 0x05, 9)
            + struct.pack("<B", 0x03)
            + struct.pack("<q", 5)
        )
        assert frame == expected

    def test_json_wire_format_stays_pinned(self):
        # The JSON framing is the default and must not drift either.
        assert encode_query(KNNQuery((1.0, 2.0), 3)) == {
            "kind": "knn",
            "point": [1.0, 2.0],
            "k": 3,
        }
        assert encode_result(NNResult(4, 0.5)) == {
            "kind": "nn",
            "neighbor_id": 4,
            "distance": 0.5,
        }

    def test_json_and_binary_agree_on_every_kind(self):
        for query in QUERIES:
            via_json = decode_query(
                json.loads(json.dumps(encode_query(query)))
            )
            via_binary = fr.unpack_query(fr.pack_query(query))
            assert via_json == via_binary == query
        for result in RESULTS:
            via_json = decode_result(
                json.loads(json.dumps(encode_result(result)))
            )
            via_binary = fr.unpack_result(fr.pack_result(result))
            assert via_json == via_binary == result


class TestFrameValidation:
    def test_frame_header_round_trip(self):
        frame_type, request_id, body = fr.decode_frame(
            fr.encode_frame(fr.T_PING, 123)[4:]
        )
        assert (frame_type, request_id, body) == (fr.T_PING, 123, b"")

    def test_truncated_frame_rejected(self):
        with pytest.raises(SpecError, match="truncated"):
            fr.decode_frame(b"\x01")

    def test_implausible_length_rejected(self):
        with pytest.raises(SpecError, match="implausible"):
            fr.read_frame_length(struct.pack("<I", fr.MAX_FRAME_BODY + 1))
        with pytest.raises(SpecError, match="implausible"):
            fr.read_frame_length(struct.pack("<I", 0))

    def test_binary_decoder_validates_like_json(self):
        bad_k = fr.pack_query(KNNQuery((1.0,), 2)).replace(
            struct.pack("<I", 2), struct.pack("<I", 0)
        )
        with pytest.raises(SpecError, match="k >= 1"):
            fr.unpack_query(bad_k)
        with pytest.raises(SpecError, match="unknown binary query tag"):
            fr.unpack_query(b"\xff")
        with pytest.raises(SpecError, match="empty"):
            fr.unpack_query(b"")


class TestBlockingReader:
    def test_reads_frames_and_clean_eof(self):
        import io

        stream = io.BytesIO(
            fr.encode_frame(fr.T_OK, 1) + fr.encode_frame(fr.T_PING, 2)
        )
        assert fr.read_frame_blocking(stream) == (fr.T_OK, 1, b"")
        assert fr.read_frame_blocking(stream) == (fr.T_PING, 2, b"")
        assert fr.read_frame_blocking(stream) is None

    def test_mid_frame_eof_is_an_error(self):
        import io

        stream = io.BytesIO(fr.encode_frame(fr.T_OK, 1)[:-2])
        with pytest.raises(SpecError, match="mid-frame"):
            fr.read_frame_blocking(stream)

"""Schedule analysis: quantifying the paper's qualitative claims.

* :mod:`repro.analysis.tiles` — rectangle/tile decomposition of
  recorded schedules (the "nested tiles" of Section 3.2, measured);
* :mod:`repro.analysis.profiles` — reuse-profile comparison and
  CDF-dominance checks across schedules (Figure 5, generalized).
"""

from repro.analysis.profiles import (
    DominanceReport,
    compare_profiles,
    dominance,
    reuse_profile,
    working_set_fraction,
)
from repro.analysis.tiles import (
    Tile,
    TileSummary,
    balance_profile,
    rectangle_decomposition,
    tile_summary,
    window_balance,
)

__all__ = [
    "DominanceReport",
    "Tile",
    "TileSummary",
    "balance_profile",
    "compare_profiles",
    "window_balance",
    "dominance",
    "rectangle_decomposition",
    "reuse_profile",
    "tile_summary",
    "working_set_fraction",
]

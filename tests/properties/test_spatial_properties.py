"""Property-based tests for spatial trees and dual-tree correctness."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import run_original, run_twisted
from repro.dualtree import (
    KNearestNeighbors,
    PointCorrelation,
    brute_knn,
    brute_point_correlation,
    build_kdtree,
    build_vptree,
)

point_clouds = st.builds(
    lambda n, seed: np.random.default_rng(seed).random((n, 2)),
    st.integers(min_value=2, max_value=60),
    st.integers(min_value=0, max_value=5_000),
)


class TestTreeInvariants:
    @given(points=point_clouds, leaf_size=st.integers(min_value=1, max_value=8))
    def test_kdtree_structure(self, points, leaf_size):
        build_kdtree(points, leaf_size).validate()

    @given(points=point_clouds, leaf_size=st.integers(min_value=1, max_value=8))
    def test_vptree_structure(self, points, leaf_size):
        build_vptree(points, leaf_size).validate()

    @given(points=point_clouds)
    def test_twisting_size_hierarchy_available(self, points):
        tree = build_kdtree(points, leaf_size=2)
        for node in tree.root.iter_preorder():
            assert node.size == 1 + sum(c.size for c in node.children)


class TestDualTreeCorrectness:
    @settings(max_examples=15)
    @given(
        points=point_clouds,
        radius=st.floats(min_value=0.01, max_value=1.5),
        leaf_size=st.integers(min_value=1, max_value=6),
    )
    def test_pc_matches_brute_force_under_twisting(
        self, points, radius, leaf_size
    ):
        pc = PointCorrelation(points, radius=radius, leaf_size=leaf_size)
        run_twisted(pc.make_spec())
        assert pc.result == brute_point_correlation(points, points, radius)

    @settings(max_examples=15)
    @given(
        points=point_clouds,
        k=st.integers(min_value=1, max_value=4),
    )
    def test_knn_matches_brute_force_under_all_schedules(self, points, k):
        queries = points
        references = points[::-1].copy() + 0.001
        knn = KNearestNeighbors(queries, references, k=min(k, len(references)))
        brute_ids, brute_dists = brute_knn(
            queries, references, min(k, len(references))
        )
        for run in (run_original, run_twisted):
            run(knn.make_spec())
            ids, dists = knn.result
            assert np.allclose(dists, brute_dists)
            assert np.array_equal(ids, brute_ids)

"""Named schedule registry.

The bench harness and the examples refer to schedules by name
("original", "interchange", "twist", "twist(cutoff=64)", ...).  This
module gives each transformation a uniform call signature —
``schedule.run(spec, instrument)`` — and a canonical name, so the
experiment drivers can sweep configurations declaratively.

Every schedule carries interchangeable backends:

* ``recursive`` — the faithful recursive executors, structured like
  the paper's listings;
* ``batched`` — the explicit-stack executors of
  :mod:`repro.core.batched`, which defer work into vectorized blocks
  while emitting the exact same instrumentation event sequence;
* ``soa`` — the index-based executors of :mod:`repro.core.soa_exec`,
  which traverse packed structure-of-arrays views
  (:mod:`repro.spaces.soa`) instead of linked nodes;
* ``compiled`` — the proof-gated fused executors of
  :mod:`repro.core.compiled`, which replay the SoA emission order from
  cached whole-run position arrays into one fused (optionally
  numba-jitted) kernel dispatch — only for specs the TW2xx pass
  certifies ``lowerable``;
* ``parallel`` — the real multi-worker runtime of
  :mod:`repro.core.parallel_exec`, which spawns independent outer
  subtrees as tasks (the Section 7.3 decomposition) across a process
  or thread pool over shared-memory SoA columns;
* ``auto`` — :func:`repro.core.backend_select.choose_backend` probes
  the spec and picks one per (spec, schedule).

Pick one per run via ``schedule.run(spec, instrument, backend=...)``.
All backends produce identical results; the single-process backends
also produce identical instrumentation event streams (``parallel``
rejects instruments — events interleave across workers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.batched import (
    run_interchanged_batched,
    run_original_batched,
    run_twisted_batched,
)
from repro.core.compiled import (
    run_interchanged_compiled,
    run_original_compiled,
    run_twisted_compiled,
)
from repro.core.executors import run_original
from repro.core.instruments import Instrument
from repro.core.interchange import run_interchanged
from repro.core.soa_exec import (
    run_interchanged_soa,
    run_original_soa,
    run_twisted_soa,
)
from repro.core.spec import NestedRecursionSpec
from repro.core.twisting import run_twisted
from repro.errors import ScheduleError

Runner = Callable[..., None]

#: Backend names accepted by :meth:`Schedule.run`.
BACKENDS = (
    "recursive",
    "batched",
    "soa",
    "compiled",
    "parallel",
    "auto",
    "sanitize",
)


@dataclass(frozen=True)
class Schedule:
    """A named, fully configured schedule transformation."""

    name: str
    _runner: Runner
    _batched_runner: Runner
    _soa_runner: Runner
    _compiled_runner: Runner

    def run(
        self,
        spec: NestedRecursionSpec,
        instrument: Optional[Instrument] = None,
        backend: str = "recursive",
        order: str = "preorder",
        spec_factory: Optional[Callable[[], NestedRecursionSpec]] = None,
    ) -> None:
        """Execute ``spec`` under this schedule.

        ``backend`` selects the recursive executors (default), the
        batched explicit-stack ones, the SoA index-based ones,
        ``"compiled"`` (the proof-gated fused executors of
        :mod:`repro.core.compiled` — requires a TW20x ``lowerable``
        verdict and delegates instrumented runs to the SoA backend),
        ``"parallel"`` (the multi-worker runtime of
        :mod:`repro.core.parallel_exec` — requires the spec to carry a
        ``parallel_plan`` and a proven outer-independence witness, and
        rejects ``instrument``), ``"auto"`` (probe the spec, pick one
        — refusing any backend the conformance analyzer proved
        unsafe), or ``"sanitize"`` (shadow-execute the auto-chosen
        backend against the recursive one, raising
        :class:`~repro.core.sanitize.SanitizeDivergence` at the first
        observable difference); all produce identical results and the
        single-process backends identical instrumentation events.
        ``order`` is the storage linearization used by the SoA backend
        and by ``parallel`` task kernels
        (``preorder``/``bfs``/``veb``); other backends ignore it.
        Under ``"auto"`` an unpinned ``order`` (left at ``preorder``)
        adopts the selector's recommendation.

        ``spec_factory`` is only consulted by ``"sanitize"``, whose
        phases each need a fresh spec; specs whose truncation observes
        work *require* it (re-running them on stale accumulator state
        diverges for reasons unrelated to the backend).
        """
        if backend == "sanitize":
            from repro.core.sanitize import run_sanitized

            if spec_factory is None:
                if spec.truncation_observes_work:
                    raise ScheduleError(
                        "backend='sanitize' needs spec_factory for a "
                        "spec whose truncation observes work: each "
                        "shadow phase must start from fresh state"
                    )
                spec_factory = lambda: spec  # noqa: E731
            run_sanitized(
                spec_factory,
                self,
                backend="auto",
                order=order,
                instrument=instrument,
            )
            return
        if backend == "auto":
            from repro.core.backend_select import choose_backend

            choice = choose_backend(spec, self.name)
            backend = choice.backend
            if order == "preorder":
                order = choice.order
        if backend == "parallel":
            if instrument is not None:
                raise ScheduleError(
                    "backend='parallel' cannot carry an instrument: "
                    "worker event streams interleave nondeterministically; "
                    "instrument a single-process backend instead"
                )
            from repro.core.parallel_exec import run_parallel

            run_parallel(spec, schedule=self, order=order)
            return
        if backend == "recursive":
            self._runner(spec, instrument=instrument)
        elif backend == "batched":
            self._batched_runner(spec, instrument=instrument)
        elif backend == "soa":
            self._soa_runner(spec, instrument=instrument, order=order)
        elif backend == "compiled":
            self._compiled_runner(spec, instrument=instrument, order=order)
        else:
            raise ScheduleError(
                f"unknown backend {backend!r}; known: {list(BACKENDS)}"
            )


#: The untransformed Figure 2 schedule.
ORIGINAL = Schedule(
    "original",
    run_original,
    run_original_batched,
    run_original_soa,
    run_original_compiled,
)

#: Plain recursion interchange (Figure 3 + Section 4 flags).
INTERCHANGE = Schedule(
    "interchange",
    run_interchanged,
    run_interchanged_batched,
    run_interchanged_soa,
    run_interchanged_compiled,
)

#: Interchange with the Section 4.2 subtree-truncation optimization.
INTERCHANGE_SUBTREE = Schedule(
    "interchange+subtree",
    lambda spec, instrument=None: run_interchanged(
        spec, instrument=instrument, subtree_truncation=True
    ),
    lambda spec, instrument=None: run_interchanged_batched(
        spec, instrument=instrument, subtree_truncation=True
    ),
    lambda spec, instrument=None, order="preorder": run_interchanged_soa(
        spec, instrument=instrument, subtree_truncation=True, order=order
    ),
    lambda spec, instrument=None, order="preorder": run_interchanged_compiled(
        spec, instrument=instrument, subtree_truncation=True, order=order
    ),
)

#: Parameterless recursion twisting, the paper's evaluated configuration
#: (flags + subtree truncation).
TWIST = Schedule(
    "twist",
    run_twisted,
    run_twisted_batched,
    run_twisted_soa,
    run_twisted_compiled,
)

#: Twisting with the Section 4.3 counter optimization.
TWIST_COUNTERS = Schedule(
    "twist+counters",
    lambda spec, instrument=None: run_twisted(
        spec, instrument=instrument, use_counters=True
    ),
    lambda spec, instrument=None: run_twisted_batched(
        spec, instrument=instrument, use_counters=True
    ),
    lambda spec, instrument=None, order="preorder": run_twisted_soa(
        spec, instrument=instrument, use_counters=True, order=order
    ),
    lambda spec, instrument=None, order="preorder": run_twisted_compiled(
        spec, instrument=instrument, use_counters=True, order=order
    ),
)

#: Twisting without subtree truncation (for the Section 4.2 ablation).
TWIST_NO_SUBTREE = Schedule(
    "twist-subtree",
    lambda spec, instrument=None: run_twisted(
        spec, instrument=instrument, subtree_truncation=False
    ),
    lambda spec, instrument=None: run_twisted_batched(
        spec, instrument=instrument, subtree_truncation=False
    ),
    lambda spec, instrument=None, order="preorder": run_twisted_soa(
        spec, instrument=instrument, subtree_truncation=False, order=order
    ),
    lambda spec, instrument=None, order="preorder": run_twisted_compiled(
        spec, instrument=instrument, subtree_truncation=False, order=order
    ),
)


def twist_with_cutoff(cutoff: int) -> Schedule:
    """The Section 7.1 cutoff variant, as a named schedule."""
    if cutoff < 0:
        raise ScheduleError(f"cutoff must be non-negative, got {cutoff}")
    return Schedule(
        f"twist(cutoff={cutoff})",
        lambda spec, instrument=None: run_twisted(
            spec, instrument=instrument, cutoff=cutoff
        ),
        lambda spec, instrument=None: run_twisted_batched(
            spec, instrument=instrument, cutoff=cutoff
        ),
        lambda spec, instrument=None, order="preorder": run_twisted_soa(
            spec, instrument=instrument, cutoff=cutoff, order=order
        ),
        lambda spec, instrument=None, order="preorder": run_twisted_compiled(
            spec, instrument=instrument, cutoff=cutoff, order=order
        ),
    )


#: Schedules by bare name, for CLI-ish lookups in examples and benches.
BY_NAME = {
    schedule.name: schedule
    for schedule in (
        ORIGINAL,
        INTERCHANGE,
        INTERCHANGE_SUBTREE,
        TWIST,
        TWIST_COUNTERS,
        TWIST_NO_SUBTREE,
    )
}


def get_schedule(name: str) -> Schedule:
    """Look up a schedule by name, supporting ``twist(cutoff=N)``."""
    if name in BY_NAME:
        return BY_NAME[name]
    if name.startswith("twist(cutoff=") and name.endswith(")"):
        return twist_with_cutoff(int(name[len("twist(cutoff=") : -1]))
    raise ScheduleError(
        f"unknown schedule {name!r}; known: {sorted(BY_NAME)} "
        f"or 'twist(cutoff=N)'"
    )

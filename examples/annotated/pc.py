"""Point Correlation (PC, §6.1) as annotated user code for the lint pass.

The irregular-but-provable case.  The inner guard prunes by geometry —
the distance between the two nodes' bounding volumes against the query
radius — so it depends on *both* indices (irregular truncation, §4),
but only on fields that never change during the traversal.  The single
write accumulates the pair count into the outer node, so the §3.3
criterion still holds and the verdict is *twist-safe*: sound via the
Section 4 flag machinery the generated code includes.
"""

from repro.transform import inner_recursion, outer_recursion

# lint: assume-pure: pairs_within


@outer_recursion(inner="pc_inner")
def pc_outer(o, i):
    """Outer recursion over the query tree."""
    if o is None:
        return
    pc_inner(o, i)
    pc_outer(o.left, i)
    pc_outer(o.right, i)


@inner_recursion
def pc_inner(o, i):
    """Inner recursion over the reference tree, pruned by geometry."""
    if i is None or (o.cx - i.cx) ** 2 + (o.cy - i.cy) ** 2 > (o.reach + i.reach) ** 2:
        return
    o.data = o.data + pairs_within(o, i)
    pc_inner(o, i.left)
    pc_inner(o, i.right)

"""Tree-independent dual-tree rule sets (Curtin et al., ICML 2013).

Curtin et al. factor every dual-tree algorithm into two callbacks:

* ``Score(q_node, r_node)`` — may the pair be *pruned*?  Must be
  conservative: prune only when no point pair under the two nodes can
  affect the answer;
* ``BaseCase(q_point, r_point)`` — the point-pair computation.

Our traverser (:mod:`repro.dualtree.traverser`) maps these onto the
paper's nested recursion template: ``Score`` becomes the irregular
``truncateInner2?``, and ``BaseCase`` batches run at leaf-leaf work
points.  The three rule sets below — point correlation, nearest
neighbor, k-nearest neighbors — are the algorithms behind the PC, NN,
KNN, and VP benchmarks (VP is KNN over vantage-point trees).

All rule state is per-query (counts per query leaf, best distances per
query point), so the *outer recursion is parallel* in the paper's
Section 3.3 sense: rule state never flows between different query
leaves.  That is what licenses interchange and twisting on these
algorithms despite their inner-recursion-carried dependences.
"""

from __future__ import annotations

import numpy as np

from repro.dualtree.spatial import SpatialNode, SpatialTree


class DualTreeRules:
    """Base interface: prune test plus leaf-leaf base case."""

    def score(self, q: SpatialNode, r: SpatialNode) -> bool:
        """Return ``True`` to prune the pair (skip ``r``'s subtree)."""
        raise NotImplementedError

    def base_case(self, q: SpatialNode, r: SpatialNode) -> None:
        """Process all point pairs of two leaves."""
        raise NotImplementedError


def _leaf_points(tree: SpatialTree, node: SpatialNode) -> np.ndarray:
    """The (k, d) array of points owned by a leaf."""
    return tree.points[tree.indices[node.start : node.end]]


def _pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense Euclidean distances between two small point sets."""
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


class PointCorrelationRules(DualTreeRules):
    """2-point correlation: count pairs within ``radius``.

    The classic clustering statistic ("determines how 'clustered' a
    data set is").  ``Score`` prunes a node pair when even the closest
    possible points are farther apart than the radius; the base case
    counts qualifying ordered pairs.  Counting is a commutative
    reduction, so PC's answer is schedule-independent by construction.
    """

    def __init__(
        self,
        query_tree: SpatialTree,
        reference_tree: SpatialTree,
        radius: float,
        count_self_pairs: bool = True,
    ) -> None:
        if radius < 0.0:
            raise ValueError(f"negative radius {radius}")
        self.query_tree = query_tree
        self.reference_tree = reference_tree
        self.radius = radius
        self.count_self_pairs = count_self_pairs
        #: ordered (query, reference) pairs within the radius
        self.count = 0

    def score(self, q: SpatialNode, r: SpatialNode) -> bool:
        return q.bound.min_dist(r.bound) > self.radius

    def base_case(self, q: SpatialNode, r: SpatialNode) -> None:
        distances = _pairwise_distances(
            _leaf_points(self.query_tree, q), _leaf_points(self.reference_tree, r)
        )
        within = distances <= self.radius
        if not self.count_self_pairs and self.query_tree is self.reference_tree:
            q_ids = np.asarray(q.point_ids)
            r_ids = np.asarray(r.point_ids)
            within &= q_ids[:, None] != r_ids[None, :]
        self.count += int(within.sum())


class NearestNeighborRules(DualTreeRules):
    """Single nearest neighbor of every query point.

    Per-query state: ``best_dist[q]`` and ``best_id[q]``.  ``Score``
    prunes a reference node when its closest possible point is farther
    than the *worst* current best among the queries in the query leaf —
    the standard dual-tree NN bound.  Because the bound only shrinks,
    pruning is always conservative, and — as Section 3.3 requires — any
    schedule that preserves each query leaf's inner-traversal order
    makes identical pruning decisions.
    """

    def __init__(
        self,
        query_tree: SpatialTree,
        reference_tree: SpatialTree,
        exclude_self: bool = False,
    ) -> None:
        self.query_tree = query_tree
        self.reference_tree = reference_tree
        self.exclude_self = exclude_self
        n = query_tree.num_points
        self.best_dist = np.full(n, np.inf)
        self.best_id = np.full(n, -1, dtype=int)

    def score(self, q: SpatialNode, r: SpatialNode) -> bool:
        bound = float(self.best_dist[self.query_tree.indices[q.start : q.end]].max())
        return q.bound.min_dist(r.bound) > bound

    def base_case(self, q: SpatialNode, r: SpatialNode) -> None:
        q_ids = self.query_tree.indices[q.start : q.end]
        r_ids = self.reference_tree.indices[r.start : r.end]
        distances = _pairwise_distances(
            self.query_tree.points[q_ids], self.reference_tree.points[r_ids]
        )
        if self.exclude_self:
            distances[np.equal.outer(np.asarray(q_ids), np.asarray(r_ids))] = np.inf
        arg = distances.argmin(axis=1)
        best_here = distances[np.arange(len(q_ids)), arg]
        improved = best_here < self.best_dist[q_ids]
        self.best_dist[q_ids[improved]] = best_here[improved]
        self.best_id[q_ids[improved]] = np.asarray(r_ids)[arg[improved]]


class KNearestNeighborRules(DualTreeRules):
    """k nearest neighbors of every query point.

    Per-query state is a bounded worst-first candidate list; the prune
    bound for a query is its current k-th best distance (infinite until
    k candidates exist), and a query *leaf*'s bound is the max over its
    queries.  Used by both the KNN benchmark (kd-trees) and the VP
    benchmark (vantage-point trees) — the rules are tree-independent.
    """

    def __init__(
        self,
        query_tree: SpatialTree,
        reference_tree: SpatialTree,
        k: int,
        exclude_self: bool = False,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.query_tree = query_tree
        self.reference_tree = reference_tree
        self.k = k
        self.exclude_self = exclude_self
        n = query_tree.num_points
        #: kth-best (i.e. worst retained) distance per query
        self.kth_dist = np.full(n, np.inf)
        #: per-query candidate lists: sorted [(dist, ref_id), ...]
        self.neighbors: list[list[tuple[float, int]]] = [[] for _ in range(n)]

    def score(self, q: SpatialNode, r: SpatialNode) -> bool:
        bound = float(self.kth_dist[self.query_tree.indices[q.start : q.end]].max())
        return q.bound.min_dist(r.bound) > bound

    def base_case(self, q: SpatialNode, r: SpatialNode) -> None:
        q_ids = self.query_tree.indices[q.start : q.end]
        r_ids = self.reference_tree.indices[r.start : r.end]
        distances = _pairwise_distances(
            self.query_tree.points[q_ids], self.reference_tree.points[r_ids]
        )
        for row, query in enumerate(q_ids):
            candidates = self.neighbors[query]
            threshold = self.kth_dist[query]
            for col, reference in enumerate(r_ids):
                if self.exclude_self and query == reference:
                    continue
                distance = float(distances[row, col])
                if distance >= threshold and len(candidates) >= self.k:
                    continue
                # Insert keeping the list sorted by distance (ties by
                # reference id for determinism across schedules).
                entry = (distance, int(reference))
                lo, hi = 0, len(candidates)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if candidates[mid] < entry:
                        lo = mid + 1
                    else:
                        hi = mid
                candidates.insert(lo, entry)
                if len(candidates) > self.k:
                    candidates.pop()
                if len(candidates) >= self.k:
                    threshold = candidates[-1][0]
                    self.kth_dist[query] = threshold

    def neighbor_ids(self) -> np.ndarray:
        """(n, k) reference ids, nearest first (-1 pads short lists)."""
        result = np.full((len(self.neighbors), self.k), -1, dtype=int)
        for query, candidates in enumerate(self.neighbors):
            for position, (_dist, reference) in enumerate(candidates):
                result[query, position] = reference
        return result

    def neighbor_dists(self) -> np.ndarray:
        """(n, k) distances, nearest first (inf pads short lists)."""
        result = np.full((len(self.neighbors), self.k), np.inf)
        for query, candidates in enumerate(self.neighbors):
            for position, (distance, _reference) in enumerate(candidates):
                result[query, position] = distance
        return result

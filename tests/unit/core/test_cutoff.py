"""Unit tests for the automatic cutoff estimator (§7.1 future work)."""

import pytest

from repro.core import (
    auto_cutoff_schedule,
    cutoff_for_machine,
    estimate_cutoff,
)
from repro.errors import ScheduleError
from repro.memory.hierarchy import tiny_hierarchy


class TestEstimator:
    def test_formula(self):
        # capacity / (2 * lines_per_node * safety)
        assert estimate_cutoff(512, lines_per_node=1.0, safety=2.0) == 128
        assert estimate_cutoff(512, lines_per_node=2.0, safety=2.0) == 64

    def test_floor_at_one(self):
        assert estimate_cutoff(1) == 1
        assert estimate_cutoff(2, lines_per_node=10.0) == 1

    def test_validation(self):
        with pytest.raises(ScheduleError):
            estimate_cutoff(0)
        with pytest.raises(ScheduleError):
            estimate_cutoff(16, lines_per_node=0)
        with pytest.raises(ScheduleError):
            estimate_cutoff(16, safety=-1)


class TestMachineBinding:
    def test_defaults_to_last_level(self):
        machine = tiny_hierarchy()  # L3 = 64 lines
        assert cutoff_for_machine(machine) == estimate_cutoff(64)

    def test_explicit_level(self):
        machine = tiny_hierarchy()  # L2 = 16 lines
        assert cutoff_for_machine(machine, level=1) == estimate_cutoff(16)

    def test_bad_level(self):
        with pytest.raises(ScheduleError, match="no level"):
            cutoff_for_machine(tiny_hierarchy(), level=9)

    def test_schedule_name_carries_cutoff(self):
        schedule = auto_cutoff_schedule(tiny_hierarchy())
        assert schedule.name == f"twist(cutoff={estimate_cutoff(64)})"


class TestEndToEnd:
    def test_estimated_cutoff_is_competitive(self):
        # On the bench machine + TJ, the estimated cutoff must perform
        # within 10% of parameterless twisting (it should do at least
        # as well; the benchmark suite checks it against a full sweep).
        from repro.bench import bench_hierarchy, make_tj, run_case
        from repro.core.schedules import ORIGINAL, TWIST
        from repro.memory import speedup

        case = make_tj(600)
        machine = bench_hierarchy()
        schedule = auto_cutoff_schedule(machine, lines_per_node=1.0)
        baseline = run_case(case, ORIGINAL, bench_hierarchy)
        parameterless = run_case(case, TWIST, bench_hierarchy)
        estimated = run_case(case, schedule, bench_hierarchy)
        assert speedup(baseline, estimated) > 0.9 * speedup(
            baseline, parameterless
        )

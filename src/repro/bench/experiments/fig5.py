"""Figure 5: reuse-distance CDF of Tree Join, original vs twisted.

"Figure 5 shows the results of running a reuse distance simulation on
the example from Figure 1(a) with trees of size 1024.  The figure shows
a CDF plotting the percentage of accesses with reuse distance less
than r for all r."

The paper's signature features, all of which this experiment surfaces:

* the original schedule is bimodal ("hot/cold"): ~50% of accesses have
  tiny distances (the outer tree) and ~50% have distances the size of
  the inner tree;
* the twisted CDF dominates at small-to-medium distances, rising in
  steps (distances halving per twist — the nested-tile structure);
* twisting is not uniform: a few distances grow, but stay O(n).
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport
from repro.core.executors import run_original
from repro.core.instruments import ReuseDistanceProbe
from repro.core.twisting import run_twisted
from repro.kernels.treejoin import TreeJoin


def run_fig5(num_nodes: int = 1024) -> tuple[ExperimentReport, dict]:
    """Reproduce the Figure 5 CDF; returns (report, raw analyzers)."""
    tj = TreeJoin(num_nodes, num_nodes)

    original = ReuseDistanceProbe()
    run_original(tj.make_spec(), instrument=original)
    twisted = ReuseDistanceProbe()
    run_twisted(tj.make_spec(), instrument=twisted)

    report = ExperimentReport(
        title=f"Figure 5: TJ reuse-distance CDF, trees of {num_nodes} nodes",
        columns=[
            "reuse distance r",
            "original: % accesses < r",
            "twisted: % accesses < r",
        ],
    )
    # Sample the CDF at powers of two up to past the tree size, the way
    # the paper's log-scale x axis reads.
    r = 1
    while r <= 4 * num_nodes:
        report.add_row(
            r,
            f"{100.0 * original.analyzer.fraction_at_most(r - 1):.1f}%",
            f"{100.0 * twisted.analyzer.fraction_at_most(r - 1):.1f}%",
        )
        r *= 2
    report.add_note(
        "original mean finite distance: "
        f"{original.analyzer.mean_finite_distance():.1f}; twisted: "
        f"{twisted.analyzer.mean_finite_distance():.1f}"
    )
    report.add_note(
        "paper shape: original is bimodal (~50% small, ~50% O(n)); "
        "twisting lowers distances in halving steps (nested tiles)"
    )
    return report, {"original": original.analyzer, "twisted": twisted.analyzer}

"""Synthetic kernels: the paper's two simple benchmarks plus loop bridges.

* :mod:`repro.kernels.treejoin` — Tree Join (TJ), Figure 1(a);
* :mod:`repro.kernels.matmul` — recursive Matrix Multiplication (MM);
* :mod:`repro.kernels.loops` — loop nests as recursion (Sections 2.1
  and 7.2), including the divide-and-conquer range trees that connect
  twisting to cache-oblivious blocking;
* :mod:`repro.kernels.gram` — the Gram-table kernel (GT), a third
  lowerability-certified spec for the ``compiled`` backend.
"""

from repro.kernels.gram import GramTable, gram_footprint
from repro.kernels.loops import (
    RangeNode,
    divide_and_conquer_spec,
    loop_nest_spec,
    range_tree,
    unit_work_points,
)
from repro.kernels.matmul import MatrixMultiply, matmul_footprint
from repro.kernels.matmul3 import MatMul3, MatMul3CacheProbe
from repro.kernels.treejoin import JoinAccumulator, TreeJoin, tree_join_footprint

__all__ = [
    "GramTable",
    "JoinAccumulator",
    "MatMul3",
    "MatMul3CacheProbe",
    "MatrixMultiply",
    "RangeNode",
    "TreeJoin",
    "divide_and_conquer_spec",
    "gram_footprint",
    "loop_nest_spec",
    "matmul_footprint",
    "range_tree",
    "tree_join_footprint",
    "unit_work_points",
]

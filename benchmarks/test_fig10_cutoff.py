"""Bench target: Figure 10 — cutoff twisting vs parameterless (§7.1).

Paper shapes asserted: every cutoff has lower instruction overhead than
parameterless twisting, with larger cutoffs cheaper; an overly large
cutoff forfeits locality (worse speedup than parameterless); the best
cutoff is not the smallest; parameterless stays within reach of the
best cutoff.
"""

from benchmarks.conftest import register_report
from repro.bench.experiments import run_fig10
from repro.memory.counters import instruction_overhead, speedup

CUTOFFS = (4, 16, 64, 256, 1024)


def test_fig10_cutoff(benchmark, bench_scale):
    num_points = max(256, int(2048 * bench_scale))
    report, runs = benchmark.pedantic(
        run_fig10,
        kwargs={"num_points": num_points, "cutoffs": CUTOFFS},
        rounds=1,
        iterations=1,
    )
    register_report(report, "fig10_cutoff.txt")

    baseline = runs["original"]
    parameterless = runs["parameterless"]

    def overhead(name):
        return instruction_overhead(baseline, runs[name])

    def gain(name):
        return speedup(baseline, runs[name])

    # 10(a): cutoffs reduce overhead, monotonically in the cutoff.
    overheads = [overhead(f"twist(cutoff={c})") for c in CUTOFFS]
    assert all(o <= overhead("parameterless") + 1e-9 for o in overheads)
    assert all(a >= b - 1e-9 for a, b in zip(overheads, overheads[1:]))

    # 10(b): the largest cutoff (larger than the whole tree) degenerates
    # to the baseline schedule -- no overhead, but no locality either.
    assert gain(f"twist(cutoff={CUTOFFS[-1]})") < gain("parameterless")
    # The parameterless version is competitive with the best cutoff
    # (paper: "not too far off from the best cutoff version").
    best = max(gain(f"twist(cutoff={c})") for c in CUTOFFS)
    assert gain("parameterless") > 0.6 * best

    # Our answer to the paper's open problem: the cache-aware estimator
    # must land in the plateau of good cutoffs.
    auto_name = next(name for name in runs if name.startswith("auto(cutoff="))
    assert speedup(baseline, runs[auto_name]) > 0.85 * best, auto_name

"""``python -m repro.bench trajectory`` — the speedup-history table.

Every optimization PR in this repo lands a checked-in ``BENCH_*.json``
payload as its receipt: the SoA executor sweep (``BENCH_soa.json``),
the multi-worker runtime (``BENCH_parallel.json``), the compiled
backend (``BENCH_compiled.json``), and the serving layer
(``BENCH_serve.json``).  This module folds whichever of those are
present into one table, so the repository's performance story reads
top to bottom in a single render — which milestone bought what, over
which baseline.

Readers are deliberately tolerant: payload schemas belong to their
writers and may grow fields; a missing file or an unrecognized shape
becomes a note, never a crash.  Speedups are reported exactly as the
source payloads define them (each row names its baseline), so the
table juxtaposes rather than launders: an executor speedup over the
recursive interpreter and a serving throughput gain over per-query
execution are different claims and stay labeled as such.
"""

from __future__ import annotations

import json
import math
import os
from typing import Optional

from repro.bench.reporting import ExperimentReport

#: The standard payload files, in milestone order.
TRAJECTORY_SOURCES = (
    "BENCH_soa.json",
    "BENCH_parallel.json",
    "BENCH_compiled.json",
    "BENCH_serve.json",
)


def _load(path: str) -> Optional[dict]:
    if not os.path.exists(path):
        return None
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _rows_wallclock(payload: dict, source: str) -> list[tuple]:
    """Rows for a backend-sweep payload (soa or compiled flavour).

    With a ``recursive`` timing the speedup is best-backend over the
    recursive interpreter (the seed baseline); without one (the
    compiled sweep drops it) the speedup is compiled over soa — the
    claim that payload's CI floor actually gates.
    """
    rows: list[tuple] = []
    for result in payload.get("results", ()):
        if not isinstance(result, dict):
            continue
        timings = result.get("timings")
        if not isinstance(timings, dict) or not timings:
            continue
        label = (
            f"{result.get('benchmark', '?')}/"
            f"{result.get('schedule', '?')}"
        )
        numeric = {
            name: float(seconds)
            for name, seconds in timings.items()
            if isinstance(seconds, (int, float)) and seconds > 0
        }
        if not numeric:
            continue
        if "recursive" in numeric:
            baseline_name = "recursive"
            contenders = {
                name: seconds
                for name, seconds in numeric.items()
                if name not in ("recursive", "auto")
            }
        elif "soa" in numeric and "compiled" in numeric:
            baseline_name = "soa"
            contenders = {"compiled": numeric["compiled"]}
        else:
            continue
        if not contenders:
            continue
        best = min(contenders, key=contenders.get)
        speedup = numeric[baseline_name] / contenders[best]
        rows.append((source, label, best, baseline_name, speedup))
    return rows


def _rows_parallel(payload: dict, source: str) -> list[tuple]:
    """Rows for the worker sweep: best run per benchmark/schedule."""
    rows: list[tuple] = []
    for result in payload.get("results", ()):
        if not isinstance(result, dict):
            continue
        runs = [
            run
            for run in result.get("runs", ())
            if isinstance(run, dict)
            and isinstance(run.get("speedup_vs_serial_soa"), (int, float))
        ]
        if not runs:
            continue
        best = max(runs, key=lambda run: run["speedup_vs_serial_soa"])
        label = (
            f"{result.get('benchmark', '?')}/"
            f"{result.get('schedule', '?')}"
        )
        configuration = (
            f"{best.get('engine', '?')}x{best.get('workers', '?')}"
        )
        rows.append(
            (
                source,
                label,
                configuration,
                "serial soa",
                float(best["speedup_vs_serial_soa"]),
            )
        )
    return rows


def _rows_serve(payload: dict, source: str) -> list[tuple]:
    """One row: batched service throughput over per-query serial."""
    speedup = payload.get("speedup")
    if not isinstance(speedup, (int, float)):
        return []
    label = (
        f"{payload.get('users', '?')} users / "
        f"{payload.get('references', '?')} refs"
    )
    return [(source, label, "admission batching", "per-query serial",
             float(speedup))]


def _rows_serve_suite(payload: dict, source: str) -> list[tuple]:
    """One row per suite run: admission config over per-query serial."""
    workload = payload.get("workload", {})
    prefix = (
        f"{workload.get('users', '?')} users / "
        f"{workload.get('references', '?')} refs"
    )
    rows = []
    for name, run in payload.get("runs", {}).items():
        speedup = run.get("speedup")
        if not isinstance(speedup, (int, float)):
            continue
        rows.append(
            (
                source,
                f"{prefix} [{name}]",
                "admission batching",
                "per-query serial",
                float(speedup),
            )
        )
    return rows


_READERS = {
    "wallclock_backends": _rows_wallclock,
    "wallclock_parallel": _rows_parallel,
    "serve": _rows_serve,
    "serve_suite": _rows_serve_suite,
}


def _pinned_locality_verdicts() -> dict[str, dict[str, str]]:
    """The checked-in TW30x fixtures, keyed by benchmark name."""
    from repro.dualtree.algorithms import LOCALITY_VERDICTS
    from repro.dualtree.kde import LOCALITY_VERDICT as KDE_VERDICT
    from repro.kernels.gram import LOCALITY_VERDICT as GT_VERDICT
    from repro.kernels.matmul import LOCALITY_VERDICT as MM_VERDICT
    from repro.kernels.treejoin import LOCALITY_VERDICT as TJ_VERDICT

    return {
        "TJ": TJ_VERDICT,
        "MM": MM_VERDICT,
        "GT": GT_VERDICT,
        "KDE": KDE_VERDICT,
        **LOCALITY_VERDICTS,
    }


def _locality_verdict(label: str) -> str:
    """The pinned TW30x verdict behind one speedup row, or ``-``.

    A ``twist`` row shows the twist verdict (the transformation that
    produced its schedule); every other row shows ``layout:veb`` (the
    storage-order lever the SoA backends actually pull).  Labels that
    don't resolve to a benchmark fixture (serve rows, foreign
    payloads) stay unannotated.
    """
    benchmark, _, schedule = label.partition("/")
    verdicts = _pinned_locality_verdicts().get(benchmark)
    if verdicts is None:
        return "-"
    key = "twist" if schedule == "twist" else "layout:veb"
    return verdicts.get(key, "-")


def run_trajectory(
    paths: Optional[list[str]] = None, root: str = "."
) -> ExperimentReport:
    """Aggregate the checked-in payloads into one speedup table."""
    if paths is None:
        paths = [os.path.join(root, name) for name in TRAJECTORY_SOURCES]
    report = ExperimentReport(
        title="Speedup trajectory: every checked-in BENCH payload",
        columns=[
            "source", "workload", "contender", "baseline", "speedup",
            "locality",
        ],
    )
    missing: list[str] = []
    for path in paths:
        payload = _load(path)
        name = os.path.basename(path)
        if payload is None:
            missing.append(name)
            continue
        reader = _READERS.get(payload.get("experiment"))
        rows = reader(payload, name) if reader is not None else []
        if not rows:
            report.add_note(
                f"{name}: unrecognized payload shape "
                f"(experiment={payload.get('experiment')!r}), skipped"
            )
            continue
        speedups = []
        for source, label, contender, baseline, speedup in rows:
            report.add_row(
                source, label, contender, baseline, round(speedup, 3),
                _locality_verdict(label),
            )
            speedups.append(speedup)
        if len(speedups) > 1:
            geomean = math.exp(
                sum(math.log(value) for value in speedups) / len(speedups)
            )
            report.add_row(name, "geomean", "", "", round(geomean, 3), "")
    if missing:
        report.add_note(f"not present (skipped): {', '.join(missing)}")
    report.add_note(
        "each row keeps its payload's own baseline — executor speedups "
        "and serving throughput gains are different claims"
    )
    return report
